"""A scripted tour of the SQL dialect, statement by statement.

Shows every statement type the paper's query model defines (Sec. 2.1.2
and 2.1.3) against the used-car data, printing each statement and its
result the way an interactive shell would.

Run:  python examples/sql_interface.py
      python examples/sql_interface.py --interactive   (a tiny REPL)
"""

import sys

from repro import CADView, CADViewConfig, DBExplorer, Table, generate_usedcars
from repro.core.render import render_cadview
from repro.errors import ReproError

SCRIPT = [
    "SELECT Make, Model, Price FROM UsedCars "
    "WHERE Price < 15K AND BodyType = SUV ORDER BY Price ASC LIMIT 5",

    "CREATE CADVIEW Shortlist AS SET pivot = Make SELECT Price "
    "FROM UsedCars WHERE Mileage BETWEEN 10K AND 30K AND "
    "Transmission = Automatic AND BodyType = SUV AND "
    "Make IN (Jeep, Toyota, Honda, Ford, Chevrolet) "
    "LIMIT COLUMNS 5 IUNITS 3",

    "HIGHLIGHT SIMILAR IUNITS IN Shortlist "
    "WHERE SIMILARITY(Chevrolet, 1) > 3.0",

    "REORDER ROWS IN Shortlist ORDER BY SIMILARITY(Chevrolet) DESC",

    "CREATE CADVIEW ByPrice AS SET pivot = Make SELECT Price "
    "FROM UsedCars WHERE BodyType = Sedan IUNITS 2 ORDER BY Price ASC",
]


def show(result) -> None:
    if isinstance(result, Table):
        print(f"-- {len(result)} row(s)")
        for row in result.head(8).iter_rows():
            print("   ", {k: v for k, v in row.items()})
    elif isinstance(result, CADView):
        print(render_cadview(result, cell_width=26))
    elif isinstance(result, list):
        for ref, sim in result:
            print(f"   similar IUnit {ref} (similarity {sim:.2f})")
        if not result:
            print("   (no IUnit clears the threshold)")
    else:
        print("   ", result)


def main() -> None:
    dbx = DBExplorer(CADViewConfig(seed=3))
    dbx.register("UsedCars", generate_usedcars(20_000, seed=7))

    if "--interactive" in sys.argv:
        print("dbexplorer> type a statement, or 'quit'")
        while True:
            try:
                line = input("dbexplorer> ").strip()
            except EOFError:
                break
            if line.lower() in ("quit", "exit", ""):
                break
            try:
                show(dbx.execute(line))
            except ReproError as exc:
                print(f"error: {exc}")
        return

    for statement in SCRIPT:
        print(f"\ndbexplorer> {statement}")
        show(dbx.execute(statement))


if __name__ == "__main__":
    main()
