"""Reproduce the paper's user study (Sec. 6.2) on the mushroom dataset.

Runs the full crossover design — eight simulated users, three task
types, TPFacet vs an Apache-Solr-like faceted baseline — and prints the
per-user measurements behind Figures 2-7 plus the mixed-model analyses
the paper quotes.

Run:  python examples/mushroom_study.py
"""

from repro.dataset.generators import generate_mushroom
from repro.study import run_study

PAPER_NUMBERS = {
    ("classifier", "quality"): "chi2(1)=5.572, p=0.018, F1 +0.078+/-0.0285",
    ("classifier", "minutes"): "chi2(1)=8.54, p=0.003, -5.44+/-1.56 min",
    ("similar_pair", "quality"): "no significant difference",
    ("similar_pair", "minutes"): "chi2(1)=12.04, p=0.0005, -6.00+/-1.23 min",
    ("alternative", "quality"): "chi2(1)=3.28, p=0.07, error -0.329+/-0.172",
    ("alternative", "minutes"): "chi2(1)=2.58, p=0.108, -2.00+/-1.14 min",
}

TITLES = {
    "classifier": "Simple Classifier (Figs 2-3)",
    "similar_pair": "Most Similar Facet Value Pair (Figs 4-5)",
    "alternative": "Alternative Search Condition (Figs 6-7)",
}


def main() -> None:
    print("generating the mushroom dataset (8,124 x 23)...")
    table = generate_mushroom(8_124, seed=13)
    print("running the simulated study (8 users x 3 task pairs x 2 UIs)...")
    results = run_study(table, seed=2016)

    for task_type, title in TITLES.items():
        print(f"\n===== {title} =====")
        fmt = "{:.0f}" if task_type == "similar_pair" else "{:.3f}"
        quality = results.table(task_type, "quality")
        minutes = results.table(task_type, "minutes")
        print(f"{'user':>6} {'Solr qual':>10} {'TPF qual':>10} "
              f"{'Solr min':>9} {'TPF min':>9}")
        for user in sorted(quality, key=lambda u: int(u[1:])):
            q, t = quality[user], minutes[user]
            print(f"{user:>6} {fmt.format(q['Solr']):>10} "
                  f"{fmt.format(q['TPFacet']):>10} "
                  f"{t['Solr']:>9.1f} {t['TPFacet']:>9.1f}")
        for measure in ("quality", "minutes"):
            eff = results.analyze(task_type, measure)
            paper = PAPER_NUMBERS[(task_type, measure)]
            print(f"  {measure:>8}: {eff}")
            print(f"  {'paper':>8}: {paper}")
        print(f"  speedup: {results.speedup(task_type):.2f}x")


if __name__ == "__main__":
    main()
