"""Mary's exploration journey (Example 1 of the paper), end to end.

Walks the exact scenario the paper's introduction motivates:

1. Mary filters to recent automatic SUVs — thousands of rows, too many
   to browse.
2. She pivots on Make to *understand* her five candidate makes
   (Limitation 1: understanding attribute values).
3. She finds which other makes are similar to the one she likes
   (conditional comparison).
4. She discovers she can select V4-engined cars even though Engine is
   not a queriable facet (Limitation 2: querying hidden attributes) by
   using the IUnit's queriable labels as surrogates.

Run:  python examples/used_car_exploration.py
"""

from repro import (
    CADViewBuilder,
    CADViewConfig,
    QueryEngine,
    generate_usedcars,
    parse_predicate,
    render_cadview,
)


def step(n: int, text: str) -> None:
    print(f"\n--- step {n}: {text} ---")


def main() -> None:
    cars = generate_usedcars(40_000, seed=7)
    engine = QueryEngine()
    engine.register("D", cars)

    step(1, "Mary's initial lookup query")
    base = parse_predicate(
        "Mileage BETWEEN 10K AND 30K AND Transmission = Automatic "
        "AND BodyType = SUV"
    )
    result = engine.select(cars, base)
    print(f"matching cars: {len(result)} — far too many to browse")

    step(2, "pivot on Make to understand her five candidate makes")
    shortlist = parse_predicate(
        "Make IN (Ford, Chevrolet, Toyota, Honda, Jeep)"
    )
    result5 = engine.select(result, shortlist)
    builder = CADViewBuilder(
        CADViewConfig(compare_limit=5, iunits_k=3, seed=1)
    )
    cad = builder.build(
        result5,
        pivot="Make",
        pinned=("Price",),
        name="CompareMakes",
        exclude=("BodyType", "Transmission", "Mileage"),
    )
    print(render_cadview(cad, cell_width=28))
    print("note the conditional context: because Mary selected low "
          "mileage,\nthe Year labels cover only recent model years:",
          cad.view.labels("Year"))

    step(3, "who makes SUVs like Chevrolet's?")
    # the default threshold (0.7 * |I|) is strict; a slightly looser one
    # lets partially-similar IUnits count, revealing the graded structure
    tau = 0.6 * len(cad.compare_attributes)
    reordered = cad.reorder_by_similarity("Chevrolet", tau=tau)
    for value in reordered.pivot_values[1:]:
        d = reordered.value_distance("Chevrolet", value, tau=tau)
        print(f"  {value:<10} distance {d:>5.1f}")
    nearest = reordered.pivot_values[1]
    farthest = reordered.pivot_values[-1]
    print(f"=> {nearest} offers the most similar SUV lineup; {farthest} "
          f"differs the most (in the paper's data the analogous finding "
          f"was Ford ~ Chevrolet, with Jeep apart on Price/Drivetrain)")

    step(4, "selecting V4 engines without an Engine facet")
    v4_units = [
        u for u in cad.all_iunits() if u.display.get("Engine") == ("V4",)
    ]
    unit = max(v4_units, key=lambda u: u.size)
    print(f"Mary likes {unit.pivot_value}'s IUnit #{unit.uid}: "
          f"{ {a: list(unit.display[a]) for a in cad.compare_attributes} }")
    # build a selection from the IUnit's *queriable* labels
    surrogate = None
    for attr in cad.compare_attributes:
        if attr == "Engine" or not cars.schema[attr].queriable:
            continue
        labels = unit.display.get(attr)
        if not labels:
            continue
        code = cad.view.code_of(attr, labels[0])
        pred = cad.view.predicate_for(attr, code)
        surrogate = pred if surrogate is None else (surrogate & pred)
    picked = engine.select(result5, surrogate)
    share = picked.value_counts("Engine").get("V4", 0) / len(picked)
    print(f"surrogate selection: {surrogate.to_sql()}")
    print(f"=> {len(picked)} cars, {share:.0%} of them V4 — Mary reached "
          f"the hidden attribute through queriable ones")


if __name__ == "__main__":
    main()
