"""Discovering a dataset's dependency structure before exploring it.

Before a user even picks a Pivot Attribute, the library can map how the
attributes interact — the machinery the paper's related work points to
(functional dependencies / CORDS [16], Bayesian networks [15]) built on
the same substrate as the CAD View:

1. exact and soft functional dependencies;
2. the strongest pairwise correlations (Cramér's V);
3. a Chow–Liu tree of the whole schema (the maximum-likelihood
   tree-shaped Bayesian network), whose edges say which attribute
   best explains which;
4. a warehouse-style CUBE roll-up for contrast with the CAD View's
   context-dependent summaries.

Run:  python examples/schema_discovery.py
"""

from repro.dataset.generators import generate_usedcars
from repro.discretize import Discretizer
from repro.features import (
    ChowLiuTree,
    correlation_pairs,
    discover_dependencies,
)
from repro.query import AggregateSpec, group_by


def main() -> None:
    cars = generate_usedcars(20_000, seed=7)

    print("=== soft functional dependencies (strength >= 0.98) ===")
    for dep in discover_dependencies(cars, threshold=0.98, seed=1):
        print(f"  {dep}")

    print("\n=== strongest correlations (Cramér's V) ===")
    for x, y, v in correlation_pairs(cars, seed=1)[:8]:
        print(f"  {x:>12} ~ {y:<12} {v:.3f}")

    print("\n=== Chow–Liu dependency tree ===")
    view = Discretizer(nbins=6).fit(cars)
    tree = ChowLiuTree.fit(view, root="Make")
    for parent, child, mi in sorted(tree.edges, key=lambda e: -e[2]):
        print(f"  {parent:>12} — {child:<12} (MI {mi:.2f} bits)")
    print(f"  model log-likelihood: {tree.loglik(view):,.0f} bits")

    print("\n=== OLAP contrast: mean price by body type x drivetrain ===")
    g = group_by(
        cars, ["BodyType", "Drivetrain"],
        [AggregateSpec("count"), AggregateSpec("mean", "Price")],
    )
    for key in g.sorted_keys():
        count = g.value(key, "count(*)")
        price = g.value(key, "mean(Price)")
        print(f"  {str(key):>24}: n={count:>6.0f}  mean ${price:>9,.0f}")
    print("\n(the cube answers 'what is the average?'; the CAD View answers")
    print(" 'how do my shortlisted makes differ, given what I've already")
    print(" selected?' — run examples/used_car_exploration.py for that)")


if __name__ == "__main__":
    main()
