"""Quickstart: build your first CAD View in ~20 lines.

Generates the synthetic used-car dataset, runs the paper's exact
``CREATE CADVIEW`` statement, renders the Table-1-style summary, then
demonstrates the two in-view search statements.

Run:  python examples/quickstart.py
"""

from repro import CADViewConfig, DBExplorer, generate_usedcars


def main() -> None:
    print("generating 40,000 used-car listings...")
    cars = generate_usedcars(40_000, seed=7)

    dbx = DBExplorer(CADViewConfig(seed=1))
    dbx.register("UsedCars", cars)

    print("building the CAD View (the paper's example query)...\n")
    cad = dbx.execute("""
        CREATE CADVIEW CompareMakes AS
        SET pivot = Make
        SELECT Price
        FROM UsedCars
        WHERE Mileage BETWEEN 10K AND 30K AND
        Transmission = Automatic AND BodyType = SUV AND
        (Make = Jeep OR Make = Toyota OR Make = Honda OR
        Make = Ford OR Make = Chevrolet)
        LIMIT COLUMNS 5 IUNITS 3
    """)
    print(dbx.render("CompareMakes", cell_width=28))
    print(f"\nbuilt in {cad.profile.total_s * 1e3:.0f} ms "
          f"({cad.profile})")

    print("\nIUnits similar to Chevrolet's #1 (HIGHLIGHT SIMILAR IUNITS):")
    hits = dbx.execute(
        "HIGHLIGHT SIMILAR IUNITS IN CompareMakes "
        "WHERE SIMILARITY(Chevrolet, 1) > 3.0"
    )
    for ref, sim in hits:
        print(f"  {ref}  similarity {sim:.2f} (max 5.0)")

    print("\nmakes most similar to Chevrolet (REORDER ROWS):")
    reordered = dbx.execute(
        "REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Chevrolet) DESC"
    )
    for value in reordered.pivot_values:
        d = reordered.value_distance("Chevrolet", value)
        print(f"  {value:<10} Algorithm-2 distance {d:.1f}")


if __name__ == "__main__":
    main()
