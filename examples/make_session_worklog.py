"""Regenerate the canned exploration session, examples/session_nba.worklog.jsonl.

"nba" is the narrow-build-analyze loop the paper's interface is built
around: narrow the result with facet-style selections, build a CAD View
on it, inspect/search inside the view, narrow again.  The canned log is
one such session over the generated used-car dataset — including a
warning-carrying statement and one the analyzer rejects, because real
exploration sessions contain both.

Run from the repository root (only needed when the statement script or
the worklog schema changes)::

    PYTHONPATH=src python examples/make_session_worklog.py

``benchmarks/bench_workload_latency.py`` and the ``repro replay``
acceptance test both consume the committed output, so regenerate and
commit together with whatever change moved it.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import CADViewConfig, DBExplorer  # noqa: E402
from repro.dataset.generators import generate_usedcars  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.obs import WorkLogWriter  # noqa: E402

ROWS = 10_000
SEED = 7
OUT = os.path.join(os.path.dirname(__file__), "session_nba.worklog.jsonl")

#: The session script: narrow -> build -> analyze, twice over, with the
#: in-view search statements and two deliberately imperfect statements
#: (a numeric pivot that warns, a contradictory range the analyzer
#: rejects) so the log exercises every status the replay report shows.
STATEMENTS = (
    "DESCRIBE data",
    "SELECT Make, Price, Mileage FROM data LIMIT 5",
    "SELECT Make, Price FROM data WHERE BodyType = SUV LIMIT 10",
    "SELECT Make, Price FROM data WHERE BodyType = SUV AND Price < 30000"
    " LIMIT 10",
    "CREATE CADVIEW suvs AS SET pivot = Make SELECT Price, Mileage"
    " FROM data WHERE BodyType = SUV LIMIT COLUMNS 4 IUNITS 3",
    "SHOW CADVIEWS",
    "HIGHLIGHT SIMILAR IUNITS IN suvs WHERE SIMILARITY(Ford, 1) > 0.5",
    "REORDER ROWS IN suvs ORDER BY SIMILARITY(Ford) DESC",
    "SELECT Make, Price FROM data WHERE BodyType = Sedan"
    " AND Price < 20000 LIMIT 10",
    "CREATE CADVIEW cheap_sedans AS SET pivot = Make SELECT Price,"
    " Mileage, Year FROM data WHERE BodyType = Sedan AND Price < 20000"
    " LIMIT COLUMNS 4 IUNITS 3",
    "EXPLAIN ANALYZE CREATE CADVIEW trucks AS SET pivot = Drivetrain"
    " SELECT Price, Mileage FROM data WHERE BodyType = Truck"
    " LIMIT COLUMNS 3 IUNITS 3",
    # QA401: numeric pivot — executes fine but carries a warning
    "CREATE CADVIEW by_price AS SET pivot = Price SELECT Mileage"
    " FROM data WHERE BodyType = SUV LIMIT COLUMNS 3 IUNITS 3",
    # QA3xx: contradictory range — the analyzer gate rejects this one
    "SELECT Price FROM data WHERE Price > 9000 AND Price < 5000",
    "DROP CADVIEW by_price",
    "SELECT Make, Price FROM data WHERE Color = Red LIMIT 5",
    "CREATE CADVIEW red_cars AS SET pivot = BodyType SELECT Price,"
    " Mileage FROM data WHERE Color = Red LIMIT COLUMNS 4 IUNITS 3",
    "SHOW CADVIEWS",
)


def main() -> int:
    table = generate_usedcars(ROWS, seed=SEED)
    if os.path.exists(OUT):
        os.remove(OUT)
    with WorkLogWriter(OUT) as worklog:
        worklog.session(
            command="examples/make_session_worklog.py",
            dataset="usedcars", rows=ROWS, seed=SEED, csv=None,
        )
        dbx = DBExplorer(CADViewConfig(seed=SEED), worklog=worklog)
        dbx.register("data", table)
        statuses = {}
        for sql in STATEMENTS:
            try:
                dbx.execute(sql)
                status = "ok"
            except ReproError as exc:
                status = type(exc).__name__
            statuses[status] = statuses.get(status, 0) + 1
    print(f"wrote {len(STATEMENTS)} statement(s) to {OUT}: {statuses}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
