"""Text and JSON renderings of a :class:`LintResult`."""

from __future__ import annotations

import json

from tools.repro_lint.framework import LintResult

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult) -> str:
    """One ``path:line:col: CODE message`` line per finding + summary."""
    lines = [str(f) for f in result.findings]
    lines.append(
        f"repro-lint: {len(result.findings)} finding(s) in "
        f"{result.checked_files} file(s), {result.suppressed} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-readable report (consumed by the CI artifact)."""
    return json.dumps(result.as_dict(), indent=2, sort_keys=True)
