"""repro-lint: project-specific invariant checks over the source tree.

A small stdlib-``ast`` lint framework plus the rules that encode this
repository's hard-won conventions — determinism (seeded randomness),
budget cooperation (checkpoints in hot loops), observability locking
discipline, exception-swallowing hygiene, tracer span usage, process
supervision boundaries, telemetry I/O discipline and the durability
path's fsync contract.  See ``tools/repro_lint/README.md`` for the
rule table and the suppression syntax, and run it with::

    python -m tools.repro_lint src/repro
"""

from tools.repro_lint.framework import (
    Finding,
    LintResult,
    ModuleInfo,
    Rule,
    all_rules,
    lint_paths,
    register,
)
from tools.repro_lint import rules as _rules  # noqa: F401  (registers rules)
from tools.repro_lint.reporters import render_json, render_text

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
]
