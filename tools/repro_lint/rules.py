"""The repro-lint rules: this repository's invariants as AST checks.

====== ==================================================================
code   invariant
====== ==================================================================
RL001  no unseeded randomness outside tests (determinism)
RL002  loops in hot modules cooperate with the budget via checkpoint()
RL003  ``self._x`` mutation in ``repro/obs/`` happens under ``self._lock``
RL004  blanket ``except Exception`` must re-raise or record the fault
RL005  tracer spans are opened with ``with`` (never left dangling)
RL006  worklog file-handle I/O happens under the writer's ``self._lock``
RL007  ``self._x`` mutation in ``repro/serve/`` happens under ``self._lock``
RL008  ``multiprocessing.Process`` is constructed only in ``repro/serve/proc/``
RL009  telemetry paths do no blocking I/O while holding an obs lock
RL010  writes in ``repro/serve/durability/`` are fsync'd in-function
====== ==================================================================

Every rule explains *why* in its docstring; suppress a justified
exception with ``# repro-lint: ignore[RL###]`` plus a comment saying
what makes the site safe.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Set

from tools.repro_lint.framework import Finding, ModuleInfo, Rule, register

__all__ = [
    "UnseededRandomness",
    "HotLoopWithoutCheckpoint",
    "UnlockedObsMutation",
    "SwallowedException",
    "DanglingTracerSpan",
    "UnlockedWorklogWrite",
    "UnlockedServeMutation",
    "StrayProcessConstruction",
    "BlockingIOUnderObsLock",
    "UnsyncedDurabilityWrite",
]

# Reporting records that an isolated failure was handled, not swallowed.
_FAULT_REPORT_CALLS = {
    "record_incident",
    "record_degradation",
    "record_retry",
    "record_dropped",
}


def _call_name(node: ast.Call) -> str:
    """The trailing identifier of a call target ('' when not a name)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class UnseededRandomness(Rule):
    """RL001: every random source must be constructed with a seed.

    The reproduction's claim is determinism — same data, same config,
    same view.  An unseeded ``random.Random()``, a module-level
    ``random.random()`` or a bare ``np.random.default_rng()`` breaks
    that silently.  Tests are exempt (they may probe robustness with
    true randomness).
    """

    code = "RL001"
    description = "unseeded random source outside tests"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            unseeded = not node.args and not node.keywords
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ) and func.value.id == "random":
                # the stdlib module: random.Random() / random.random()
                if func.attr == "Random" and unseeded:
                    yield self.finding(
                        module, node,
                        "random.Random() without a seed; pass one",
                    )
                elif func.attr == "random":
                    yield self.finding(
                        module, node,
                        "random.random() uses the unseeded global RNG; "
                        "use a seeded random.Random/np Generator",
                    )
            elif _call_name(node) == "default_rng" and unseeded:
                yield self.finding(
                    module, node,
                    "default_rng() without a seed; pass one",
                )


# Modules on the CAD View build's critical path, where a loop without a
# budget checkpoint can blow straight through a deadline.
def _is_hot_module(path: str) -> bool:
    parts = Path(path).parts
    if "clustering" in parts or "features" in parts:
        return True
    return "iunits" in parts and Path(path).name == "diversify.py"


def _mentions_checkpoint(node: ast.AST) -> bool:
    """True when the subtree calls, or forwards, a checkpoint."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        if "checkpoint" in _call_name(sub).lower():
            return True
        for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
            if isinstance(arg, ast.Name) and arg.id == "checkpoint":
                return True
    return False


@register
class HotLoopWithoutCheckpoint(Rule):
    """RL002: hot loops must cooperate with the wall-clock budget.

    PR 1 made builds budgeted by inserting cheap ``checkpoint()`` calls
    into the iterative kernels; a new loop added to a hot module without
    one reintroduces an unbounded stall the budget cannot interrupt.
    The rule binds to functions that *take* a ``checkpoint`` parameter
    (i.e. ones the builder already considers budget-cooperative) and
    flags their outermost loops that neither call a checkpoint nor
    forward it to a callee.
    """

    code = "RL002"
    description = "hot loop never calls or forwards checkpoint()"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not _is_hot_module(module.path) or module.is_test:
            return
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            args = node.args
            names = {
                a.arg
                for a in args.posonlyargs + args.args + args.kwonlyargs
            }
            if "checkpoint" not in names:
                continue
            for loop in self._outer_loops(node.body):
                if not _mentions_checkpoint(loop):
                    kind = "for" if isinstance(loop, ast.For) else "while"
                    yield self.finding(
                        module, loop,
                        f"{kind}-loop in budget-cooperative function "
                        f"{node.name!r} never calls or forwards "
                        f"checkpoint()",
                    )

    def _outer_loops(self, body: List[ast.stmt]) -> Iterator[ast.AST]:
        """Outermost for/while statements, not entering nested defs."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.For, ast.While)):
                yield node                  # do not descend: outermost only
            elif isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                continue                    # handled via its own walk
            else:
                stack.extend(ast.iter_child_nodes(node))


def _uses_lock(with_node: ast.With) -> bool:
    for item in with_node.items:
        for sub in ast.walk(item.context_expr):
            if isinstance(sub, ast.Attribute) and sub.attr == "_lock":
                return True
    return False


@register
class UnlockedObsMutation(Rule):
    """RL003: observability state mutates only under its lock.

    The metrics instruments in ``repro/obs/`` are shared across threads
    (a traced build can run beside a reader); every class there that
    owns a ``self._lock`` must touch its private state inside
    ``with self._lock:``.  ``__init__``/``__post_init__`` are exempt —
    the object is not yet visible to other threads.
    """

    code = "RL003"
    description = "obs private-state mutation outside `with self._lock`"
    package = "obs"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if self.package not in Path(module.path).parts or module.is_test:
            return
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not self._owns_lock(cls):
                continue
            for method in cls.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in ("__init__", "__post_init__"):
                    continue
                yield from self._check_method(module, method, locked=False)

    @staticmethod
    def _owns_lock(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Attribute) and node.attr == "_lock":
                return True
        return False

    def _check_method(
        self, module: ModuleInfo, node: ast.AST, locked: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            inside = locked
            if isinstance(child, ast.With) and _uses_lock(child):
                inside = True
            if isinstance(child, (ast.Assign, ast.AugAssign)) and not inside:
                targets = (
                    child.targets if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr.startswith("_")
                        and target.attr != "_lock"
                    ):
                        yield self.finding(
                            module, child,
                            f"mutation of self.{target.attr} outside "
                            f"`with self._lock:`",
                        )
            if not isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                yield from self._check_method(module, child, inside)


@register
class UnlockedServeMutation(UnlockedObsMutation):
    """RL007: serving-core shared state mutates only under its lock.

    The classes in ``repro/serve/`` (executor, breakers, the CoW view
    registry) are the most concurrently hammered objects in the repo:
    every worker thread, the watchdog, and the admission path touch
    them at once.  The concurrency model (DESIGN.md Sec. 10) allows
    exactly two idioms — mutate under ``with self._lock:``, or the
    registry's snapshot swap, which copies and swaps the reference
    *inside* its lock and therefore satisfies the same lexical check.
    Any other mutation of a lock-owning class's private state is a
    "forgot the lock" bug that would only surface as a flake under
    load; helpers documented as called-with-lock-held carry an
    ``ignore[RL007]`` suppression with the justification inline.
    """

    code = "RL007"
    description = "serve shared-state mutation outside `with self._lock`"
    package = "serve"


def _is_blanket(handler: ast.ExceptHandler) -> bool:
    """True for ``except:`` / ``except Exception`` / ``BaseException``."""
    broad = {"Exception", "BaseException"}

    def name_of(node) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    if handler.type is None:
        return True
    if name_of(handler.type) in broad:
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(name_of(e) in broad for e in handler.type.elts)
    return False


@register
class SwallowedException(Rule):
    """RL004: a blanket handler must re-raise or record the fault.

    Catch-all handlers exist in this codebase for exactly one purpose:
    fault *isolation* — keep the rest of the build alive and say so on
    the build report.  A blanket ``except Exception`` whose body neither
    raises nor calls a ``record_*`` fault reporter silently converts
    bugs into wrong answers.
    """

    code = "RL004"
    description = "blanket except without re-raise or fault report"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_blanket(node):
                continue
            if self._handled(node):
                continue
            shape = "bare except" if node.type is None else (
                "blanket except Exception"
            )
            yield self.finding(
                module, node,
                f"{shape} neither re-raises nor records the fault "
                f"(record_incident/record_dropped/...)",
            )

    @staticmethod
    def _handled(handler: ast.ExceptHandler) -> bool:
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Call) and \
                    _call_name(sub) in _FAULT_REPORT_CALLS:
                return True
        return False


@register
class UnlockedWorklogWrite(Rule):
    """RL006: worklog file I/O stays under the writer's lock.

    RL003 guards *assignments* to private obs state; the workload-log
    writer's hazard is different — method calls on the shared file
    handle (``self._fh.write/flush/tell/close``).  Two threads logging
    through one writer must never interleave mid-line, and a write
    racing a rotation can land in a just-closed handle.  So in
    ``repro/obs/`` classes that own both a ``self._lock`` and a
    ``self._fh``, every call on ``self._fh`` must sit lexically inside
    ``with self._lock:``.  ``__init__`` is exempt (the handle is not
    shared yet); a helper invoked with the lock already held documents
    that with an ``ignore[RL006]`` suppression.
    """

    code = "RL006"
    description = "worklog file-handle call outside `with self._lock`"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if "obs" not in Path(module.path).parts or module.is_test:
            return
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not self._owns(cls, "_lock") or not self._owns(cls, "_fh"):
                continue
            for method in cls.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name == "__init__":
                    continue
                yield from self._check_body(module, method, locked=False)

    @staticmethod
    def _owns(cls: ast.ClassDef, attr: str) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Attribute) and node.attr == attr:
                return True
        return False

    def _check_body(
        self, module: ModuleInfo, node: ast.AST, locked: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            inside = locked
            if isinstance(child, ast.With) and _uses_lock(child):
                inside = True
            if not inside and isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"
                    and func.value.attr == "_fh"
                ):
                    yield self.finding(
                        module, child,
                        f"self._fh.{func.attr}() outside "
                        f"`with self._lock:`",
                    )
            if not isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                yield from self._check_body(module, child, inside)


@register
class StrayProcessConstruction(Rule):
    """RL008: worker processes are born only in the supervision tree.

    ``repro/serve/proc/`` owns the whole child-process lifecycle: spawn
    context, pipe wiring, heartbeats, restart backoff, drain, and the
    no-orphans guarantee.  A ``multiprocessing.Process`` (or
    ``ctx.Process``) constructed anywhere else is a process nothing
    supervises — it won't heartbeat, won't be reaped by drain, and its
    death resolves no tickets.  Tests are exempt (they may build
    throwaway processes to probe the protocol from outside).
    """

    code = "RL008"
    description = "Process() constructed outside repro/serve/proc/"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.is_test:
            return
        parts = Path(module.path).parts
        if "serve" in parts and "proc" in parts:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) == "Process":
                yield self.finding(
                    module, node,
                    "direct Process() construction; spawn workers "
                    "through repro.serve.proc (the supervisor owns "
                    "heartbeats, restarts and reaping)",
                )


# Where the telemetry-plane lock discipline applies: the supervisor-side
# hub and the worker's emission path.  Both sit between request
# execution and the pipe, so a stall under their locks stalls serving.
_TELEMETRY_PATH_SUFFIXES = (
    ("obs", "hub.py"),
    ("serve", "proc", "worker.py"),
)
# Calls that can block on a pipe, file, or socket.
_BLOCKING_CALL_NAMES = {
    "send_frame", "send_bytes", "recv_bytes", "recv",
    "write", "flush", "open", "dump",
}
# The one lock that exists *to* serialize pipe writes; holding it around
# send_frame is the sanctioned idiom, not a violation.
_IO_LOCKS = {"_send_lock"}


def _locks_in_with(with_node: ast.With) -> Set[str]:
    """Names of ``self._*lock`` attributes entered by a with-statement."""
    held: Set[str] = set()
    for item in with_node.items:
        for sub in ast.walk(item.context_expr):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                and sub.attr.endswith("lock")
            ):
                held.add(sub.attr)
    return held


@register
class BlockingIOUnderObsLock(Rule):
    """RL009: no blocking pipe/file I/O while holding an obs lock.

    The telemetry plane's no-interference guarantee rests on one
    discipline: buffers are swapped out *under* the lock, frames are
    serialized and sent *outside* it.  A ``send_frame`` (or any
    pipe/file call) inside ``with self._tel_lock:`` couples request
    execution to pipe backpressure — a reader that stops draining
    would freeze every thread that touches the buffer, which is
    exactly the failure mode telemetry must never add.  The rule is
    lexical and scoped to the two emission paths (``repro/obs/hub.py``
    and ``repro/serve/proc/worker.py``); ``self._send_lock`` is exempt
    because serializing pipe writes is its entire job.
    """

    code = "RL009"
    description = "blocking I/O while holding an obs lock"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.is_test:
            return
        parts = Path(module.path).parts
        if not any(
            parts[-len(suffix):] == suffix
            for suffix in _TELEMETRY_PATH_SUFFIXES
        ):
            return
        yield from self._scan(module, module.tree, held=frozenset())

    def _scan(
        self, module: ModuleInfo, node: ast.AST, held: frozenset
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            now_held = held
            if isinstance(child, ast.With):
                now_held = held | (_locks_in_with(child) - _IO_LOCKS)
            if now_held and isinstance(child, ast.Call):
                name = _call_name(child)
                if name in _BLOCKING_CALL_NAMES:
                    locks = ", ".join(sorted(now_held))
                    yield self.finding(
                        module, child,
                        f"{name}() while holding self.{locks}; swap "
                        f"state out under the lock and do the I/O "
                        f"after releasing it",
                    )
            if not isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                yield from self._scan(module, child, now_held)
            else:
                # a nested def/class runs later, outside this lock
                yield from self._scan(module, child, frozenset())


@register
class DanglingTracerSpan(Rule):
    """RL005: ``tracer.span(...)`` is a context manager, not a handle.

    A span opened without ``with`` never closes: the span tree keeps
    the whole rest of the build as its children and every bucket total
    downstream is wrong.  The only sanctioned forms are
    ``with tracer.span(...):`` and
    ``stack.enter_context(tracer.span(...))``.
    """

    code = "RL005"
    description = "tracer span opened without a with-block"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.is_test:
            return
        sanctioned: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    sanctioned.add(id(item.context_expr))
            elif isinstance(node, ast.Call) and \
                    _call_name(node) == "enter_context":
                for arg in node.args:
                    sanctioned.add(id(arg))
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in sanctioned
            ):
                yield self.finding(
                    module, node,
                    "span(...) result must be entered with `with` (or "
                    "ExitStack.enter_context)",
                )


# What counts as "made durable" inside a durability-path function: a
# direct fsync/fdatasync, or the module's own directory-entry sync.
_SYNC_CALL_NAMES = {"fsync", "fdatasync", "_fsync_dir"}
# os.open flags that produce a writable descriptor.
_WRITE_FLAG_NAMES = {"O_WRONLY", "O_RDWR", "O_APPEND", "O_TRUNC"}


def _opens_for_write(node: ast.Call) -> bool:
    """True for ``open(..., "w"/"a"/"x"/"+")`` and writable ``os.open``."""
    if _call_name(node) != "open":
        return False
    mode = node.args[1] if len(node.args) >= 2 else None
    for kw in node.keywords:
        if kw.arg in ("mode", "flags"):
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(set(mode.value) & set("wax+"))
    if mode is not None:
        return any(
            isinstance(sub, ast.Attribute)
            and sub.attr in _WRITE_FLAG_NAMES
            for sub in ast.walk(mode)
        )
    return False


@register
class UnsyncedDurabilityWrite(Rule):
    """RL010: durability-path writes go through the fsync discipline.

    ``repro/serve/durability/`` exists to make one promise: data the
    caller was told is safe survives ``kill -9``.  Every file opened
    for writing there must be made durable in the same function —
    ``os.fsync``/``os.fdatasync`` on the descriptor, or the module's
    ``_fsync_dir`` for directory entries after a create/rename.  A
    buffered write without a sync is exactly the bug the torture
    harness exists to catch, except the lint catches it before the
    harness has to.  Harness-only artifacts (workload files, failure
    reports) are not part of the promise; suppress those sites with a
    justification instead of weakening the rule.
    """

    code = "RL010"
    description = "unsynced file write in repro/serve/durability/"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.is_test:
            return
        parts = Path(module.path).parts
        if not ("serve" in parts and "durability" in parts):
            return
        for body in self._scopes(module.tree):
            writes: List[ast.Call] = []
            synced = False
            for node in self._scope_walk(body):
                if not isinstance(node, ast.Call):
                    continue
                if _opens_for_write(node):
                    writes.append(node)
                elif _call_name(node) in _SYNC_CALL_NAMES:
                    synced = True
            if synced:
                continue
            for node in writes:
                yield self.finding(
                    module, node,
                    "file opened for writing with no fsync in the "
                    "same function; durability-path writes must be "
                    "synced (os.fsync / os.fdatasync / _fsync_dir) "
                    "before anyone is told they are safe",
                )

    def _scopes(self, tree: ast.Module) -> Iterator[List[ast.stmt]]:
        """Module top level, then every (async) function body."""
        yield tree.body
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node.body

    def _scope_walk(self, body: List[ast.stmt]) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested def/class."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                stack.extend(ast.iter_child_nodes(node))
