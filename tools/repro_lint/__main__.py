"""Command-line entry point: ``python -m tools.repro_lint src/repro``.

Exit code 0 when no findings survive suppression, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from tools.repro_lint.framework import all_rules, lint_paths
from tools.repro_lint.reporters import render_json, render_text


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="project-specific invariant checks (see rule list "
                    "with --rules)",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the JSON report to FILE "
                             "('-' for stdout)")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--rules", action="store_true",
                        help="list the registered rules and exit")
    args = parser.parse_args(argv)

    if args.rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.description}")
        return 0

    select = args.select.split(",") if args.select else None
    result = lint_paths(args.paths or ["src/repro"], select=select)
    if args.json == "-":
        print(render_json(result))
    else:
        print(render_text(result))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(render_json(result) + "\n")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
