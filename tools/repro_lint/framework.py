"""The lint framework: findings, rule registry, suppressions, runner.

Rules are :class:`Rule` subclasses registered with :func:`register`;
each receives a parsed :class:`ModuleInfo` and yields
:class:`Finding` records.  Findings can be silenced per line with::

    something_suspicious()  # repro-lint: ignore[RL004]

either on the offending line itself or on a pure-comment line directly
above it.  A bare ``# repro-lint: ignore`` silences every rule on that
line; suppressions must name the rule (or be bare) — unknown codes in
the bracket list are simply inert.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Type

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "lint_paths",
    "register",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?"
)

# Sentinel rule code for files the runner itself could not process.
PARSE_FAILURE_RULE = "RL000"


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ModuleInfo:
    """One parsed source file handed to every rule."""

    path: str                   # as given on the command line (repo-relative)
    text: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.text.splitlines()

    @property
    def is_test(self) -> bool:
        """True for test files — several rules only bind to src code."""
        parts = Path(self.path).parts
        name = Path(self.path).name
        return "tests" in parts or name.startswith("test_")

    def suppressions(self) -> Dict[int, Optional[Set[str]]]:
        """Line -> suppressed rule codes (``None`` = every rule).

        A suppression comment covers its own line and, when the line is
        a pure comment, the next line — so the marker can sit above a
        long statement without pushing it past the line-length limit.
        """
        out: Dict[int, Optional[Set[str]]] = {}

        def merge(lineno: int, codes: Optional[Set[str]]) -> None:
            if codes is None or out.get(lineno, set()) is None:
                out[lineno] = None
            else:
                out.setdefault(lineno, set()).update(codes)

        for i, line in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(line)
            if not m:
                continue
            codes: Optional[Set[str]] = None
            if m.group(1) is not None:
                codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
            merge(i, codes)
            if line.strip().startswith("#"):
                merge(i + 1, codes)
        return out

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.suppressions().get(finding.line, ...)
        if codes is ...:
            return False
        return codes is None or finding.rule in codes


class Rule:
    """Base class of lint rules.

    Subclasses set ``code`` (``RL###``) and ``description`` and
    implement :meth:`check`; the suppression machinery and the runner
    are shared.
    """

    code: str = ""
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield every violation found in ``module``."""
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        """A :class:`Finding` for this rule at ``node``'s location."""
        return Finding(
            self.code,
            module.path,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule instance to the registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Registered rules, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    checked_files: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "checked_files": self.checked_files,
            "suppressed": self.suppressed,
        }


def _iter_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Iterable[Rule]] = None,
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Run the (selected) rules over every ``*.py`` under ``paths``."""
    active = list(rules) if rules is not None else all_rules()
    if select is not None:
        wanted = set(select)
        active = [r for r in active if r.code in wanted]
    result = LintResult()
    for file_path in _iter_files(paths):
        try:
            text = file_path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(file_path))
        except (OSError, SyntaxError, ValueError) as exc:
            result.findings.append(Finding(
                PARSE_FAILURE_RULE, str(file_path), 1, 0,
                f"could not lint file: {exc}",
            ))
            continue
        module = ModuleInfo(str(file_path), text, tree)
        result.checked_files += 1
        for rule in active:
            for finding in rule.check(module):
                if module.is_suppressed(finding):
                    result.suppressed += 1
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
