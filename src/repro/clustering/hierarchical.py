"""Agglomerative hierarchical clustering (average linkage).

An alternative candidate-IUnit generator: k-means (the paper's choice)
is fast but spherical; average-linkage agglomeration handles elongated
value-cooccurrence clusters and gives a dendrogram that a tuning pass
can cut at any ``k`` without refitting.  Exposed for the clustering
ablation; O(n^2 log n)-ish, so callers sample first (the same
Optimization-1 sampling the CAD builder uses).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import QueryError

__all__ = ["AgglomerativeResult", "agglomerative"]


@dataclass(frozen=True)
class AgglomerativeResult:
    """Flat clustering cut from the dendrogram at ``n_clusters``."""

    labels: np.ndarray          # (n,) int32
    n_clusters: int
    merge_heights: Tuple[float, ...]  # linkage distance of each merge

    def cluster_sizes(self) -> np.ndarray:
        """(n_clusters,) member counts."""
        return np.bincount(self.labels, minlength=self.n_clusters)


def agglomerative(
    X: np.ndarray,
    n_clusters: int,
    max_rows: Optional[int] = 2_000,
    seed: int = 0,
) -> AgglomerativeResult:
    """Average-linkage agglomeration of the rows of ``X``.

    With more than ``max_rows`` rows, a uniform sample is clustered and
    the remaining rows are assigned to the nearest cluster mean — the
    standard scalable approximation.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[0] == 0:
        raise QueryError("X must be a non-empty 2-D array")
    if n_clusters < 1:
        raise QueryError(f"n_clusters must be >= 1, got {n_clusters}")
    n_all = X.shape[0]
    rng = np.random.default_rng(seed)
    if max_rows is not None and n_all > max_rows:
        sample_idx = np.sort(rng.choice(n_all, size=max_rows, replace=False))
    else:
        sample_idx = np.arange(n_all)
    S = X[sample_idx]
    n = S.shape[0]
    k = min(n_clusters, n)

    # Lance-Williams average linkage with a lazy priority queue.
    sq = np.einsum("ij,ij->i", S, S)
    d = np.sqrt(np.maximum(0.0, sq[:, None] + sq[None, :] - 2 * (S @ S.T)))
    active = [True] * n
    sizes = [1] * n
    members: List[List[int]] = [[i] for i in range(n)]
    dist = {
        (i, j): float(d[i, j])
        for i in range(n) for j in range(i + 1, n)
    }
    heap = [(v, i, j) for (i, j), v in dist.items()]
    heapq.heapify(heap)
    merges: List[float] = []
    clusters_left = n
    while clusters_left > k and heap:
        v, i, j = heapq.heappop(heap)
        if not (active[i] and active[j]):
            continue
        if dist.get((i, j)) != v:
            continue  # stale entry
        # merge j into i (average linkage update)
        merges.append(v)
        active[j] = False
        ni, nj = sizes[i], sizes[j]
        members[i].extend(members[j])
        members[j] = []
        sizes[i] = ni + nj
        for m in range(n):
            if m in (i, j) or not active[m]:
                continue
            a, b = (min(i, m), max(i, m)), (min(j, m), max(j, m))
            new = (ni * dist.get(a, 0.0) + nj * dist.get(b, 0.0)) / (ni + nj)
            dist[a] = new
            dist.pop(b, None)
            heapq.heappush(heap, (new, a[0], a[1]))
        clusters_left -= 1

    # flatten: label the sample
    sample_labels = np.full(n, -1, dtype=np.int32)
    cluster_ids = [i for i in range(n) if active[i]]
    means = np.empty((len(cluster_ids), X.shape[1]))
    for new_id, cid in enumerate(cluster_ids):
        idx = np.asarray(members[cid], dtype=int)
        sample_labels[idx] = new_id
        means[new_id] = S[idx].mean(axis=0)

    labels = np.empty(n_all, dtype=np.int32)
    labels[sample_idx] = sample_labels
    rest = np.setdiff1d(np.arange(n_all), sample_idx, assume_unique=False)
    if rest.size:
        R = X[rest]
        d2 = (
            np.einsum("ij,ij->i", R, R)[:, None]
            - 2.0 * (R @ means.T)
            + np.einsum("ij,ij->i", means, means)[None, :]
        )
        labels[rest] = d2.argmin(axis=1).astype(np.int32)
    return AgglomerativeResult(labels, len(cluster_ids), tuple(merges))
