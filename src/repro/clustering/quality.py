"""Cluster quality measures used by tests and ablation benches."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import QueryError

__all__ = ["inertia", "silhouette_score", "davies_bouldin"]


def inertia(X: np.ndarray, labels: np.ndarray, centers: np.ndarray) -> float:
    """Sum of squared distances of points to their assigned centers."""
    diffs = X - centers[labels]
    return float(np.einsum("ij,ij->", diffs, diffs))


def silhouette_score(
    X: np.ndarray,
    labels: np.ndarray,
    sample: Optional[int] = 2000,
    seed: int = 0,
) -> float:
    """Mean silhouette coefficient in [-1, 1]; higher = better separated.

    Sub-samples to ``sample`` points (distance matrix is quadratic).
    Requires at least two clusters with members.
    """
    X = np.asarray(X, dtype=float)
    labels = np.asarray(labels)
    if len(np.unique(labels)) < 2:
        raise QueryError("silhouette needs at least 2 clusters")
    n = X.shape[0]
    if sample is not None and n > sample:
        rng = np.random.default_rng(seed)
        idx = rng.choice(n, size=sample, replace=False)
        X, labels = X[idx], labels[idx]
        if len(np.unique(labels)) < 2:
            raise QueryError("sample collapsed to a single cluster")
        n = sample

    d = np.sqrt(
        np.maximum(
            0.0,
            np.add.outer(
                np.einsum("ij,ij->i", X, X), np.einsum("ij,ij->i", X, X)
            ) - 2.0 * (X @ X.T),
        )
    )
    uniq = np.unique(labels)
    scores = np.zeros(n)
    for i in range(n):
        own = labels[i]
        same = labels == own
        n_same = same.sum()
        a = d[i][same].sum() / (n_same - 1) if n_same > 1 else 0.0
        b = np.inf
        for c in uniq:
            if c == own:
                continue
            mask = labels == c
            b = min(b, d[i][mask].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def davies_bouldin(
    X: np.ndarray, labels: np.ndarray, centers: np.ndarray
) -> float:
    """Davies–Bouldin index; lower = better separated."""
    uniq = np.unique(labels)
    if len(uniq) < 2:
        raise QueryError("Davies-Bouldin needs at least 2 clusters")
    scatters = []
    used_centers = []
    for c in uniq:
        members = X[labels == c]
        center = centers[c]
        scatters.append(
            float(np.sqrt(((members - center) ** 2).sum(axis=1)).mean())
        )
        used_centers.append(center)
    centers_arr = np.array(used_centers)
    k = len(uniq)
    total = 0.0
    for i in range(k):
        worst = 0.0
        for j in range(k):
            if i == j:
                continue
            sep = float(np.linalg.norm(centers_arr[i] - centers_arr[j]))
            if sep == 0:
                continue
            worst = max(worst, (scatters[i] + scatters[j]) / sep)
        total += worst
    return total / k
