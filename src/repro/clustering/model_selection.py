"""Choosing the number of clusters.

Paper Sec. 3.1.2 lists "trying to infer the ideal number of clusters
using the clustering algorithm" among the things that slow interactive
summarization down — which is why the CAD View uses a fixed ``l``
(e.g. ``1.5 k``).  This module provides the inference anyway, both as an
offline tuning aid and so the cost the paper avoids can be measured:

* :func:`select_num_clusters` — silhouette- or elbow-based selection
  over a candidate range, optionally on a row sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.clustering.quality import silhouette_score
from repro.errors import QueryError

__all__ = ["ClusterCountChoice", "select_num_clusters"]


@dataclass(frozen=True)
class ClusterCountChoice:
    """The selection outcome with the full evaluation trace."""

    best_k: int
    method: str
    scores: Tuple[Tuple[int, float], ...]  # (k, criterion value)


def _elbow_index(inertias: Sequence[float]) -> int:
    """Index of the elbow: the point farthest from the line joining the
    first and last (k, inertia) points — the classic geometric rule."""
    n = len(inertias)
    if n <= 2:
        return n - 1
    x = np.arange(n, dtype=float)
    y = np.asarray(inertias, dtype=float)
    # normalize both axes so the distance is scale-free
    x = (x - x[0]) / max(x[-1] - x[0], 1e-12)
    span = max(y[0] - y[-1], 1e-12)
    y = (y - y[-1]) / span
    # line from (0, y0') to (1, 0): distance of each point
    x0, y0, x1, y1 = 0.0, y[0], 1.0, 0.0
    num = np.abs((y1 - y0) * x - (x1 - x0) * y + x1 * y0 - y1 * x0)
    den = float(np.hypot(y1 - y0, x1 - x0))
    return int(np.argmax(num / den))


def select_num_clusters(
    X: np.ndarray,
    candidates: Sequence[int] = tuple(range(2, 11)),
    method: str = "silhouette",
    sample: Optional[int] = 2_000,
    seed: int = 0,
) -> ClusterCountChoice:
    """Pick a cluster count from ``candidates``.

    ``method="silhouette"`` maximizes the (sampled) silhouette score;
    ``method="elbow"`` takes the inertia curve's elbow.  ``sample`` caps
    the rows used for both fitting and scoring.
    """
    if method not in ("silhouette", "elbow"):
        raise QueryError(f"unknown method {method!r}")
    candidates = sorted(set(int(k) for k in candidates))
    if not candidates or candidates[0] < 2:
        raise QueryError("candidates must be >= 2")
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[0] < 2:
        raise QueryError("X must be 2-D with at least 2 rows")
    rng = np.random.default_rng(seed)
    if sample is not None and X.shape[0] > sample:
        X = X[rng.choice(X.shape[0], size=sample, replace=False)]

    scores: List[Tuple[int, float]] = []
    fits = {}
    for k in candidates:
        if k > X.shape[0]:
            break
        fit = KMeans(k, seed=seed).fit(X, rng)
        fits[k] = fit
        if method == "elbow":
            scores.append((k, fit.inertia))
        else:
            if len(np.unique(fit.labels)) < 2:
                scores.append((k, -1.0))
            else:
                scores.append(
                    (k, silhouette_score(X, fit.labels, sample=None))
                )
    if not scores:
        raise QueryError("no feasible candidate cluster counts")

    if method == "elbow":
        idx = _elbow_index([s for _, s in scores])
    else:
        idx = int(np.argmax([s for _, s in scores]))
    return ClusterCountChoice(scores[idx][0], method, tuple(scores))
