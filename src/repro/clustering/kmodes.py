"""k-modes clustering for purely categorical code matrices.

An alternative to one-hot + k-means (Huang-style k-modes): tuples are
rows of integer codes, dissimilarity is the number of mismatching
attributes, and centroids are per-attribute modes.  Exposed so the
clustering-choice ablation can compare it against the paper's k-means;
it also handles missing codes (-1) natively (a missing entry mismatches
everything, including another missing entry).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import QueryError
from repro.obs import work
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["KModesResult", "KModes"]


@dataclass(frozen=True)
class KModesResult:
    """Outcome of one k-modes fit."""

    labels: np.ndarray    # (n,) int32
    modes: np.ndarray     # (k, d) int32 per-attribute modes
    cost: float           # total mismatch count
    n_iter: int

    @property
    def k(self) -> int:
        """The number of clusters actually fit."""
        return self.modes.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """(k,) member counts."""
        return np.bincount(self.labels, minlength=self.k)


def _mismatches(X: np.ndarray, modes: np.ndarray) -> np.ndarray:
    """(n, k) matching-dissimilarity matrix; missing never matches."""
    work.add("work.cluster.distance_evals", X.shape[0] * modes.shape[0])
    eq = (X[:, None, :] == modes[None, :, :]) & (X[:, None, :] >= 0)
    return (~eq).sum(axis=2)


def _column_modes(X: np.ndarray, minlength: int = 0) -> np.ndarray:
    """Per-column most frequent non-missing code (-1 for all-missing)."""
    out = np.empty(X.shape[1], dtype=np.int32)
    for j in range(X.shape[1]):
        col = X[:, j]
        col = col[col >= 0]
        if col.size == 0:
            out[j] = -1
            continue
        out[j] = np.bincount(col).argmax()
    return out


class KModes:
    """Huang's k-modes with greedy density-based seeding."""

    def __init__(self, n_clusters: int, max_iter: int = 50, seed: int = 0):
        if n_clusters < 1:
            raise QueryError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.seed = seed

    def fit(
        self,
        X: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        checkpoint: Optional[Callable[[], None]] = None,
        tracer: Optional[Tracer] = None,
    ) -> KModesResult:
        """Cluster the rows of an (n, d) integer code matrix.

        ``checkpoint`` is called once per iteration (see
        :meth:`KMeans.fit`); ``n_clusters > n`` clamps with a warning.
        A ``tracer`` gains a ``kmodes`` span recording iterations and
        empty-cluster reseeds, mirroring the k-means span.
        """
        X = np.asarray(X, dtype=np.int32)
        if X.ndim != 2:
            raise QueryError(f"X must be 2-D, got shape {X.shape}")
        n = X.shape[0]
        if n == 0:
            raise QueryError("cannot cluster zero rows")
        rng = rng or np.random.default_rng(self.seed)
        if self.n_clusters > n:
            warnings.warn(
                f"n_clusters={self.n_clusters} > n_samples={n}; "
                f"clamping to {n} singleton clusters",
                UserWarning,
                stacklevel=2,
            )
        k = min(self.n_clusters, n)
        tracer = tracer or NULL_TRACER

        with tracer.span("kmodes", n=n, d=int(X.shape[1]), k=k) as span:
            # seed with distinct random rows (k-modes++ analogue:
            # farthest rows)
            modes = X[rng.choice(n, size=1)]
            while modes.shape[0] < k:
                # seeding scans all n rows per new mode; a budgeted
                # caller must be able to stop here too, not just in the
                # main loop
                if checkpoint is not None:
                    checkpoint()
                d = _mismatches(X, modes).min(axis=1).astype(float)
                total = d.sum()
                if total <= 0:
                    idx = int(rng.integers(n))
                else:
                    idx = int(rng.choice(n, p=d / total))
                modes = np.vstack([modes, X[idx]])

            labels = np.zeros(n, dtype=np.int32)
            n_iter = 0
            for n_iter in range(1, self.max_iter + 1):
                if checkpoint is not None:
                    checkpoint()
                span.inc("iterations")
                work.add("work.cluster.iterations")
                d = _mismatches(X, modes)
                new_labels = d.argmin(axis=1).astype(np.int32)
                new_modes = modes.copy()
                for j in range(k):
                    members = X[new_labels == j]
                    if members.shape[0]:
                        new_modes[j] = _column_modes(members)
                    else:
                        # reseed an empty cluster at the worst-fit row
                        span.inc("reseeds")
                        work.add("work.cluster.reseeds")
                        worst = int(d[np.arange(n), new_labels].argmax())
                        new_modes[j] = X[worst]
                if np.array_equal(new_labels, labels) and np.array_equal(
                    new_modes, modes
                ):
                    labels = new_labels
                    break
                labels, modes = new_labels, new_modes

            cost = float(_mismatches(X, modes)[np.arange(n), labels].sum())
        return KModesResult(labels, modes, cost, n_iter)
