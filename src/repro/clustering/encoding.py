"""Encodings that turn discretized tuples into clusterable vectors.

The paper clusters each pivot value's tuples "using only the
above-chosen Compare Attributes" (Sec. 3.1.2) with standard k-means.
k-means needs numeric vectors, so the discretized (all-categorical)
tuples are one-hot encoded: one indicator block per Compare Attribute.

Each block is optionally scaled by ``1 / sqrt(2)`` per attribute so that
two tuples differing in one attribute are at distance 1 regardless of
that attribute's cardinality — without this, high-cardinality attributes
neither gain nor lose weight, which keeps the clustering aligned with
the labeling step (which treats attributes uniformly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.discretize.discretizer import DiscretizedView
from repro.errors import QueryError

__all__ = ["Encoding", "one_hot_encode"]


@dataclass(frozen=True)
class Encoding:
    """A one-hot encoding of some view rows.

    Attributes
    ----------
    matrix:
        (n_rows, total_width) float64 design matrix.
    names:
        The encoded attribute names, in block order.
    offsets:
        Start column of each attribute's block; ``offsets[name] + code``
        is the column of a specific attribute value.
    widths:
        Number of columns per attribute (its code-domain size).
    """

    matrix: np.ndarray
    names: Tuple[str, ...]
    offsets: Dict[str, int]
    widths: Dict[str, int]

    def column_of(self, name: str, code: int) -> int:
        """Design-matrix column of (attribute, code)."""
        if name not in self.offsets:
            raise QueryError(f"{name!r} not encoded")
        if not 0 <= code < self.widths[name]:
            raise QueryError(f"code {code} out of range for {name!r}")
        return self.offsets[name] + code

    def block(self, centers: np.ndarray, name: str) -> np.ndarray:
        """The slice of ``centers`` columns belonging to ``name``."""
        start = self.offsets[name]
        return centers[:, start:start + self.widths[name]]


def one_hot_encode(
    view: DiscretizedView,
    names: Sequence[str],
    scale: bool = True,
) -> Encoding:
    """One-hot encode ``names`` over all rows of ``view``.

    Missing codes contribute an all-zero block.  With ``scale=True`` the
    two indicator entries that differ between tuples disagreeing on one
    attribute contribute exactly 1.0 to squared distance.
    """
    names = tuple(names)
    if not names:
        raise QueryError("cannot encode zero attributes")
    n = len(view)
    widths = {name: view.ncodes(name) for name in names}
    offsets: Dict[str, int] = {}
    total = 0
    for name in names:
        offsets[name] = total
        total += max(1, widths[name])
    X = np.zeros((n, total), dtype=np.float64)
    value = 1.0 / np.sqrt(2.0) if scale else 1.0
    rows = np.arange(n)
    for name in names:
        codes = view.codes(name)
        valid = codes >= 0
        X[rows[valid], offsets[name] + codes[valid]] = value
    return Encoding(X, names, offsets, widths)
