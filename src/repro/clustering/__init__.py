"""Clustering substrate: encodings, k-means, k-modes, quality measures."""

from repro.clustering.encoding import Encoding, one_hot_encode
from repro.clustering.kmeans import KMeans, KMeansResult
from repro.clustering.hierarchical import AgglomerativeResult, agglomerative
from repro.clustering.kmodes import KModes, KModesResult
from repro.clustering.model_selection import (
    ClusterCountChoice,
    select_num_clusters,
)
from repro.clustering.quality import davies_bouldin, inertia, silhouette_score

__all__ = [
    "Encoding", "one_hot_encode",
    "KMeans", "KMeansResult",
    "KModes", "KModesResult",
    "inertia", "silhouette_score", "davies_bouldin",
    "ClusterCountChoice", "select_num_clusters",
    "AgglomerativeResult", "agglomerative",
]
