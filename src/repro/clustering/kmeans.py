"""Standard k-means (Lloyd's algorithm with k-means++ seeding).

The paper uses Weka's SimpleKMeans "since both efficiency and quality
are major concerns" (Sec. 3.1.2).  This is the numpy equivalent:
k-means++ initialization, vectorized assignment via the expanded
squared-distance identity, empty-cluster reseeding to the farthest
points, and a relative-improvement stopping rule.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import QueryError
from repro.obs import work
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["KMeansResult", "KMeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means fit."""

    labels: np.ndarray      # (n,) int32 cluster assignment
    centers: np.ndarray     # (k, d) float64 centroids
    inertia: float          # sum of squared distances to assigned centers
    n_iter: int             # Lloyd iterations executed

    @property
    def k(self) -> int:
        """The number of clusters actually fit."""
        return self.centers.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """(k,) tuple counts per cluster."""
        return np.bincount(self.labels, minlength=self.k)


def _pairwise_sq_dists(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    """(n, k) squared Euclidean distances via |x|^2 - 2xC' + |c|^2."""
    work.add("work.cluster.distance_evals", X.shape[0] * C.shape[0])
    x2 = np.einsum("ij,ij->i", X, X)[:, None]
    c2 = np.einsum("ij,ij->i", C, C)[None, :]
    d = x2 - 2.0 * (X @ C.T) + c2
    np.maximum(d, 0.0, out=d)
    return d


class KMeans:
    """Lloyd's k-means with k-means++ seeding.

    Parameters
    ----------
    n_clusters:
        Number of clusters (the paper's ``l`` candidate IUnits).
    max_iter:
        Iteration cap; the interactive setting favors small caps.
    tol:
        Relative inertia improvement below which we stop.
    seed:
        RNG seed for reproducible views.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 50,
        tol: float = 1e-4,
        seed: int = 0,
    ):
        if n_clusters < 1:
            raise QueryError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed

    # -- seeding ---------------------------------------------------------

    def _init_centers(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++: spread seeds proportionally to squared distance."""
        n = X.shape[0]
        k = min(self.n_clusters, n)
        centers = np.empty((k, X.shape[1]))
        first = int(rng.integers(n))
        centers[0] = X[first]
        closest = _pairwise_sq_dists(X, centers[:1]).ravel()
        for j in range(1, k):
            total = closest.sum()
            if total <= 0:
                # all points coincide with chosen centers; fill uniformly
                centers[j:] = X[rng.integers(n, size=k - j)]
                break
            probs = closest / total
            idx = int(rng.choice(n, p=probs))
            centers[j] = X[idx]
            closest = np.minimum(
                closest, _pairwise_sq_dists(X, centers[j:j + 1]).ravel()
            )
        return centers

    # -- fitting ------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        checkpoint: Optional[Callable[[], None]] = None,
        tracer: Optional[Tracer] = None,
    ) -> KMeansResult:
        """Cluster the rows of ``X``.

        If there are fewer rows than clusters, every row becomes its own
        cluster (k is clamped, with a warning — tiny pivot partitions
        are routine, not an error).  ``checkpoint`` is called once per
        Lloyd iteration; a budgeted caller passes a deadline check that
        raises :class:`~repro.errors.BudgetExceededError`.  A ``tracer``
        gains a ``kmeans`` span recording iterations, empty-cluster
        reseeds and convergence.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise QueryError(f"X must be 2-D, got shape {X.shape}")
        n = X.shape[0]
        if n == 0:
            raise QueryError("cannot cluster zero rows")
        rng = rng or np.random.default_rng(self.seed)
        if self.n_clusters > n:
            warnings.warn(
                f"n_clusters={self.n_clusters} > n_samples={n}; "
                f"clamping to {n} singleton clusters",
                UserWarning,
                stacklevel=2,
            )
        k = min(self.n_clusters, n)
        tracer = tracer or NULL_TRACER

        with tracer.span("kmeans", n=n, d=int(X.shape[1]), k=k) as span:
            centers = self._init_centers(X, rng)
            labels = np.zeros(n, dtype=np.int32)
            prev_inertia = np.inf
            converged = False
            n_iter = 0
            for n_iter in range(1, self.max_iter + 1):
                if checkpoint is not None:
                    checkpoint()
                span.inc("iterations")
                work.add("work.cluster.iterations")
                dists = _pairwise_sq_dists(X, centers)
                labels = dists.argmin(axis=1).astype(np.int32)
                inertia = float(dists[np.arange(n), labels].sum())

                # recompute centroids; reseed empties to farthest points
                counts = np.bincount(labels, minlength=k).astype(np.float64)
                sums = np.zeros_like(centers)
                np.add.at(sums, labels, X)
                empty = counts == 0
                if empty.any():
                    span.inc("reseeds", int(empty.sum()))
                    work.add("work.cluster.reseeds", int(empty.sum()))
                    far = np.argsort(dists[np.arange(n), labels])[::-1]
                    replacements = iter(far)
                    for j in np.flatnonzero(empty):
                        idx = next(replacements)
                        sums[j] = X[idx]
                        counts[j] = 1.0
                centers = sums / counts[:, None]

                if np.isfinite(prev_inertia) and (
                    prev_inertia - inertia
                    <= self.tol * max(prev_inertia, 1e-12)
                ):
                    converged = True
                    break
                prev_inertia = inertia

            # final assignment against the final centers
            dists = _pairwise_sq_dists(X, centers)
            labels = dists.argmin(axis=1).astype(np.int32)
            inertia = float(dists[np.arange(n), labels].sum())
            span.set_attr("converged", converged)
            span.set_attr("inertia", round(inertia, 6))
        return KMeansResult(labels, centers, inertia, n_iter)
