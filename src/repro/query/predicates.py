"""Predicate algebra over tables.

Predicates are immutable trees that evaluate to boolean masks on a
:class:`~repro.dataset.table.Table`.  They compose with ``&``, ``|`` and
``~`` and serialize back to SQL-ish text, which the faceted interface and
the study agents use to show/replay selections::

    pred = Eq("BodyType", "SUV") & Between("Mileage", 10_000, 30_000)
    suvs = engine.select(table, pred)
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.dataset.table import Table
from repro.errors import QueryError, TypeMismatchError

__all__ = [
    "Predicate", "TruePred", "Eq", "Ne", "In", "Between",
    "Cmp", "IsMissing", "And", "Or", "Not",
]


def _quote(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class Predicate:
    """Base class. Subclasses implement :meth:`mask` and :meth:`to_sql`."""

    def mask(self, table: Table) -> np.ndarray:
        """Boolean numpy array: True for rows satisfying the predicate."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """SQL-ish text form of the predicate."""
        raise NotImplementedError

    def attributes(self) -> Tuple[str, ...]:
        """All attribute names referenced, in first-mention order."""
        raise NotImplementedError

    # -- composition --------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Predicate) and self.to_sql() == other.to_sql()

    def __hash__(self) -> int:
        return hash(self.to_sql())


class TruePred(Predicate):
    """Matches every row (the empty WHERE clause)."""

    def mask(self, table: Table) -> np.ndarray:
        return np.ones(len(table), dtype=bool)

    def to_sql(self) -> str:
        return "TRUE"

    def attributes(self) -> Tuple[str, ...]:
        return ()


class _Leaf(Predicate):
    """Common base of single-attribute predicates."""

    def __init__(self, attr: str):
        self.attr = attr

    def attributes(self) -> Tuple[str, ...]:
        return (self.attr,)


class Eq(_Leaf):
    """``attr = value``; value is matched on the decoded representation."""

    def __init__(self, attr: str, value):
        super().__init__(attr)
        self.value = value

    def mask(self, table: Table) -> np.ndarray:
        col = table[self.attr]
        if col.attribute.is_categorical:
            code = col.code_of(str(self.value))
            return col.codes == code if code >= 0 else np.zeros(len(table), bool)
        try:
            target = float(self.value)
        except (TypeError, ValueError):
            raise TypeMismatchError(
                f"cannot compare numeric {self.attr!r} with {self.value!r}"
            ) from None
        return col.numbers == target

    def to_sql(self) -> str:
        return f"{self.attr} = {_quote(self.value)}"


class Ne(_Leaf):
    """``attr <> value`` (missing rows do not match)."""

    def __init__(self, attr: str, value):
        super().__init__(attr)
        self.value = value

    def mask(self, table: Table) -> np.ndarray:
        col = table[self.attr]
        eq = Eq(self.attr, self.value).mask(table)
        if col.attribute.is_categorical:
            present = col.codes >= 0
        else:
            present = ~np.isnan(col.numbers)
        return present & ~eq

    def to_sql(self) -> str:
        return f"{self.attr} <> {_quote(self.value)}"


class In(_Leaf):
    """``attr IN (v1, v2, ...)``."""

    def __init__(self, attr: str, values: Iterable):
        super().__init__(attr)
        self.values: Tuple = tuple(values)
        if not self.values:
            raise QueryError(f"IN list for {attr!r} is empty")

    def mask(self, table: Table) -> np.ndarray:
        col = table[self.attr]
        if col.attribute.is_categorical:
            codes = [col.code_of(str(v)) for v in self.values]
            codes = [c for c in codes if c >= 0]
            if not codes:
                return np.zeros(len(table), bool)
            return np.isin(col.codes, codes)
        try:
            targets = [float(v) for v in self.values]
        except (TypeError, ValueError):
            raise TypeMismatchError(
                f"cannot compare numeric {self.attr!r} with {self.values!r}"
            ) from None
        return np.isin(col.numbers, targets)

    def to_sql(self) -> str:
        inner = ", ".join(_quote(v) for v in self.values)
        return f"{self.attr} IN ({inner})"


class Between(_Leaf):
    """``attr BETWEEN lo AND hi`` (inclusive both ends, like SQL)."""

    def __init__(self, attr: str, lo: float, hi: float):
        super().__init__(attr)
        self.lo = float(lo)
        self.hi = float(hi)
        if self.lo > self.hi:
            raise QueryError(f"BETWEEN bounds reversed: {lo} > {hi}")

    def mask(self, table: Table) -> np.ndarray:
        nums = table[self.attr].numbers
        return (nums >= self.lo) & (nums <= self.hi)

    def to_sql(self) -> str:
        return f"{self.attr} BETWEEN {_quote(self.lo)} AND {_quote(self.hi)}"


class Cmp(_Leaf):
    """``attr <op> value`` for ``<``, ``<=``, ``>``, ``>=`` on numerics."""

    _OPS = {
        "<": np.less, "<=": np.less_equal,
        ">": np.greater, ">=": np.greater_equal,
    }

    def __init__(self, attr: str, op: str, value: float):
        super().__init__(attr)
        if op not in self._OPS:
            raise QueryError(f"unsupported comparison operator {op!r}")
        self.op = op
        self.value = float(value)

    def mask(self, table: Table) -> np.ndarray:
        nums = table[self.attr].numbers
        with np.errstate(invalid="ignore"):
            return self._OPS[self.op](nums, self.value)

    def to_sql(self) -> str:
        return f"{self.attr} {self.op} {_quote(self.value)}"


class IsMissing(_Leaf):
    """``attr IS NULL``."""

    def mask(self, table: Table) -> np.ndarray:
        col = table[self.attr]
        if col.attribute.is_categorical:
            return col.codes < 0
        return np.isnan(col.numbers)

    def to_sql(self) -> str:
        return f"{self.attr} IS NULL"


class And(Predicate):
    """Conjunction of child predicates; flattens nested ANDs."""

    def __init__(self, children: Sequence[Predicate]):
        flat: list = []
        for c in children:
            if isinstance(c, And):
                flat.extend(c.children)
            elif not isinstance(c, TruePred):
                flat.append(c)
        self.children: Tuple[Predicate, ...] = tuple(flat)

    def mask(self, table: Table) -> np.ndarray:
        out = np.ones(len(table), dtype=bool)
        for c in self.children:
            out &= c.mask(table)
        return out

    def to_sql(self) -> str:
        if not self.children:
            return "TRUE"
        return " AND ".join(
            f"({c.to_sql()})" if isinstance(c, Or) else c.to_sql()
            for c in self.children
        )

    def attributes(self) -> Tuple[str, ...]:
        seen: list = []
        for c in self.children:
            for a in c.attributes():
                if a not in seen:
                    seen.append(a)
        return tuple(seen)


class Or(Predicate):
    """Disjunction of child predicates; flattens nested ORs."""

    def __init__(self, children: Sequence[Predicate]):
        flat: list = []
        for c in children:
            if isinstance(c, Or):
                flat.extend(c.children)
            else:
                flat.append(c)
        if not flat:
            raise QueryError("OR of zero predicates")
        self.children: Tuple[Predicate, ...] = tuple(flat)

    def mask(self, table: Table) -> np.ndarray:
        out = np.zeros(len(table), dtype=bool)
        for c in self.children:
            out |= c.mask(table)
        return out

    def to_sql(self) -> str:
        return " OR ".join(
            f"({c.to_sql()})" if isinstance(c, And) else c.to_sql()
            for c in self.children
        )

    def attributes(self) -> Tuple[str, ...]:
        seen: list = []
        for c in self.children:
            for a in c.attributes():
                if a not in seen:
                    seen.append(a)
        return tuple(seen)


class Not(Predicate):
    """Negation."""

    def __init__(self, child: Predicate):
        self.child = child

    def mask(self, table: Table) -> np.ndarray:
        return ~self.child.mask(table)

    def to_sql(self) -> str:
        return f"NOT ({self.child.to_sql()})"

    def attributes(self) -> Tuple[str, ...]:
        return self.child.attributes()
