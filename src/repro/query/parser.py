"""Recursive-descent parser for the SQL subset plus CADVIEW extensions.

Accepts the statements shown verbatim in the paper, including its
informal touches:

* numeric literals may carry a ``K`` suffix (``10K`` == 10000) or ``M``
  (``1M`` == 1000000) — the paper writes ``Mileage BETWEEN 10K AND 30K``;
* bare identifiers on the right-hand side of comparisons are string
  values (the paper writes ``Transmission = Automatic``);
* keywords are case-insensitive; identifiers keep their case.

Grammar (informal)::

    statement   := select | create_cadview | highlight | reorder
    select      := SELECT cols FROM ident [WHERE expr]
                   [ORDER BY key (, key)*] [LIMIT int]
    cols        := '*' | ident (',' ident)*
    expr        := term (OR term)*
    term        := factor (AND factor)*
    factor      := NOT factor | '(' expr ')' | comparison
    comparison  := ident ('='|'<>'|'!='|'<'|'<='|'>'|'>=') value
                 | ident BETWEEN value AND value
                 | ident IN '(' value (',' value)* ')'
                 | ident IS [NOT] NULL
                 | TRUE
    value       := number | string | ident
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.query.ast import (
    CreateCadViewStatement,
    DescribeStatement,
    DropCadViewStatement,
    ExplainStatement,
    HighlightSimilarStatement,
    OrderKey,
    ReorderRowsStatement,
    SelectStatement,
    ShowCadViewsStatement,
    Statement,
)
from repro.query.predicates import (
    And, Between, Cmp, Eq, In, IsMissing, Ne, Not, Or, Predicate, TruePred,
)

__all__ = ["parse", "parse_predicate", "tokenize", "Token"]


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?\s*[KkMm]?(?![\w.]))
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<op><>|!=|<=|>=|=|<|>)
  | (?P<punct>[(),*;])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "BETWEEN", "IN", "IS",
    "NULL", "TRUE", "LIMIT", "ORDER", "BY", "ASC", "DESC", "CREATE",
    "CADVIEW", "AS", "SET", "PIVOT", "COLUMNS", "IUNITS", "HIGHLIGHT",
    "SIMILAR", "REORDER", "ROWS", "SIMILARITY", "DESCRIBE", "SHOW",
    "CADVIEWS", "DROP", "EXPLAIN", "ANALYZE", "CHECK",
}


class Token:
    """One lexer token: kind in {number, string, ident, keyword, op, punct}.

    ``pos``/``end`` are the start/end character offsets in the source
    text, recorded so parse errors and analyzer diagnostics can point at
    the exact span.
    """

    __slots__ = ("kind", "value", "pos", "end")

    def __init__(self, kind: str, value, pos: int, end: Optional[int] = None):
        self.kind = kind
        self.value = value
        self.pos = pos
        self.end = end if end is not None else pos + len(str(value))

    @property
    def span(self) -> Tuple[int, int]:
        """The (start, end) character offsets of this token."""
        return (self.pos, self.end)

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens, raising :class:`ParseError` on junk."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError("unexpected character", text, pos)
        kind = m.lastgroup
        raw = m.group()
        end = m.end()
        if kind == "ws":
            pass
        elif kind == "number":
            raw = raw.strip()
            mult = 1.0
            if raw[-1] in "KkMm":
                mult = 1_000.0 if raw[-1] in "Kk" else 1_000_000.0
                raw = raw[:-1].strip()
            tokens.append(Token("number", float(raw) * mult, pos, end))
        elif kind == "string":
            tokens.append(
                Token("string", raw[1:-1].replace("''", "'"), pos, end)
            )
        elif kind == "ident":
            upper = raw.upper()
            if upper in _KEYWORDS:
                tokens.append(Token("keyword", upper, pos, end))
            else:
                tokens.append(Token("ident", raw, pos, end))
        else:
            tokens.append(Token(kind, raw, pos, end))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.i = 0

    # -- token helpers ------------------------------------------------

    def _peek(self) -> Optional[Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def _next(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise ParseError("unexpected end of statement", self.text,
                             len(self.text))
        self.i += 1
        return tok

    def _accept_keyword(self, *words: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "keyword" and tok.value in words:
            self.i += 1
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        tok = self._next()
        if tok.kind != "keyword" or tok.value != word:
            raise ParseError(f"expected {word}", self.text, tok.pos)

    def _expect_punct(self, ch: str) -> None:
        tok = self._next()
        if tok.kind != "punct" or tok.value != ch:
            raise ParseError(f"expected {ch!r}", self.text, tok.pos)

    def _accept_punct(self, ch: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "punct" and tok.value == ch:
            self.i += 1
            return True
        return False

    def _expect_ident_token(self) -> Token:
        tok = self._next()
        if tok.kind != "ident":
            raise ParseError("expected identifier", self.text, tok.pos)
        return tok

    def _expect_ident(self) -> str:
        return self._expect_ident_token().value

    def _expect_number(self) -> float:
        tok = self._next()
        if tok.kind != "number":
            raise ParseError("expected number", self.text, tok.pos)
        return tok.value

    def _expect_positive_int(self, clause: str) -> int:
        """A sizing clause value: a whole number >= 1.

        ``LIMIT COLUMNS 0`` / ``IUNITS 0`` would build a degenerate view
        (no Compare Attributes, or rows with no IUnits) that every
        downstream phase mishandles — reject them here, at the point
        with the best error position.
        """
        tok = self._peek()
        value = self._expect_number()
        if value != int(value) or int(value) < 1:
            raise ParseError(
                f"{clause} must be a whole number >= 1, got {value:g}",
                self.text, tok.pos if tok is not None else -1,
            )
        return int(value)

    def _expect_op(self, *ops: str) -> str:
        tok = self._next()
        if tok.kind != "op" or tok.value not in ops:
            raise ParseError(f"expected one of {ops}", self.text, tok.pos)
        return tok.value

    # -- entry point -----------------------------------------------------

    def statement(self) -> Statement:
        stmt = self._statement_body()
        self._accept_punct(";")
        if self._peek() is not None:
            raise ParseError("trailing input", self.text, self._peek().pos)
        return stmt

    def _statement_body(self) -> Statement:
        tok = self._peek()
        if tok is None:
            raise ParseError("empty statement", self.text, 0)
        if tok.kind != "keyword":
            raise ParseError("statement must start with a keyword",
                             self.text, tok.pos)
        if tok.value == "EXPLAIN":
            self._next()
            analyze = self._accept_keyword("ANALYZE")
            check = (not analyze) and self._accept_keyword("CHECK")
            inner = self._statement_body()
            if isinstance(inner, ExplainStatement):
                raise ParseError("EXPLAIN cannot be nested",
                                 self.text, tok.pos)
            return ExplainStatement(inner, analyze, check)
        if tok.value == "SELECT":
            stmt: Statement = self._select()
        elif tok.value == "CREATE":
            stmt = self._create_cadview()
        elif tok.value == "HIGHLIGHT":
            stmt = self._highlight()
        elif tok.value == "REORDER":
            stmt = self._reorder()
        elif tok.value == "DESCRIBE":
            self._next()
            table_tok = self._expect_ident_token()
            stmt = DescribeStatement(
                table_tok.value, spans={"table": table_tok.span}
            )
        elif tok.value == "SHOW":
            self._next()
            self._expect_keyword("CADVIEWS")
            stmt = ShowCadViewsStatement()
        elif tok.value == "DROP":
            self._next()
            self._expect_keyword("CADVIEW")
            name_tok = self._expect_ident_token()
            stmt = DropCadViewStatement(
                name_tok.value, spans={"view": name_tok.span}
            )
        else:
            raise ParseError(f"unsupported statement {tok.value}",
                             self.text, tok.pos)
        return stmt

    # -- SELECT -----------------------------------------------------------

    def _column_list(self, spans: dict) -> Tuple[str, ...]:
        if self._accept_punct("*"):
            return ()
        tokens = [self._expect_ident_token()]
        while self._accept_punct(","):
            tokens.append(self._expect_ident_token())
        for i, tok in enumerate(tokens):
            spans[f"select.{i}"] = tok.span
        return tuple(t.value for t in tokens)

    def _order_keys(self, spans: dict) -> Tuple[OrderKey, ...]:
        keys = []
        while True:
            tok = self._expect_ident_token()
            ascending = True
            if self._accept_keyword("ASC"):
                ascending = True
            elif self._accept_keyword("DESC"):
                ascending = False
            spans[f"order.{len(keys)}"] = tok.span
            keys.append(OrderKey(tok.value, ascending))
            if not self._accept_punct(","):
                break
        return tuple(keys)

    def _select(self) -> SelectStatement:
        spans: dict = {}
        self._expect_keyword("SELECT")
        columns = self._column_list(spans)
        self._expect_keyword("FROM")
        table_tok = self._expect_ident_token()
        spans["table"] = table_tok.span
        where = self.expr() if self._accept_keyword("WHERE") else None
        order: Tuple[OrderKey, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order = self._order_keys(spans)
        limit = None
        if self._accept_keyword("LIMIT"):
            tok = self._peek()
            limit = int(self._expect_number())
            if tok is not None:
                spans["limit"] = tok.span
        return SelectStatement(
            table_tok.value, columns, where, order, limit, spans=spans
        )

    # -- CREATE CADVIEW --------------------------------------------------

    def _create_cadview(self) -> CreateCadViewStatement:
        spans: dict = {}
        self._expect_keyword("CREATE")
        self._expect_keyword("CADVIEW")
        name_tok = self._expect_ident_token()
        spans["name"] = name_tok.span
        self._expect_keyword("AS")
        self._expect_keyword("SET")
        self._expect_keyword("PIVOT")
        self._expect_op("=")
        pivot_tok = self._expect_ident_token()
        spans["pivot"] = pivot_tok.span
        self._expect_keyword("SELECT")
        select = self._column_list(spans)
        self._expect_keyword("FROM")
        table_tok = self._expect_ident_token()
        spans["table"] = table_tok.span
        where = self.expr() if self._accept_keyword("WHERE") else None
        limit_columns = None
        iunits = None
        if self._accept_keyword("LIMIT"):
            self._expect_keyword("COLUMNS")
            tok = self._peek()
            limit_columns = self._expect_positive_int("LIMIT COLUMNS")
            if tok is not None:
                spans["limit_columns"] = tok.span
        if self._accept_keyword("IUNITS"):
            tok = self._peek()
            iunits = self._expect_positive_int("IUNITS")
            if tok is not None:
                spans["iunits"] = tok.span
        order: Tuple[OrderKey, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order = self._order_keys(spans)
        return CreateCadViewStatement(
            name_tok.value, pivot_tok.value, table_tok.value, select, where,
            limit_columns, iunits, order, spans=spans,
        )

    # -- HIGHLIGHT SIMILAR IUNITS ----------------------------------------

    def _similarity_args(self, want: int) -> List[Token]:
        self._expect_keyword("SIMILARITY")
        open_tok = self._peek()
        self._expect_punct("(")
        args: List[Token] = []
        while True:
            tok = self._next()
            if tok.kind in ("ident", "string", "number"):
                args.append(tok)
            else:
                raise ParseError("bad SIMILARITY argument", self.text, tok.pos)
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        if len(args) != want:
            raise ParseError(
                f"SIMILARITY takes {want} argument(s), got {len(args)}",
                self.text,
                open_tok.pos if open_tok is not None else -1,
            )
        return args

    def _highlight(self) -> HighlightSimilarStatement:
        self._expect_keyword("HIGHLIGHT")
        self._expect_keyword("SIMILAR")
        self._expect_keyword("IUNITS")
        self._expect_keyword("IN")
        view_tok = self._expect_ident_token()
        self._expect_keyword("WHERE")
        value_tok, iunit_tok = self._similarity_args(2)
        if iunit_tok.kind != "number":
            raise ParseError(
                "SIMILARITY's second argument must be an IUnit number",
                self.text, iunit_tok.pos,
            )
        op = self._expect_op(">", ">=")
        threshold_tok = self._peek()
        threshold = self._expect_number()
        if op == ">":
            # normalize to >= with an open-interval epsilon-free semantics:
            # callers compare with >= on the stored threshold and we keep
            # strictness by storing the raw value; the view operation uses >=.
            pass
        spans = {
            "view": view_tok.span,
            "pivot_value": value_tok.span,
            "iunit_id": iunit_tok.span,
        }
        if threshold_tok is not None:
            spans["threshold"] = threshold_tok.span
        return HighlightSimilarStatement(
            view_tok.value, str(value_tok.value), int(iunit_tok.value),
            float(threshold), spans=spans,
        )

    # -- REORDER ROWS -------------------------------------------------------

    def _reorder(self) -> ReorderRowsStatement:
        self._expect_keyword("REORDER")
        self._expect_keyword("ROWS")
        self._expect_keyword("IN")
        view_tok = self._expect_ident_token()
        self._expect_keyword("ORDER")
        self._expect_keyword("BY")
        (value_tok,) = self._similarity_args(1)
        descending = True
        if self._accept_keyword("ASC"):
            descending = False
        else:
            self._accept_keyword("DESC")
        return ReorderRowsStatement(
            view_tok.value, str(value_tok.value), descending,
            spans={"view": view_tok.span, "pivot_value": value_tok.span},
        )

    # -- WHERE expressions -------------------------------------------------

    def expr(self) -> Predicate:
        node = self._term()
        terms = [node]
        while self._accept_keyword("OR"):
            terms.append(self._term())
        return terms[0] if len(terms) == 1 else Or(terms)

    def _term(self) -> Predicate:
        node = self._factor()
        factors = [node]
        while self._accept_keyword("AND"):
            factors.append(self._factor())
        return factors[0] if len(factors) == 1 else And(factors)

    def _factor(self) -> Predicate:
        if self._accept_keyword("NOT"):
            return Not(self._factor())
        if self._accept_punct("("):
            node = self.expr()
            self._expect_punct(")")
            return node
        if self._accept_keyword("TRUE"):
            return TruePred()
        return self._comparison()

    def _value_token(self) -> Token:
        tok = self._next()
        if tok.kind in ("number", "string", "ident"):
            return tok
        raise ParseError("expected a value", self.text, tok.pos)

    @staticmethod
    def _with_span(pred: Predicate, tok: Token) -> Predicate:
        """Stamp the attribute token's span onto a leaf predicate.

        Stored as a plain attribute (not part of predicate equality)
        so analyzer diagnostics can point at the attribute name.
        """
        pred.attr_span = tok.span  # type: ignore[attr-defined]
        return pred

    def _comparison(self) -> Predicate:
        attr_tok = self._expect_ident_token()
        attr = attr_tok.value
        if self._accept_keyword("BETWEEN"):
            lo = self._expect_number()
            self._expect_keyword("AND")
            hi = self._expect_number()
            return self._with_span(Between(attr, lo, hi), attr_tok)
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            values = [self._value_token().value]
            while self._accept_punct(","):
                values.append(self._value_token().value)
            self._expect_punct(")")
            return self._with_span(In(attr, values), attr_tok)
        if self._accept_keyword("IS"):
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                return Not(self._with_span(IsMissing(attr), attr_tok))
            self._expect_keyword("NULL")
            return self._with_span(IsMissing(attr), attr_tok)
        op = self._expect_op("=", "<>", "!=", "<", "<=", ">", ">=")
        value_tok = self._value_token()
        value = value_tok.value
        if op == "=":
            return self._with_span(Eq(attr, value), attr_tok)
        if op in ("<>", "!="):
            return self._with_span(Ne(attr, value), attr_tok)
        try:
            number = float(value)
        except (TypeError, ValueError):
            raise ParseError(
                f"{op!r} needs a numeric right-hand side, got {value!r}",
                self.text, value_tok.pos,
            ) from None
        return self._with_span(Cmp(attr, op, number), attr_tok)


def parse(text: str) -> Statement:
    """Parse one statement (SELECT / CREATE CADVIEW / HIGHLIGHT / REORDER)."""
    return _Parser(text).statement()


def parse_predicate(text: str) -> Predicate:
    """Parse a bare WHERE-clause expression into a :class:`Predicate`."""
    parser = _Parser(text)
    node = parser.expr()
    if parser._peek() is not None:
        raise ParseError("trailing input", text, parser._peek().pos)
    return node
