"""Recursive-descent parser for the SQL subset plus CADVIEW extensions.

Accepts the statements shown verbatim in the paper, including its
informal touches:

* numeric literals may carry a ``K`` suffix (``10K`` == 10000) or ``M``
  (``1M`` == 1000000) — the paper writes ``Mileage BETWEEN 10K AND 30K``;
* bare identifiers on the right-hand side of comparisons are string
  values (the paper writes ``Transmission = Automatic``);
* keywords are case-insensitive; identifiers keep their case.

Grammar (informal)::

    statement   := select | create_cadview | highlight | reorder
    select      := SELECT cols FROM ident [WHERE expr]
                   [ORDER BY key (, key)*] [LIMIT int]
    cols        := '*' | ident (',' ident)*
    expr        := term (OR term)*
    term        := factor (AND factor)*
    factor      := NOT factor | '(' expr ')' | comparison
    comparison  := ident ('='|'<>'|'!='|'<'|'<='|'>'|'>=') value
                 | ident BETWEEN value AND value
                 | ident IN '(' value (',' value)* ')'
                 | ident IS [NOT] NULL
                 | TRUE
    value       := number | string | ident
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.query.ast import (
    CreateCadViewStatement,
    DescribeStatement,
    DropCadViewStatement,
    ExplainStatement,
    HighlightSimilarStatement,
    OrderKey,
    ReorderRowsStatement,
    SelectStatement,
    ShowCadViewsStatement,
    Statement,
)
from repro.query.predicates import (
    And, Between, Cmp, Eq, In, IsMissing, Ne, Not, Or, Predicate, TruePred,
)

__all__ = ["parse", "parse_predicate", "tokenize", "Token"]


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?\s*[KkMm]?(?![\w.]))
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<op><>|!=|<=|>=|=|<|>)
  | (?P<punct>[(),*;])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "BETWEEN", "IN", "IS",
    "NULL", "TRUE", "LIMIT", "ORDER", "BY", "ASC", "DESC", "CREATE",
    "CADVIEW", "AS", "SET", "PIVOT", "COLUMNS", "IUNITS", "HIGHLIGHT",
    "SIMILAR", "REORDER", "ROWS", "SIMILARITY", "DESCRIBE", "SHOW",
    "CADVIEWS", "DROP", "EXPLAIN", "ANALYZE",
}


class Token:
    """One lexer token: kind in {number, string, ident, keyword, op, punct}."""

    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value, pos: int):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens, raising :class:`ParseError` on junk."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError("unexpected character", text, pos)
        kind = m.lastgroup
        raw = m.group()
        if kind == "ws":
            pass
        elif kind == "number":
            raw = raw.strip()
            mult = 1.0
            if raw[-1] in "KkMm":
                mult = 1_000.0 if raw[-1] in "Kk" else 1_000_000.0
                raw = raw[:-1].strip()
            tokens.append(Token("number", float(raw) * mult, pos))
        elif kind == "string":
            tokens.append(Token("string", raw[1:-1].replace("''", "'"), pos))
        elif kind == "ident":
            upper = raw.upper()
            if upper in _KEYWORDS:
                tokens.append(Token("keyword", upper, pos))
            else:
                tokens.append(Token("ident", raw, pos))
        else:
            tokens.append(Token(kind, raw, pos))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.i = 0

    # -- token helpers ------------------------------------------------

    def _peek(self) -> Optional[Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def _next(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise ParseError("unexpected end of statement", self.text,
                             len(self.text))
        self.i += 1
        return tok

    def _accept_keyword(self, *words: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "keyword" and tok.value in words:
            self.i += 1
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        tok = self._next()
        if tok.kind != "keyword" or tok.value != word:
            raise ParseError(f"expected {word}", self.text, tok.pos)

    def _expect_punct(self, ch: str) -> None:
        tok = self._next()
        if tok.kind != "punct" or tok.value != ch:
            raise ParseError(f"expected {ch!r}", self.text, tok.pos)

    def _accept_punct(self, ch: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "punct" and tok.value == ch:
            self.i += 1
            return True
        return False

    def _expect_ident(self) -> str:
        tok = self._next()
        if tok.kind != "ident":
            raise ParseError("expected identifier", self.text, tok.pos)
        return tok.value

    def _expect_number(self) -> float:
        tok = self._next()
        if tok.kind != "number":
            raise ParseError("expected number", self.text, tok.pos)
        return tok.value

    def _expect_positive_int(self, clause: str) -> int:
        """A sizing clause value: a whole number >= 1.

        ``LIMIT COLUMNS 0`` / ``IUNITS 0`` would build a degenerate view
        (no Compare Attributes, or rows with no IUnits) that every
        downstream phase mishandles — reject them here, at the point
        with the best error position.
        """
        tok = self._peek()
        value = self._expect_number()
        if value != int(value) or int(value) < 1:
            raise ParseError(
                f"{clause} must be a whole number >= 1, got {value:g}",
                self.text, tok.pos if tok is not None else -1,
            )
        return int(value)

    def _expect_op(self, *ops: str) -> str:
        tok = self._next()
        if tok.kind != "op" or tok.value not in ops:
            raise ParseError(f"expected one of {ops}", self.text, tok.pos)
        return tok.value

    # -- entry point -----------------------------------------------------

    def statement(self) -> Statement:
        stmt = self._statement_body()
        self._accept_punct(";")
        if self._peek() is not None:
            raise ParseError("trailing input", self.text, self._peek().pos)
        return stmt

    def _statement_body(self) -> Statement:
        tok = self._peek()
        if tok is None:
            raise ParseError("empty statement", self.text, 0)
        if tok.kind != "keyword":
            raise ParseError("statement must start with a keyword",
                             self.text, tok.pos)
        if tok.value == "EXPLAIN":
            self._next()
            analyze = self._accept_keyword("ANALYZE")
            inner = self._statement_body()
            if isinstance(inner, ExplainStatement):
                raise ParseError("EXPLAIN cannot be nested",
                                 self.text, tok.pos)
            return ExplainStatement(inner, analyze)
        if tok.value == "SELECT":
            stmt: Statement = self._select()
        elif tok.value == "CREATE":
            stmt = self._create_cadview()
        elif tok.value == "HIGHLIGHT":
            stmt = self._highlight()
        elif tok.value == "REORDER":
            stmt = self._reorder()
        elif tok.value == "DESCRIBE":
            self._next()
            stmt = DescribeStatement(self._expect_ident())
        elif tok.value == "SHOW":
            self._next()
            self._expect_keyword("CADVIEWS")
            stmt = ShowCadViewsStatement()
        elif tok.value == "DROP":
            self._next()
            self._expect_keyword("CADVIEW")
            stmt = DropCadViewStatement(self._expect_ident())
        else:
            raise ParseError(f"unsupported statement {tok.value}",
                             self.text, tok.pos)
        return stmt

    # -- SELECT -----------------------------------------------------------

    def _column_list(self) -> Tuple[str, ...]:
        if self._accept_punct("*"):
            return ()
        cols = [self._expect_ident()]
        while self._accept_punct(","):
            cols.append(self._expect_ident())
        return tuple(cols)

    def _order_keys(self) -> Tuple[OrderKey, ...]:
        keys = []
        while True:
            attr = self._expect_ident()
            ascending = True
            if self._accept_keyword("ASC"):
                ascending = True
            elif self._accept_keyword("DESC"):
                ascending = False
            keys.append(OrderKey(attr, ascending))
            if not self._accept_punct(","):
                break
        return tuple(keys)

    def _select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        columns = self._column_list()
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = self.expr() if self._accept_keyword("WHERE") else None
        order: Tuple[OrderKey, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order = self._order_keys()
        limit = None
        if self._accept_keyword("LIMIT"):
            limit = int(self._expect_number())
        return SelectStatement(table, columns, where, order, limit)

    # -- CREATE CADVIEW --------------------------------------------------

    def _create_cadview(self) -> CreateCadViewStatement:
        self._expect_keyword("CREATE")
        self._expect_keyword("CADVIEW")
        name = self._expect_ident()
        self._expect_keyword("AS")
        self._expect_keyword("SET")
        self._expect_keyword("PIVOT")
        self._expect_op("=")
        pivot = self._expect_ident()
        self._expect_keyword("SELECT")
        select = self._column_list()
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = self.expr() if self._accept_keyword("WHERE") else None
        limit_columns = None
        iunits = None
        if self._accept_keyword("LIMIT"):
            self._expect_keyword("COLUMNS")
            limit_columns = self._expect_positive_int("LIMIT COLUMNS")
        if self._accept_keyword("IUNITS"):
            iunits = self._expect_positive_int("IUNITS")
        order: Tuple[OrderKey, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order = self._order_keys()
        return CreateCadViewStatement(
            name, pivot, table, select, where, limit_columns, iunits, order
        )

    # -- HIGHLIGHT SIMILAR IUNITS ----------------------------------------

    def _similarity_args(self, want: int) -> list:
        self._expect_keyword("SIMILARITY")
        self._expect_punct("(")
        args: list = []
        while True:
            tok = self._next()
            if tok.kind in ("ident", "string"):
                args.append(tok.value)
            elif tok.kind == "number":
                args.append(tok.value)
            else:
                raise ParseError("bad SIMILARITY argument", self.text, tok.pos)
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        if len(args) != want:
            raise ParseError(
                f"SIMILARITY takes {want} argument(s), got {len(args)}",
                self.text, 0,
            )
        return args

    def _highlight(self) -> HighlightSimilarStatement:
        self._expect_keyword("HIGHLIGHT")
        self._expect_keyword("SIMILAR")
        self._expect_keyword("IUNITS")
        self._expect_keyword("IN")
        view = self._expect_ident()
        self._expect_keyword("WHERE")
        value, iunit = self._similarity_args(2)
        op = self._expect_op(">", ">=")
        threshold = self._expect_number()
        if op == ">":
            # normalize to >= with an open-interval epsilon-free semantics:
            # callers compare with >= on the stored threshold and we keep
            # strictness by storing the raw value; the view operation uses >=.
            pass
        return HighlightSimilarStatement(
            view, str(value), int(iunit), float(threshold)
        )

    # -- REORDER ROWS -------------------------------------------------------

    def _reorder(self) -> ReorderRowsStatement:
        self._expect_keyword("REORDER")
        self._expect_keyword("ROWS")
        self._expect_keyword("IN")
        view = self._expect_ident()
        self._expect_keyword("ORDER")
        self._expect_keyword("BY")
        (value,) = self._similarity_args(1)
        descending = True
        if self._accept_keyword("ASC"):
            descending = False
        else:
            self._accept_keyword("DESC")
        return ReorderRowsStatement(view, str(value), descending)

    # -- WHERE expressions -------------------------------------------------

    def expr(self) -> Predicate:
        node = self._term()
        terms = [node]
        while self._accept_keyword("OR"):
            terms.append(self._term())
        return terms[0] if len(terms) == 1 else Or(terms)

    def _term(self) -> Predicate:
        node = self._factor()
        factors = [node]
        while self._accept_keyword("AND"):
            factors.append(self._factor())
        return factors[0] if len(factors) == 1 else And(factors)

    def _factor(self) -> Predicate:
        if self._accept_keyword("NOT"):
            return Not(self._factor())
        if self._accept_punct("("):
            node = self.expr()
            self._expect_punct(")")
            return node
        if self._accept_keyword("TRUE"):
            return TruePred()
        return self._comparison()

    def _value(self):
        tok = self._next()
        if tok.kind in ("number", "string", "ident"):
            return tok.value
        raise ParseError("expected a value", self.text, tok.pos)

    def _comparison(self) -> Predicate:
        attr = self._expect_ident()
        if self._accept_keyword("BETWEEN"):
            lo = self._expect_number()
            self._expect_keyword("AND")
            hi = self._expect_number()
            return Between(attr, lo, hi)
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            values = [self._value()]
            while self._accept_punct(","):
                values.append(self._value())
            self._expect_punct(")")
            return In(attr, values)
        if self._accept_keyword("IS"):
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                return Not(IsMissing(attr))
            self._expect_keyword("NULL")
            return IsMissing(attr)
        op = self._expect_op("=", "<>", "!=", "<", "<=", ">", ">=")
        value = self._value()
        if op == "=":
            return Eq(attr, value)
        if op in ("<>", "!="):
            return Ne(attr, value)
        return Cmp(attr, op, float(value))


def parse(text: str) -> Statement:
    """Parse one statement (SELECT / CREATE CADVIEW / HIGHLIGHT / REORDER)."""
    return _Parser(text).statement()


def parse_predicate(text: str) -> Predicate:
    """Parse a bare WHERE-clause expression into a :class:`Predicate`."""
    parser = _Parser(text)
    node = parser.expr()
    if parser._peek() is not None:
        raise ParseError("trailing input", text, parser._peek().pos)
    return node
