"""Group-by aggregation and small data cubes.

The paper's related work positions the CAD View against warehouse-style
summaries ("Large volumes of relational data are often summarized using
data warehousing and OLAP technology" — Gray et al.'s data cube [10]).
This module provides that baseline: single- and multi-key group-by with
the usual aggregates, and a CUBE operator producing all grouping-set
roll-ups, so benches and examples can contrast context-dependent CAD
summaries with user-independent OLAP ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.table import Table
from repro.errors import QueryError

__all__ = ["AggregateSpec", "GroupedResult", "group_by", "cube"]

#: Aggregate implementations over a float array of group members.
_AGGREGATES: Dict[str, Callable[[np.ndarray], float]] = {
    "count": lambda v: float(v.size),
    "sum": lambda v: float(np.nansum(v)),
    "mean": lambda v: float(np.nanmean(v)) if v.size else float("nan"),
    "min": lambda v: float(np.nanmin(v)) if v.size else float("nan"),
    "max": lambda v: float(np.nanmax(v)) if v.size else float("nan"),
    "std": lambda v: float(np.nanstd(v)) if v.size else float("nan"),
    "median": lambda v: float(np.nanmedian(v)) if v.size else float("nan"),
}

#: The ALL marker used by cube roll-ups (as in Gray et al.).
ALL = "*"


@dataclass(frozen=True)
class AggregateSpec:
    """One requested aggregate: ``func(attribute)``.

    ``count`` may use any attribute (or ``"*"``): it counts rows.
    """

    func: str
    attribute: str = "*"

    def __post_init__(self) -> None:
        if self.func not in _AGGREGATES:
            raise QueryError(
                f"unknown aggregate {self.func!r}; "
                f"choose from {sorted(_AGGREGATES)}"
            )

    @property
    def label(self) -> str:
        """The output-column name, e.g. ``mean(Price)``."""
        return f"{self.func}({self.attribute})"


@dataclass(frozen=True)
class GroupedResult:
    """Output of :func:`group_by` / one grouping set of :func:`cube`.

    ``keys`` are the group-by attribute names; ``rows`` maps each key
    tuple to its aggregate values, keyed by :attr:`AggregateSpec.label`.
    """

    keys: Tuple[str, ...]
    rows: Mapping[Tuple, Mapping[str, float]]

    def __len__(self) -> int:
        return len(self.rows)

    def value(self, key: Tuple, label: str) -> float:
        """One aggregate cell; raises for unknown group/label."""
        try:
            return self.rows[key][label]
        except KeyError:
            raise QueryError(
                f"no group {key!r} / aggregate {label!r}"
            ) from None

    def sorted_keys(self) -> List[Tuple]:
        """Group keys in display order (stringified sort)."""
        return sorted(self.rows, key=lambda k: tuple(map(str, k)))


def _group_indices(table: Table, keys: Sequence[str]) -> Dict[Tuple, np.ndarray]:
    """Group row indices by decoded key tuples (missing -> None)."""
    columns = [table[k] for k in keys]
    decoded: List[List] = []
    for col in columns:
        decoded.append([col[i] for i in range(len(table))])
    groups: Dict[Tuple, List[int]] = {}
    for i in range(len(table)):
        key = tuple(d[i] for d in decoded)
        groups.setdefault(key, []).append(i)
    return {k: np.asarray(v, dtype=np.intp) for k, v in groups.items()}


def group_by(
    table: Table,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec] = (AggregateSpec("count"),),
) -> GroupedResult:
    """``SELECT keys, aggs FROM table GROUP BY keys``.

    Missing key values group under ``None``.  Numeric aggregates other
    than count require a numeric attribute.
    """
    keys = tuple(keys)
    if not keys:
        raise QueryError("group_by needs at least one key")
    table.schema.require(keys)
    for spec in aggregates:
        if spec.func != "count":
            attr = table.schema[spec.attribute]
            if not attr.is_numeric:
                raise QueryError(
                    f"{spec.label}: {spec.attribute!r} is not numeric"
                )

    groups = _group_indices(table, keys)
    rows: Dict[Tuple, Dict[str, float]] = {}
    # cache numeric arrays once
    numbers: Dict[str, np.ndarray] = {}
    for spec in aggregates:
        if spec.func != "count" and spec.attribute not in numbers:
            numbers[spec.attribute] = table[spec.attribute].numbers
    for key, idx in groups.items():
        out: Dict[str, float] = {}
        for spec in aggregates:
            if spec.func == "count":
                out[spec.label] = float(len(idx))
            else:
                out[spec.label] = _AGGREGATES[spec.func](
                    numbers[spec.attribute][idx]
                )
        rows[key] = out
    return GroupedResult(keys, rows)


def cube(
    table: Table,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec] = (AggregateSpec("count"),),
    max_dims: Optional[int] = None,
) -> Dict[Tuple[str, ...], GroupedResult]:
    """All grouping-set roll-ups of ``keys`` (the CUBE operator).

    Returns a mapping from grouping set (a tuple of key names; ``()`` is
    the grand total) to its :class:`GroupedResult`.  ``max_dims`` caps
    the grouping-set size, like a partial cube.
    """
    keys = tuple(keys)
    table.schema.require(keys)
    limit = len(keys) if max_dims is None else min(max_dims, len(keys))
    out: Dict[Tuple[str, ...], GroupedResult] = {}
    # grand total
    total_rows: Dict[Tuple, Dict[str, float]] = {(): {}}
    for spec in aggregates:
        if spec.func == "count":
            total_rows[()][spec.label] = float(len(table))
        else:
            total_rows[()][spec.label] = _AGGREGATES[spec.func](
                table[spec.attribute].numbers
            )
    out[()] = GroupedResult((), total_rows)
    for size in range(1, limit + 1):
        for subset in combinations(keys, size):
            out[subset] = group_by(table, subset, aggregates)
    return out
