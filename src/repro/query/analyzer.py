"""Semantic analysis of parsed statements — *before* anything executes.

The analyzer checks a parsed :class:`~repro.query.ast.Statement` against
a :class:`~repro.dataset.schema.Schema` (and, when available, the loaded
table and the CAD View registry) without executing it, producing
structured :class:`~repro.query.diagnostics.Diagnostic` records.  A
mistyped column or a `<` on a categorical attribute is caught in
microseconds instead of burning a full — possibly budgeted — CAD View
build; for an exploratory user iterating on queries, that is a latency
feature in itself.

Checks implemented (code table in :mod:`repro.query.diagnostics`):

* name resolution for every table, column and view reference, with a
  "did you mean" suggestion by edit distance over the schema;
* operator/type compatibility: no ordering comparison (`<`, BETWEEN)
  on categorical attributes, no non-numeric literal against numeric
  attributes;
* CADVIEW rules: pivot must be categorical or discretizable, LIMIT
  COLUMNS / IUNITS within the configured caps, in-view search targets
  (pivot value, IUnit id, threshold) must exist in the named view;
* predicate logic over interval/set constraints per column:
  contradictions (``price > 9 AND price < 5`` — always empty, an
  error: the statement cannot return anything), tautologies
  (``price < 5 OR price >= 5`` — the WHERE clause is dead weight) and
  duplicate conjuncts/disjuncts.

Usage::

    report = analyze_statement(parse(sql), engine=engine, text=sql)
    if not report.ok:
        raise AnalysisError(report)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dataset.table import Table
from repro.query.ast import (
    CreateCadViewStatement,
    DescribeStatement,
    DropCadViewStatement,
    ExplainStatement,
    HighlightSimilarStatement,
    OrderKey,
    ReorderRowsStatement,
    SelectStatement,
    Statement,
)
from repro.query.diagnostics import AnalysisReport, Severity, suggest
from repro.query.predicates import (
    And, Between, Cmp, Eq, In, IsMissing, Ne, Not, Or, Predicate, TruePred,
)

__all__ = ["Analyzer", "AnalyzerLimits", "analyze_statement"]


@dataclass(frozen=True)
class AnalyzerLimits:
    """Configured caps for the sizing clauses.

    The defaults bound the view to what the paper's front-end can
    usefully display (Table 1 shows 5 Compare Attributes and 3 IUnits
    per row); a production deployment tightens or loosens them.
    """

    max_compare_columns: int = 24
    max_iunits: int = 16
    wide_pivot_warning: int = 30    # distinct pivot values before QA406


def _is_float(value) -> bool:
    try:
        float(value)
        return True
    except (TypeError, ValueError):
        return False


class _Interval:
    """An open/closed numeric interval accumulated from conjuncts."""

    __slots__ = ("lo", "lo_open", "hi", "hi_open")

    def __init__(self):
        self.lo = float("-inf")
        self.lo_open = False
        self.hi = float("inf")
        self.hi_open = False

    def narrow_low(self, bound: float, open_: bool) -> None:
        if bound > self.lo or (bound == self.lo and open_):
            self.lo, self.lo_open = bound, open_

    def narrow_high(self, bound: float, open_: bool) -> None:
        if bound < self.hi or (bound == self.hi and open_):
            self.hi, self.hi_open = bound, open_

    @property
    def empty(self) -> bool:
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    def contains(self, x: float) -> bool:
        if x < self.lo or (x == self.lo and self.lo_open):
            return False
        if x > self.hi or (x == self.hi and self.hi_open):
            return False
        return True

    def __str__(self) -> str:
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{self.lo:g}, {self.hi:g}{right}"


class Analyzer:
    """Checks statements against a schema/catalog without executing.

    ``engine`` supplies the table catalog (anything with ``table(name)``
    and ``table_names``); ``views`` the named CAD View registry.  Both
    are optional — with neither, only catalog-free checks (predicate
    logic, sizing caps) run, so the analyzer is usable on bare parsed
    statements.
    """

    def __init__(
        self,
        engine=None,
        views: Optional[Mapping[str, object]] = None,
        limits: AnalyzerLimits = AnalyzerLimits(),
    ):
        self.engine = engine
        self.views = views
        self.limits = limits

    # -- entry point ------------------------------------------------------

    def analyze(self, stmt: Statement, text: str = "") -> AnalysisReport:
        """Produce the :class:`AnalysisReport` for one parsed statement."""
        report = AnalysisReport(text=text)
        self._dispatch(stmt, report)
        return report

    def _dispatch(self, stmt: Statement, report: AnalysisReport) -> None:
        if isinstance(stmt, ExplainStatement):
            self._dispatch(stmt.inner, report)
        elif isinstance(stmt, SelectStatement):
            self._select(stmt, report)
        elif isinstance(stmt, CreateCadViewStatement):
            self._create_cadview(stmt, report)
        elif isinstance(stmt, HighlightSimilarStatement):
            self._highlight(stmt, report)
        elif isinstance(stmt, ReorderRowsStatement):
            self._reorder(stmt, report)
        elif isinstance(stmt, DescribeStatement):
            self._resolve_table(stmt.table, stmt, "table", report)
        elif isinstance(stmt, DropCadViewStatement):
            self._resolve_view(stmt.name, stmt, report)
        # ShowCadViewsStatement and unknown statements: nothing to check

    # -- shared helpers ---------------------------------------------------

    @staticmethod
    def _span(stmt: Statement, key: str) -> Optional[Tuple[int, int]]:
        spans = getattr(stmt, "spans", None)
        return spans.get(key) if spans else None

    def _resolve_table(
        self, name: str, stmt: Statement, key: str, report: AnalysisReport
    ) -> Optional[Table]:
        """The named table, or ``None`` (diagnosing when it is unknown)."""
        if self.engine is None:
            return None
        names = tuple(getattr(self.engine, "table_names", ()))
        if name in names:
            return self.engine.table(name)
        report.error(
            "QA101",
            f"unknown table {name!r}; registered: {sorted(names)}",
            span=self._span(stmt, key),
            suggestion=suggest(name, names),
        )
        return None

    def _check_column(
        self,
        name: str,
        table: Optional[Table],
        report: AnalysisReport,
        span: Optional[Tuple[int, int]],
        what: str = "column",
    ) -> bool:
        """True when ``name`` resolves (or no table is loaded)."""
        if table is None:
            return True
        if name in table.schema:
            return True
        report.error(
            "QA102",
            f"unknown {what} {name!r}",
            span=span,
            suggestion=suggest(name, table.schema.names),
        )
        return False

    def _resolve_view(
        self, name: str, stmt: Statement, report: AnalysisReport
    ):
        if self.views is None:
            return None
        if name in self.views:
            return self.views[name]
        report.error(
            "QA501",
            f"unknown CAD View {name!r}; have {sorted(self.views)}",
            span=self._span(stmt, "view"),
            suggestion=suggest(name, tuple(self.views)),
        )
        return None

    # -- SELECT -----------------------------------------------------------

    def _select(self, stmt: SelectStatement, report: AnalysisReport) -> None:
        table = self._resolve_table(stmt.table, stmt, "table", report)
        for i, col in enumerate(stmt.columns):
            self._check_column(
                col, table, report, self._span(stmt, f"select.{i}")
            )
        for i, key in enumerate(stmt.order_by):
            self._check_column(
                key.attribute, table, report, self._span(stmt, f"order.{i}"),
                what="ORDER BY attribute",
            )
        if stmt.where is not None:
            self._check_predicate(stmt.where, table, report)

    # -- CREATE CADVIEW ---------------------------------------------------

    def _create_cadview(
        self, stmt: CreateCadViewStatement, report: AnalysisReport
    ) -> None:
        table = self._resolve_table(stmt.table, stmt, "table", report)
        pivot_span = self._span(stmt, "pivot")
        if self._check_column(
            stmt.pivot, table, report, pivot_span, what="pivot attribute"
        ) and table is not None:
            attr = table.schema[stmt.pivot]
            col = table[stmt.pivot]
            if attr.kind.value == "numeric":
                report.warning(
                    "QA401",
                    f"pivot attribute {stmt.pivot!r} is numeric; it will "
                    f"be discretized into range bins — a categorical "
                    f"pivot usually reads better",
                    span=pivot_span,
                )
            if len(col) and col.missing_count() == len(col):
                report.error(
                    "QA402",
                    f"pivot attribute {stmt.pivot!r} has no non-missing "
                    f"values to pivot on",
                    span=pivot_span,
                )
            elif attr.is_categorical:
                distinct = len(col.distinct_values())
                if distinct > self.limits.wide_pivot_warning:
                    report.warning(
                        "QA406",
                        f"pivot attribute {stmt.pivot!r} has {distinct} "
                        f"distinct values; the view will have one row "
                        f"(and one clustering pass) per value",
                        span=pivot_span,
                    )
        for i, col in enumerate(stmt.select):
            span = self._span(stmt, f"select.{i}")
            self._check_column(col, table, report, span)
            if col == stmt.pivot:
                report.warning(
                    "QA403",
                    f"pivot attribute {stmt.pivot!r} is also listed as a "
                    f"Compare Attribute; it would compare each pivot "
                    f"value with itself",
                    span=span,
                )
        if (
            stmt.limit_columns is not None
            and stmt.limit_columns > self.limits.max_compare_columns
        ):
            report.error(
                "QA404",
                f"LIMIT COLUMNS {stmt.limit_columns} exceeds the "
                f"configured cap of {self.limits.max_compare_columns}",
                span=self._span(stmt, "limit_columns"),
            )
        if (
            stmt.iunits is not None
            and stmt.iunits > self.limits.max_iunits
        ):
            report.error(
                "QA405",
                f"IUNITS {stmt.iunits} exceeds the configured cap of "
                f"{self.limits.max_iunits}",
                span=self._span(stmt, "iunits"),
            )
        for i, key in enumerate(stmt.order_by):
            span = self._span(stmt, f"order.{i}")
            if not self._check_column(
                key.attribute, table, report, span,
                what="ORDER BY attribute",
            ):
                continue
            if table is not None and \
                    table.schema[key.attribute].is_categorical:
                report.error(
                    "QA407",
                    f"CADVIEW ORDER BY needs a numeric attribute; "
                    f"{key.attribute!r} is categorical",
                    span=span,
                )
            elif key.attribute not in stmt.select and stmt.select:
                report.warning(
                    "QA408",
                    f"ORDER BY attribute {key.attribute!r} is not in the "
                    f"SELECT list; the build fails unless it is "
                    f"auto-chosen as a Compare Attribute",
                    span=span,
                )
        if stmt.where is not None:
            self._check_predicate(stmt.where, table, report)

    # -- in-view search statements ----------------------------------------

    def _highlight(
        self, stmt: HighlightSimilarStatement, report: AnalysisReport
    ) -> None:
        view = self._resolve_view(stmt.view, stmt, report)
        if view is None:
            return
        self._check_pivot_value(stmt, view, report)
        row = dict(view.rows).get(stmt.pivot_value)
        if stmt.iunit_id < 1 or (
            row is not None and stmt.iunit_id > len(row)
        ):
            have = len(row) if row is not None else 0
            report.error(
                "QA503",
                f"IUnit id {stmt.iunit_id} out of range for pivot value "
                f"{stmt.pivot_value!r} (row has {have} IUnit(s))",
                span=self._span(stmt, "iunit_id"),
            )
        max_sim = len(view.compare_attributes)
        if stmt.threshold < 0 or stmt.threshold > max_sim:
            report.warning(
                "QA504",
                f"similarity threshold {stmt.threshold:g} is outside "
                f"[0, {max_sim}], the attainable range for "
                f"{max_sim} Compare Attribute(s)",
                span=self._span(stmt, "threshold"),
            )

    def _reorder(
        self, stmt: ReorderRowsStatement, report: AnalysisReport
    ) -> None:
        view = self._resolve_view(stmt.view, stmt, report)
        if view is None:
            return
        self._check_pivot_value(stmt, view, report)

    def _check_pivot_value(self, stmt, view, report: AnalysisReport) -> None:
        values = tuple(view.pivot_values)
        if stmt.pivot_value not in values:
            report.error(
                "QA502",
                f"pivot value {stmt.pivot_value!r} is not a row of view "
                f"{stmt.view!r}",
                span=self._span(stmt, "pivot_value"),
                suggestion=suggest(stmt.pivot_value, values),
            )

    # -- predicates -------------------------------------------------------

    def _check_predicate(
        self,
        pred: Predicate,
        table: Optional[Table],
        report: AnalysisReport,
    ) -> None:
        for leaf in self._leaves(pred):
            self._check_leaf(leaf, table, report)
        self._check_logic(pred, report, negated=False)

    @staticmethod
    def _leaves(pred: Predicate) -> List[Predicate]:
        out: List[Predicate] = []
        stack = [pred]
        while stack:
            node = stack.pop()
            if isinstance(node, (And, Or)):
                stack.extend(node.children)
            elif isinstance(node, Not):
                stack.append(node.child)
            elif not isinstance(node, TruePred):
                out.append(node)
        return out

    def _check_leaf(
        self,
        leaf: Predicate,
        table: Optional[Table],
        report: AnalysisReport,
    ) -> None:
        attr_name = leaf.attributes()[0]
        span = getattr(leaf, "attr_span", None)
        if not self._check_column(attr_name, table, report, span):
            return
        if table is None:
            return
        attr = table.schema[attr_name]
        if not attr.queriable:
            report.warning(
                "QA205",
                f"attribute {attr_name!r} is hidden (not queriable); the "
                f"front-end query panel cannot express this predicate",
                span=span,
            )
        if isinstance(leaf, (Cmp, Between)) and attr.is_categorical:
            op = leaf.op if isinstance(leaf, Cmp) else "BETWEEN"
            report.error(
                "QA201",
                f"ordering comparison {op!r} on categorical attribute "
                f"{attr_name!r}; only = / <> / IN apply",
                span=span,
            )
            return
        values: Sequence = ()
        if isinstance(leaf, (Eq, Ne)):
            values = (leaf.value,)
        elif isinstance(leaf, In):
            values = leaf.values
        if not values:
            return
        if attr.is_numeric:
            bad = [v for v in values if not _is_float(v)]
            if bad:
                report.error(
                    "QA202",
                    f"non-numeric value(s) {bad!r} compared against "
                    f"numeric attribute {attr_name!r}",
                    span=span,
                )
        else:
            numeric = [v for v in values if not isinstance(v, str)]
            if numeric:
                report.warning(
                    "QA203",
                    f"numeric literal(s) {numeric!r} matched against "
                    f"categorical attribute {attr_name!r}; the match is "
                    f"textual",
                    span=span,
                )
            col = table[attr_name]
            missing = [
                v for v in values if col.code_of(str(v)) < 0
            ]
            if missing and isinstance(leaf, (Eq, In)) and \
                    len(missing) == len(values):
                report.warning(
                    "QA204",
                    f"value(s) {missing!r} never occur in "
                    f"{attr_name!r}; this predicate matches no row",
                    span=span,
                )

    # -- predicate logic: contradictions / tautologies --------------------

    def _check_logic(
        self, pred: Predicate, report: AnalysisReport, negated: bool
    ) -> None:
        """Recursive contradiction/tautology scan.

        Constraint propagation is only attempted on And/Or nodes in
        positive position; anything under a NOT is recursed for its own
        sub-structure but not folded into parent constraints.
        """
        if isinstance(pred, Not):
            self._check_logic(pred.child, report, negated=True)
            return
        if isinstance(pred, And):
            self._dup_check(pred.children, "conjunct", report)
            if not negated:
                self._contradiction_check(pred, report)
            for child in pred.children:
                self._check_logic(child, report, negated)
            return
        if isinstance(pred, Or):
            self._dup_check(pred.children, "disjunct", report)
            if not negated:
                self._tautology_check(pred, report)
            for child in pred.children:
                self._check_logic(child, report, negated)

    def _dup_check(
        self,
        children: Sequence[Predicate],
        what: str,
        report: AnalysisReport,
    ) -> None:
        seen: Dict[str, int] = {}
        for child in children:
            sql = child.to_sql()
            seen[sql] = seen.get(sql, 0) + 1
        for sql, count in seen.items():
            if count > 1:
                report.warning(
                    "QA303",
                    f"duplicate {what} ({sql}) appears {count} times",
                )

    def _contradiction_check(
        self, node: And, report: AnalysisReport
    ) -> None:
        intervals: Dict[str, _Interval] = {}
        eq_values: Dict[str, set] = {}
        ne_values: Dict[str, set] = {}
        in_sets: Dict[str, set] = {}

        def reject(attr: str, why: str) -> None:
            report.error(
                "QA301",
                f"contradictory constraints on {attr!r}: {why}; the "
                f"WHERE clause matches no row",
            )

        for child in node.children:
            if isinstance(child, Cmp):
                iv = intervals.setdefault(child.attr, _Interval())
                if child.op in (">", ">="):
                    iv.narrow_low(child.value, child.op == ">")
                else:
                    iv.narrow_high(child.value, child.op == "<")
            elif isinstance(child, Between):
                iv = intervals.setdefault(child.attr, _Interval())
                iv.narrow_low(child.lo, False)
                iv.narrow_high(child.hi, False)
            elif isinstance(child, Eq):
                eq_values.setdefault(child.attr, set()).add(
                    self._canon(child.value)
                )
            elif isinstance(child, Ne):
                ne_values.setdefault(child.attr, set()).add(
                    self._canon(child.value)
                )
            elif isinstance(child, In):
                canon = {self._canon(v) for v in child.values}
                prev = in_sets.get(child.attr)
                in_sets[child.attr] = (
                    canon if prev is None else prev & canon
                )

        for attr, iv in intervals.items():
            if iv.empty:
                reject(attr, f"the value range {iv} is empty")
        for attr, eqs in eq_values.items():
            if len(eqs) > 1:
                reject(attr, f"equal to {len(eqs)} different values")
                continue
            (value,) = eqs
            iv = intervals.get(attr)
            if iv is not None and not iv.empty and \
                    isinstance(value, float) and not iv.contains(value):
                reject(attr, f"= {value:g} lies outside the range {iv}")
            if value in ne_values.get(attr, ()):
                reject(attr, f"both = and <> the same value")
            ins = in_sets.get(attr)
            if ins is not None and value not in ins:
                reject(attr, "the = value is outside the IN list")
        for attr, ins in in_sets.items():
            if not ins:
                reject(attr, "the IN lists have no common value")
                continue
            iv = intervals.get(attr)
            if iv is not None and not iv.empty and all(
                isinstance(v, float) and not iv.contains(v) for v in ins
            ):
                reject(attr, f"every IN value lies outside {iv}")

    def _tautology_check(self, node: Or, report: AnalysisReport) -> None:
        always = False
        if any(isinstance(c, TruePred) for c in node.children):
            always = True
        attrs = {a for c in node.children for a in c.attributes()}
        if not always and len(attrs) == 1:
            lows: List[Tuple[float, bool]] = []   # (bound, closed)
            highs: List[Tuple[float, bool]] = []
            eqs, nes = set(), set()
            for c in node.children:
                if isinstance(c, Cmp):
                    if c.op in (">", ">="):
                        lows.append((c.value, c.op == ">="))
                    else:
                        highs.append((c.value, c.op == "<="))
                elif isinstance(c, Eq):
                    eqs.add(self._canon(c.value))
                elif isinstance(c, Ne):
                    nes.add(self._canon(c.value))
            for lo, lo_closed in lows:
                for hi, hi_closed in highs:
                    if lo < hi or (lo == hi and (lo_closed or hi_closed)):
                        always = True
            if eqs & nes:
                always = True
        if always:
            report.warning(
                "QA302",
                "the WHERE clause is always true; it filters nothing",
            )

    @staticmethod
    def _canon(value):
        """Literal in comparable form: floats for numbers, str otherwise."""
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str) and _is_float(value):
            return float(value)
        return value


def analyze_statement(
    stmt: Statement,
    engine=None,
    views: Optional[Mapping[str, object]] = None,
    text: str = "",
    limits: Optional[AnalyzerLimits] = None,
) -> AnalysisReport:
    """One-shot convenience wrapper around :class:`Analyzer`."""
    analyzer = Analyzer(
        engine=engine, views=views,
        limits=limits if limits is not None else AnalyzerLimits(),
    )
    return analyzer.analyze(stmt, text=text)
