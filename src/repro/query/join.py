"""Equi-joins between tables.

The paper's query model allows ``FROM table1, table2...``; real
e-commerce schemas are rarely one denormalized table, so the substrate
provides hash equi-joins.  A joined table is an ordinary
:class:`~repro.dataset.table.Table`, so CAD Views build over joins with
no special handling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.errors import QueryError, TypeMismatchError

__all__ = ["hash_join"]


def _key_values(table: Table, key: str) -> List:
    col = table[key]
    return [col[i] for i in range(len(table))]


def hash_join(
    left: Table,
    right: Table,
    on: Tuple[str, str],
    how: str = "inner",
    suffixes: Tuple[str, str] = ("_l", "_r"),
) -> Table:
    """Join ``left`` and ``right`` on ``left[on[0]] == right[on[1]]``.

    ``how`` is ``"inner"`` or ``"left"`` (left-outer: unmatched left
    rows keep missing right values).  Duplicate column names (other
    than the join keys when they share a name) get ``suffixes``.
    Missing key values never match, like SQL NULLs.
    """
    if how not in ("inner", "left"):
        raise QueryError(f"unsupported join type {how!r}")
    lkey, rkey = on
    lcol, rcol = left.schema[lkey], right.schema[rkey]
    if lcol.kind.is_numeric != rcol.kind.is_numeric:
        raise TypeMismatchError(
            f"cannot join {lkey!r} ({lcol.kind.value}) with "
            f"{rkey!r} ({rcol.kind.value})"
        )

    # build the hash side on the right
    index: Dict[object, List[int]] = {}
    for i, v in enumerate(_key_values(right, rkey)):
        if v is None:
            continue
        index.setdefault(v, []).append(i)

    left_idx: List[int] = []
    right_idx: List[Optional[int]] = []
    for i, v in enumerate(_key_values(left, lkey)):
        matches = index.get(v, []) if v is not None else []
        if matches:
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)
        elif how == "left":
            left_idx.append(i)
            right_idx.append(None)

    # output schema: left columns keep their names; right columns are
    # renamed on collision (the right join key is dropped when it would
    # duplicate the left key's values under the same name)
    same_key_name = lkey == rkey
    out_attrs: List[Attribute] = list(left.schema)
    right_names: List[Tuple[str, str]] = []  # (source name, output name)
    taken = set(left.schema.names)
    for attr in right.schema:
        if same_key_name and attr.name == rkey:
            continue
        name = attr.name
        if name in taken:
            name = name + suffixes[1]
            if name in taken:
                raise QueryError(
                    f"cannot disambiguate column {attr.name!r}"
                )
        taken.add(name)
        right_names.append((attr.name, name))
        out_attrs.append(
            Attribute(name, attr.kind, attr.queriable, attr.description)
        )
    out_schema = Schema(out_attrs)

    # materialize
    data: Dict[str, List] = {a.name: [] for a in out_attrs}
    lcache = {i: left.row(i) for i in set(left_idx)}
    rcache = {j: right.row(j) for j in set(k for k in right_idx if k is not None)}
    for i, j in zip(left_idx, right_idx):
        lrow = lcache[i]
        for name in left.schema.names:
            data[name].append(lrow[name])
        if j is None:
            for _, out_name in right_names:
                data[out_name].append(None)
        else:
            rrow = rcache[j]
            for src, out_name in right_names:
                data[out_name].append(rrow[src])
    return Table.from_columns(out_schema, data)
