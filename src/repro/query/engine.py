"""The query engine: evaluate predicates and simple statements on tables.

Also the registry of named tables (the ``FROM`` clause namespace) and
named CAD Views (the ``CREATE CADVIEW name`` namespace).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.dataset.table import Table
from repro.errors import QueryError
from repro.obs import work
from repro.obs.metrics import registry
from repro.query.predicates import Predicate, TruePred

__all__ = ["QueryEngine"]


class QueryEngine:
    """Evaluates selections/projections and holds the table catalog.

    >>> engine = QueryEngine()
    >>> engine.register("UsedCars", cars_table)
    >>> suvs = engine.select(cars_table, Eq("BodyType", "SUV"))
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    # -- catalog ------------------------------------------------------

    def register(self, name: str, table: Table) -> None:
        """Register ``table`` under ``name`` for use in FROM clauses."""
        self._tables[name] = table

    def table(self, name: str) -> Table:
        """Look up a registered table."""
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    @property
    def table_names(self) -> tuple:
        """Registered table names, sorted."""
        return tuple(sorted(self._tables))

    # -- static analysis ---------------------------------------------------

    def analyze(self, stmt_or_sql, views=None, text: str = ""):
        """Semantic-check a statement against this catalog, no execution.

        Accepts SQL text or a parsed statement and returns the
        :class:`~repro.query.diagnostics.AnalysisReport`.  ``views`` is
        an optional name -> CAD View mapping for HIGHLIGHT/REORDER/DROP
        checks (the engine itself does not hold views).
        """
        # imported here: analyzer imports predicates, which imports this
        # module's QueryError sibling — keep module import cycle-free
        from repro.query.analyzer import Analyzer
        from repro.query.parser import parse

        if isinstance(stmt_or_sql, str):
            text = stmt_or_sql
            stmt = parse(stmt_or_sql)
        else:
            stmt = stmt_or_sql
        return Analyzer(engine=self, views=views).analyze(stmt, text=text)

    def check(self, stmt_or_sql, views=None, text: str = "") -> None:
        """The pre-execution gate: raise on ERROR diagnostics.

        Runs :meth:`analyze` and raises
        :class:`~repro.errors.AnalysisError` when the statement can be
        proven broken without running it; otherwise returns ``None``.
        """
        from repro.errors import AnalysisError

        report = self.analyze(stmt_or_sql, views=views, text=text)
        if not report.ok:
            raise AnalysisError(report)

    # -- evaluation ------------------------------------------------------

    @staticmethod
    def select(
        table: Table,
        predicate: Optional[Predicate] = None,
        columns: Optional[Sequence[str]] = None,
        limit: Optional[int] = None,
    ) -> Table:
        """``SELECT columns FROM table WHERE predicate LIMIT limit``.

        ``columns=None`` means ``*``; ``predicate=None`` means no WHERE.
        """
        start = time.perf_counter()
        work.add("work.query.rows_scanned", len(table))
        if predicate is not None and not isinstance(predicate, TruePred):
            work.add("work.query.predicate_evals", len(table))
        predicate = predicate or TruePred()
        result = table.filter(predicate.mask(table))
        if columns is not None:
            result = result.project(columns)
        if limit is not None:
            result = result.head(limit)
        reg = registry()
        reg.counter("query.select.calls").inc()
        reg.counter("query.rows_returned").inc(len(result))
        reg.histogram("query.select.latency_s").observe(
            time.perf_counter() - start
        )
        return result

    @staticmethod
    def count(table: Table, predicate: Optional[Predicate] = None) -> int:
        """Number of rows matching ``predicate`` (no materialization)."""
        start = time.perf_counter()
        reg = registry()
        reg.counter("query.count.calls").inc()
        work.add("work.query.rows_scanned", len(table))
        if predicate is None or isinstance(predicate, TruePred):
            return len(table)
        work.add("work.query.predicate_evals", len(table))
        n = int(np.count_nonzero(predicate.mask(table)))
        reg.histogram("query.count.latency_s").observe(
            time.perf_counter() - start
        )
        return n

    @staticmethod
    def group_count(
        table: Table,
        by: str,
        predicate: Optional[Predicate] = None,
    ) -> dict:
        """Value -> count of ``by`` over the rows matching ``predicate``.

        This is the primitive behind faceted digests: one call per
        attribute gives the whole facet panel.
        """
        start = time.perf_counter()
        reg = registry()
        reg.counter("query.group_count.calls").inc()
        work.add("work.query.rows_scanned", len(table))
        if predicate is not None and not isinstance(predicate, TruePred):
            work.add("work.query.predicate_evals", len(table))
            table = table.filter(predicate.mask(table))
        counts = table.value_counts(by)
        reg.histogram("query.group_count.latency_s").observe(
            time.perf_counter() - start
        )
        return counts

    @staticmethod
    def order_by(
        table: Table, by: Sequence[str], ascending: Sequence[bool]
    ) -> Table:
        """Stable multi-key sort of ``table`` rows.

        Categorical keys sort by value string; missing values sort last.
        """
        if len(by) != len(ascending):
            raise QueryError("order_by: by and ascending differ in length")
        order = np.arange(len(table))
        # numpy lexsort-style: apply keys from least to most significant
        for name, asc in zip(reversed(by), reversed(ascending)):
            col = table[name]
            if col.attribute.is_categorical:
                # sort by the decoded strings so order is alphabetical
                decode = np.array(
                    list(col.categories) + [chr(0x10FFFF)], dtype=object
                )
                keys = decode[col.codes[order]]
            else:
                nums = col.numbers[order]
                keys = np.where(np.isnan(nums), np.inf, nums)
            idx = np.argsort(keys, kind="stable")
            if not asc:
                idx = idx[::-1]
            order = order[idx]
        return table.take(order)
