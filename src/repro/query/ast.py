"""Parsed statement types for the SQL subset plus the paper's extensions.

The paper (Sec. 2.1.2–2.1.3) extends SQL with three statements::

    CREATE CADVIEW name AS
      SET pivot = attr
      SELECT a1, ..., aN FROM t [WHERE ...]
      [LIMIT COLUMNS M] [IUNITS K]
      [ORDER BY attr ASC|DESC, ...]

    HIGHLIGHT SIMILAR IUNITS IN name WHERE SIMILARITY(value, iunit) > tau

    REORDER ROWS IN name ORDER BY SIMILARITY(value) DESC

plus ordinary ``SELECT ... FROM ... WHERE ... [LIMIT n]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.query.predicates import Predicate

# Token start/end character offsets of one syntactic element, recorded
# by the parser so the analyzer can point diagnostics at source text.
Span = Tuple[int, int]


def _spans_field():
    """The per-statement span table: element key -> (start, end).

    Keys follow a small convention: ``"table"``, ``"pivot"``, ``"name"``,
    ``"view"``, ``"limit"``, ``"limit_columns"``, ``"iunits"``,
    ``"pivot_value"``, ``"iunit_id"``, ``"threshold"``, and indexed
    ``"select.0"`` / ``"order.0"`` for list elements.  The field is
    excluded from equality/hash/repr so statements built programmatically
    (without positions) compare equal to parsed ones.
    """
    return field(default=None, compare=False, repr=False)

__all__ = [
    "Statement",
    "SelectStatement",
    "CreateCadViewStatement",
    "HighlightSimilarStatement",
    "ReorderRowsStatement",
    "DescribeStatement",
    "ShowCadViewsStatement",
    "DropCadViewStatement",
    "ExplainStatement",
    "OrderKey",
]


class Statement:
    """Marker base class of parsed statements."""


@dataclass(frozen=True)
class OrderKey:
    """One ``ORDER BY`` key."""

    attribute: str
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement(Statement):
    """``SELECT columns FROM table [WHERE predicate] [LIMIT n]``.

    ``columns == ()`` means ``*``.
    """

    table: str
    columns: Tuple[str, ...] = ()
    where: Optional[Predicate] = None
    order_by: Tuple[OrderKey, ...] = ()
    limit: Optional[int] = None
    spans: Optional[Dict[str, Span]] = _spans_field()


@dataclass(frozen=True)
class CreateCadViewStatement(Statement):
    """The paper's ``CREATE CADVIEW`` statement.

    ``select`` holds the user-pinned Compare Attributes (the N explicit
    attributes of the paper; the remaining M-N are auto-chosen).
    """

    name: str
    pivot: str
    table: str
    select: Tuple[str, ...] = ()
    where: Optional[Predicate] = None
    limit_columns: Optional[int] = None
    iunits: Optional[int] = None
    order_by: Tuple[OrderKey, ...] = ()
    spans: Optional[Dict[str, Span]] = _spans_field()


@dataclass(frozen=True)
class HighlightSimilarStatement(Statement):
    """``HIGHLIGHT SIMILAR IUNITS IN view WHERE SIMILARITY(v, i) > tau``."""

    view: str
    pivot_value: str
    iunit_id: int
    threshold: float
    spans: Optional[Dict[str, Span]] = _spans_field()


@dataclass(frozen=True)
class ReorderRowsStatement(Statement):
    """``REORDER ROWS IN view ORDER BY SIMILARITY(v) DESC``."""

    view: str
    pivot_value: str
    descending: bool = True
    spans: Optional[Dict[str, Span]] = _spans_field()


@dataclass(frozen=True)
class DescribeStatement(Statement):
    """``DESCRIBE table`` — schema, kinds and queriability."""

    table: str
    spans: Optional[Dict[str, Span]] = _spans_field()


@dataclass(frozen=True)
class ShowCadViewsStatement(Statement):
    """``SHOW CADVIEWS`` — names of the registered CAD Views."""


@dataclass(frozen=True)
class DropCadViewStatement(Statement):
    """``DROP CADVIEW name`` — forget a registered CAD View."""

    name: str
    spans: Optional[Dict[str, Span]] = _spans_field()


@dataclass(frozen=True)
class ExplainStatement(Statement):
    """``EXPLAIN [ANALYZE|CHECK] <statement>``.

    Plain EXPLAIN describes the plan the inner statement would run;
    EXPLAIN ANALYZE executes it under a fresh tracer and renders the
    resulting span tree with per-phase timings and counters; EXPLAIN
    CHECK runs only the semantic analyzer and renders its diagnostics
    without executing anything.
    """

    inner: Statement
    analyze: bool = False
    check: bool = False
