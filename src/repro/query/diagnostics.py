"""Structured diagnostics for the SQL/CADVIEW semantic analyzer.

A :class:`Diagnostic` is one finding of the pre-execution analyzer
(:mod:`repro.query.analyzer`): a stable ``QA###`` code, a severity, a
human-readable message, an optional source span (character offsets into
the statement text, straight from the lexer tokens) and an optional
"did you mean" suggestion computed by edit distance over the schema.

An :class:`AnalysisReport` is the ordered collection of diagnostics for
one statement plus the statement text, and knows how to render itself
with caret underlining::

    QA102 error: unknown column 'Pricee' (did you mean 'Price'?)
      SELECT Pricee FROM UsedCars
             ^^^^^^

Diagnostic codes are grouped by family:

====== ===========================================================
family meaning
====== ===========================================================
QA1xx  name resolution (tables, columns, suggestion included)
QA2xx  operator / type compatibility
QA3xx  predicate logic (contradictions, tautologies, duplicates)
QA4xx  CADVIEW-specific rules (pivot, LIMIT COLUMNS / IUNITS caps)
QA5xx  view-registry rules (HIGHLIGHT / REORDER targets)
====== ===========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "levenshtein",
    "suggest",
]


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ERROR blocks execution (the gate raises
    :class:`~repro.errors.AnalysisError`); WARNING is reported — on the
    tracer, in the build report, on stdout for ``repro check`` — but
    lets the statement run.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``span`` is a ``(start, end)`` pair of character offsets into the
    analyzed statement text (``None`` when the statement was built
    programmatically and carries no token positions).
    """

    code: str                           # e.g. "QA102"
    severity: Severity
    message: str
    span: Optional[Tuple[int, int]] = None
    suggestion: Optional[str] = None    # "did you mean" candidate

    @property
    def is_error(self) -> bool:
        """True for execution-blocking findings."""
        return self.severity is Severity.ERROR

    def __str__(self) -> str:
        text = f"{self.code} {self.severity}: {self.message}"
        if self.suggestion:
            text += f" (did you mean {self.suggestion!r}?)"
        return text

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly dump."""
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "span": list(self.span) if self.span else None,
            "suggestion": self.suggestion,
        }


@dataclass
class AnalysisReport:
    """Every diagnostic the analyzer produced for one statement."""

    text: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    # -- recording (analyzer-facing) --------------------------------------

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        span: Optional[Tuple[int, int]] = None,
        suggestion: Optional[str] = None,
    ) -> Diagnostic:
        """Append one finding (deduplicating exact repeats)."""
        diag = Diagnostic(code, severity, message, span, suggestion)
        if diag not in self.diagnostics:
            self.diagnostics.append(diag)
        return diag

    def error(self, code: str, message: str, **kwargs) -> Diagnostic:
        """Shorthand for :meth:`add` with ERROR severity."""
        return self.add(code, Severity.ERROR, message, **kwargs)

    def warning(self, code: str, message: str, **kwargs) -> Diagnostic:
        """Shorthand for :meth:`add` with WARNING severity."""
        return self.add(code, Severity.WARNING, message, **kwargs)

    # -- reading (caller-facing) ------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        """The execution-blocking findings."""
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> List[Diagnostic]:
        """The advisory findings."""
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostic was recorded."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when nothing at all was recorded."""
        return not self.diagnostics

    def codes(self) -> Tuple[str, ...]:
        """The diagnostic codes, in report order."""
        return tuple(d.code for d in self.diagnostics)

    def render(self) -> str:
        """Human-readable multi-line report with caret underlining."""
        if not self.diagnostics:
            return "analysis: clean"
        lines: List[str] = []
        for diag in self.diagnostics:
            lines.append(str(diag))
            if diag.span is not None and self.text:
                start, end = diag.span
                start = max(0, min(start, len(self.text)))
                end = max(start + 1, min(end, len(self.text)))
                lines.append("  " + self.text)
                lines.append("  " + " " * start + "^" * (end - start))
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        lines.append(counts)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly dump (used by the CLI and tests)."""
        return {
            "text": self.text,
            "ok": self.ok,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def __str__(self) -> str:
        return self.render()


# -- "did you mean" -------------------------------------------------------

def levenshtein(a: str, b: str, cap: int = 8) -> int:
    """Edit distance between ``a`` and ``b`` (early-exit above ``cap``).

    Case-insensitive: exploratory users typo case at least as often as
    letters, and SQL identifiers here are case-sensitive only in storage.
    """
    a, b = a.lower(), b.lower()
    if a == b:
        return 0
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        cur = [i]
        best = i
        for j, cb in enumerate(b, start=1):
            cost = min(
                prev[j] + 1,            # deletion
                cur[j - 1] + 1,         # insertion
                prev[j - 1] + (ca != cb),  # substitution
            )
            cur.append(cost)
            best = min(best, cost)
        if best > cap:
            return cap + 1
        prev = cur
    return prev[-1]


def suggest(
    name: str, candidates: Sequence[str], max_distance: int = 3
) -> Optional[str]:
    """The closest candidate within ``max_distance`` edits, or ``None``.

    Distance ties break toward the earlier candidate (schema order),
    and a candidate is never suggested for a very short name unless the
    distance is small relative to its length — ``x`` should not suggest
    ``y``.
    """
    best: Optional[str] = None
    best_d = max_distance + 1
    limit = min(max_distance, len(name) // 2)
    for cand in candidates:
        d = levenshtein(name, cand, cap=max_distance + 1)
        if d <= limit and d < best_d:
            best, best_d = cand, d
    return best
