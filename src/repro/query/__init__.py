"""Query layer: predicates, engine, SQL/CADVIEW parser, aggregation."""

from repro.query.ast import (
    CreateCadViewStatement,
    DescribeStatement,
    DropCadViewStatement,
    HighlightSimilarStatement,
    OrderKey,
    ReorderRowsStatement,
    SelectStatement,
    ShowCadViewsStatement,
    Statement,
)
from repro.query.aggregate import AggregateSpec, GroupedResult, cube, group_by
from repro.query.analyzer import Analyzer, AnalyzerLimits, analyze_statement
from repro.query.diagnostics import (
    AnalysisReport, Diagnostic, Severity, levenshtein, suggest,
)
from repro.query.engine import QueryEngine
from repro.query.join import hash_join
from repro.query.parser import parse, parse_predicate
from repro.query.predicates import (
    And, Between, Cmp, Eq, In, IsMissing, Ne, Not, Or, Predicate, TruePred,
)

__all__ = [
    "Predicate", "TruePred", "Eq", "Ne", "In", "Between", "Cmp",
    "IsMissing", "And", "Or", "Not",
    "QueryEngine",
    "AggregateSpec", "GroupedResult", "group_by", "cube",
    "parse", "parse_predicate",
    "Statement", "SelectStatement", "CreateCadViewStatement",
    "HighlightSimilarStatement", "ReorderRowsStatement", "OrderKey",
    "DescribeStatement", "ShowCadViewsStatement", "DropCadViewStatement",
    "hash_join",
    "Analyzer", "AnalyzerLimits", "analyze_statement",
    "AnalysisReport", "Diagnostic", "Severity", "levenshtein", "suggest",
]
