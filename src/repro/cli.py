"""Command-line interface.

Usage (``python -m repro <command> ...``)::

    python -m repro gen-data usedcars --rows 40000 --out cars.csv
    python -m repro cadview --dataset usedcars --rows 20000 \
        --sql "CREATE CADVIEW v AS SET pivot = Make SELECT Price \
               FROM data WHERE BodyType = SUV LIMIT COLUMNS 5 IUNITS 3"
    python -m repro check --dataset usedcars --rows 1000 \
        --sql "SELECT Price FROM data WHERE Price > 9 AND Price < 5"
    python -m repro repl --dataset usedcars --rows 20000 \
        --worklog session.worklog.jsonl
    python -m repro replay session.worklog.jsonl --budget-ms 200
    python -m repro serve session.worklog.jsonl --stress --procs 2 --chaos
    python -m repro study --rows 8124
    python -m repro profile --rows 40000
    python -m repro deps --dataset usedcars

Datasets come either from the built-in generators or from a CSV written
by ``gen-data`` (pass ``--csv`` with ``--dataset`` naming its schema).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.core import CADView, CADViewConfig, DBExplorer
from repro.core.render import render_cadview
from repro.dataset.table import Table
from repro.dataset.generators import (
    generate_mushroom,
    generate_usedcars,
    mushroom_schema,
    usedcars_schema,
)
from repro.errors import (
    AnalysisError,
    BudgetExceededError,
    CADViewError,
    ConvergenceError,
    DurabilityError,
    RecoveryError,
    ReproError,
)
from repro.obs import (
    NO_WORKLOG,
    MetricsRegistry,
    Tracer,
    WorkLogWriter,
    evaluate_slos,
    parse_slos,
    read_worklog,
    registry,
    replay,
    write_chrome_trace,
    write_metrics,
    write_stitched_chrome_trace,
)
from repro.robustness import Budget, FaultInjector

__all__ = [
    "main", "build_parser",
    "EXIT_OK", "EXIT_USAGE", "EXIT_BUILD_FAILED", "EXIT_BUDGET_EXHAUSTED",
]

# Distinct exit codes so scripts and CI can tell failure modes apart.
EXIT_OK = 0                 # statement ran to completion
EXIT_USAGE = 1              # bad flags / unparsable statement / other error
EXIT_BUILD_FAILED = 2       # the build itself failed (no view produced)
EXIT_BUDGET_EXHAUSTED = 3   # budget ran out with nothing built

_DEFAULT_ROWS = {"usedcars": 40_000, "mushroom": 8_124}


def _load_table(args) -> Table:
    if args.csv:
        schema = (
            usedcars_schema() if args.dataset == "usedcars"
            else mushroom_schema()
        )
        try:
            table = Table.from_csv(
                args.csv, schema,
                max_bad_rows=getattr(args, "max_bad_rows", 0),
            )
            for err in table.quarantined:
                print(f"warning: skipped bad row: {err}", file=sys.stderr)
            return table
        except OSError as exc:
            # a bad --csv path is a usage error, not a crash — and the
            # artifact flush guards only see ReproError
            raise ReproError(f"cannot read --csv {args.csv!r}: {exc}") \
                from exc
    rows = args.rows or _DEFAULT_ROWS[args.dataset]
    if args.dataset == "usedcars":
        return generate_usedcars(rows, seed=args.seed)
    return generate_mushroom(rows, seed=args.seed)


def _add_data_args(parser, default_dataset="usedcars") -> None:
    parser.add_argument(
        "--dataset", choices=("usedcars", "mushroom"),
        default=default_dataset,
        help="which built-in dataset (and schema) to use",
    )
    parser.add_argument("--rows", type=int, default=None,
                        help="rows to generate (default: paper scale)")
    parser.add_argument("--seed", type=int, default=7, help="RNG seed")
    parser.add_argument("--csv", default=None,
                        help="load this CSV instead of generating")
    parser.add_argument(
        "--max-bad-rows", type=int, default=0, metavar="N",
        help="quarantine (skip, with a warning) up to N malformed CSV "
             "rows instead of failing on the first one",
    )


def _add_budget_args(parser) -> None:
    parser.add_argument(
        "--budget-ms", type=float, default=None,
        help="wall-clock budget per CADVIEW build (degrades, then "
             "truncates, before failing)",
    )
    parser.add_argument(
        "--max-rows", type=int, default=None,
        help="sample the input down to this many rows before building",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection plan, e.g. 'cluster:Jeep=convergence*2' "
             "(default: the REPRO_FAULTS environment variable)",
    )


def _add_slo_args(parser) -> None:
    parser.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="latency/error-rate objectives to check after the run, "
             "e.g. 'view:p95_ms<=500,*:error_rate<=0.05' (metrics: "
             "p50_ms/p95_ms/p99_ms/mean_ms/error_rate; kind '*' spans "
             "all statements); repeatable; failure exits 2",
    )
    parser.add_argument(
        "--slo-warn", action="store_true",
        help="report SLO violations as warnings instead of failing "
             "(what CI uses on pull requests)",
    )


def _add_obs_args(parser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace-event JSON of the session to FILE "
             "(load in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write a metrics-registry snapshot (JSON) to FILE on exit",
    )
    parser.add_argument(
        "--worklog", default=None, metavar="FILE",
        help="append one JSONL record per executed statement to FILE "
             "(replayable with 'repro replay'; default: the "
             "REPRO_WORKLOG environment variable)",
    )


def _session_tracer(args) -> Optional[Tracer]:
    """A session tracer when ``--trace`` asked for one."""
    if getattr(args, "trace", None):
        return Tracer("session", command=args.command)
    return None


def _session_worklog(args) -> Optional[WorkLogWriter]:
    """A workload-log writer when ``--worklog`` asked for one.

    Writes the session header immediately, so even a session that dies
    before its first statement leaves a well-formed log behind.  When
    the flag is absent the explorer falls back to ``REPRO_WORKLOG``.
    """
    if not getattr(args, "worklog", None):
        return None
    writer = WorkLogWriter(args.worklog)
    writer.session(
        command=args.command,
        dataset=getattr(args, "dataset", None),
        rows=getattr(args, "rows", None),
        seed=getattr(args, "seed", None),
        csv=getattr(args, "csv", None),
    )
    return writer


def _write_obs(
    args,
    tracer: Optional[Tracer],
    worklog: Optional[WorkLogWriter] = None,
) -> None:
    """Flush ``--trace`` / ``--metrics`` / ``--worklog`` (also on failure).

    Every command that opens observability outputs calls this from a
    ``finally`` so artifacts survive *any* abort — including statements
    the semantic analyzer rejects before the first build span opens.
    """
    if getattr(args, "trace", None) and tracer is not None:
        write_chrome_trace(tracer.finish(), args.trace)
    if getattr(args, "metrics", None):
        write_metrics(registry(), args.metrics)
    if worklog is not None:
        worklog.close()


def _write_obs_procs(args, tracer, worklog, supervisor) -> None:
    """Proc-mode artifact flush: stitched trace + cluster metrics.

    Under ``--procs`` the interesting spans and metrics live in worker
    processes; the supervisor's :class:`~repro.obs.hub.TelemetryHub`
    holds the merged view, so ``--trace`` writes the *stitched*
    multi-process Chrome trace and ``--metrics`` the cluster-wide
    registry (supervisor + every worker incarnation + drop counters).
    """
    if getattr(args, "trace", None) and tracer is not None:
        root = tracer.finish()
        if supervisor is not None:
            write_stitched_chrome_trace(
                args.trace, root, supervisor.telemetry.span_trees()
            )
        else:
            write_chrome_trace(root, args.trace)
    if getattr(args, "metrics", None):
        if supervisor is not None:
            write_metrics(
                supervisor.telemetry.cluster_registry(), args.metrics
            )
        else:
            write_metrics(registry(), args.metrics)
    if worklog is not None:
        worklog.close()


def _check_slos(
    args,
    snapshot,
    latency_prefix: str = "serve.latency.",
    status_prefix: str = "serve.statements.",
) -> Optional[str]:
    """Evaluate ``--slo`` against a metrics snapshot, print the report.

    Returns a failure message when the check should fail the command
    (``None`` with no ``--slo``, a passing check, or ``--slo-warn``).
    """
    specs = getattr(args, "slo", None)
    if not specs:
        return None
    spec = ",".join(specs) if isinstance(specs, list) else specs
    report = evaluate_slos(
        parse_slos(spec), snapshot,
        latency_prefix=latency_prefix, status_prefix=status_prefix,
    )
    print(report.render(), file=sys.stderr)
    if report.ok or getattr(args, "slo_warn", False):
        if not report.ok:
            print("warning: SLO check failed (--slo-warn: not fatal)",
                  file=sys.stderr)
        return None
    return "SLO check failed"


def _explorer(
    args,
    tracer: Optional[Tracer] = None,
    worklog: Optional[WorkLogWriter] = None,
) -> DBExplorer:
    """A DBExplorer configured from the common CLI flags."""
    try:
        budget = None
        if args.budget_ms is not None or args.max_rows is not None:
            budget = Budget(
                deadline_s=(
                    args.budget_ms / 1e3
                    if args.budget_ms is not None else None
                ),
                max_rows=args.max_rows,
            )
        faults = (
            FaultInjector.parse(args.faults)
            if args.faults is not None else None
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    return DBExplorer(
        CADViewConfig(seed=args.seed), budget=budget, faults=faults,
        tracer=tracer, worklog=worklog,
    )


def _show(result, cell_width: int) -> None:
    if isinstance(result, Table):
        print(f"-- {len(result)} row(s)")
        for row in result.head(10).iter_rows():
            print("  ", row)
        if len(result) > 10:
            print("   ...")
    elif isinstance(result, CADView):
        print(render_cadview(result, cell_width=cell_width))
    elif isinstance(result, list):
        if not result:
            print("-- empty result")
        for item in result:
            if (
                isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[1], float)
            ):  # HIGHLIGHT SIMILAR IUNITS rows
                ref, sim = item
                print(f"   {ref}  similarity {sim:.2f}")
            else:  # DESCRIBE / SHOW CADVIEWS rows
                if isinstance(item, tuple):
                    print("   " + "  ".join(str(p) for p in item))
                else:
                    print(f"   {item}")
    else:
        print(result)


def cmd_gen_data(args) -> int:
    """``gen-data``: write a generated dataset to CSV."""
    table = _load_table(args)
    table.to_csv(args.out)
    print(f"wrote {len(table)} rows x {len(table.schema)} attributes "
          f"to {args.out}")
    return 0


def cmd_cadview(args) -> int:
    """``cadview``: execute one statement against the loaded table."""
    tracer = _session_tracer(args)
    worklog = _session_worklog(args)
    try:
        # everything after the outputs open runs inside the flush guard:
        # a bad fault spec, a CSV that fails to load, or a statement the
        # analyzer rejects must still leave the artifacts behind
        dbx = _explorer(args, tracer, worklog)
        dbx.register("data", _load_table(args))
        _show(dbx.execute(args.sql), args.cell_width)
    except ReproError as exc:
        if tracer is not None:
            tracer.annotate("error", f"{type(exc).__name__}: {exc}")
        raise
    finally:
        # a failed build still leaves a partial, annotated trace behind
        _write_obs(args, tracer, worklog)
    return EXIT_OK


def cmd_check(args) -> int:
    """``check``: run the semantic analyzer only; never execute.

    Exit 0 when the statement is clean or carries only warnings
    (printed), 1 when any ERROR-severity diagnostic fires.
    """
    dbx = _explorer(args, None)
    dbx.register("data", _load_table(args))
    report = dbx.analyze(args.sql)
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return EXIT_OK if report.ok else EXIT_USAGE


def cmd_repl(args) -> int:
    """``repl``: interactive statement shell."""
    tracer = _session_tracer(args)
    worklog = _session_worklog(args)
    try:
        dbx = _explorer(args, tracer, worklog)
        table = _load_table(args)
        dbx.register("data", table)
        print(f"loaded {len(table)} rows as table 'data'; "
              f"type statements, or 'quit'")
        while True:
            try:
                line = input("dbexplorer> ").strip()
            except EOFError:
                print()
                return EXIT_OK
            if not line:
                continue
            if line.lower() in ("quit", "exit"):
                return EXIT_OK
            try:
                _show(dbx.execute(line), args.cell_width)
            except ReproError as exc:
                print(f"error: {exc}")
    finally:
        _write_obs(args, tracer, worklog)


def _replay_defaults_from_header(args, records) -> None:
    """Fill dataset/rows/seed/csv flags from the log's session header."""
    session = next(
        (r for r in records if r.get("kind") == "session"), {}
    )
    if args.dataset is None:
        dataset = session.get("dataset")
        args.dataset = dataset if dataset in ("usedcars", "mushroom") \
            else "usedcars"
    if args.rows is None and isinstance(session.get("rows"), int):
        args.rows = session["rows"]
    if args.seed is None:
        seed = session.get("seed")
        args.seed = seed if isinstance(seed, int) else 7
    if args.csv is None and isinstance(session.get("csv"), str):
        args.csv = session["csv"]
    if args.budget_ms is not None and args.budget_ms <= 0:
        args.budget_ms = None


def _read_workload(args):
    """Read the workload log, honoring ``--strict``.

    Returns ``(records, corrupt_count)``.  Tolerant mode (the default)
    skips undecodable lines with a warning — a writer killed mid-write
    leaves a truncated trailing line, and a crash-recovery replay must
    not choke on the very record whose statement caused the crash.
    ``--strict`` turns any such line into a usage error instead.
    """
    corrupt: list = []
    strict = bool(getattr(args, "strict", False))
    try:
        records = read_worklog(
            args.worklog_file, strict=strict, corrupt_lines=corrupt
        )
    except (ValueError, OSError) as exc:
        raise ReproError(
            f"cannot read worklog {args.worklog_file!r}: {exc}"
        ) from exc
    for lineno in corrupt:
        print(
            f"warning: {args.worklog_file}:{lineno}: corrupt worklog "
            "line skipped (pass --strict to fail instead)",
            file=sys.stderr,
        )
    return records, len(corrupt)


def _guard_self_replay(args) -> None:
    # guard before _session_worklog opens the file: opening in append
    # mode would stamp a session header onto the log being replayed
    if getattr(args, "worklog", None) and os.path.abspath(args.worklog) \
            == os.path.abspath(args.worklog_file):
        raise ReproError(
            "refusing to replay a worklog into itself; pass a different "
            "--worklog path"
        )


def cmd_replay(args) -> int:
    """``replay``: re-execute a captured workload log, report latency.

    The session header of the log supplies the dataset/rows/seed/csv
    defaults; explicit flags override them, so a 40k-row capture can be
    replayed against 4k rows or under a tighter ``--budget-ms``.  A
    ``--budget-ms`` of 0 (or less) means "no budget".

    ``--concurrency N`` switches to the dependency-aware concurrent
    harness (:mod:`repro.serve.stress`) — even ``--concurrency 1`` uses
    it, so serial and parallel replays share one code path and their
    per-statement digests are comparable.  ``--verify-sequential`` then
    replays once more at concurrency 1 against a fresh table and fails
    (exit 2) on any digest mismatch: the zero-wrong-answers gate.
    """
    records, corrupt = _read_workload(args)
    _replay_defaults_from_header(args, records)
    _guard_self_replay(args)
    if args.concurrency is not None:
        return _replay_concurrent_cmd(args, records, corrupt)
    tracer = _session_tracer(args)
    worklog = _session_worklog(args)
    try:
        # NO_WORKLOG (not None) when --worklog is absent: a REPRO_WORKLOG
        # environment variable must not append the replayed statements to
        # the very log being read
        dbx = _explorer(
            args, tracer, worklog if worklog is not None else NO_WORKLOG
        )
        dbx.register("data", _load_table(args))
        report = replay(records, dbx)
        report.corrupt_lines = corrupt
        if args.json:
            import json

            print(json.dumps(report.as_dict(), indent=2))
        else:
            print(report.render())
    finally:
        _write_obs(args, tracer, worklog)
    if report.statements == 0:
        print("error: no statement records in "
              f"{args.worklog_file}", file=sys.stderr)
        return EXIT_USAGE
    slo_failure = _check_slos(
        args, report.registry.snapshot(),
        latency_prefix="replay.latency.",
        status_prefix="replay.statements.",
    )
    if slo_failure:
        print(f"error: {slo_failure}", file=sys.stderr)
        return EXIT_BUILD_FAILED
    return EXIT_OK


def _fresh_replay_explorer(args, tracer=None, worklog=None):
    """A configured explorer with the replay table freshly loaded."""
    dbx = _explorer(
        args, tracer, worklog if worklog is not None else NO_WORKLOG
    )
    dbx.register("data", _load_table(args))
    return dbx


def _replay_concurrent_cmd(args, records, corrupt: int = 0) -> int:
    """The ``replay --concurrency N`` path: the DAG-scheduled harness."""
    from repro.serve import replay_concurrent

    if args.concurrency < 1:
        raise ReproError(
            f"--concurrency must be >= 1, got {args.concurrency}"
        )
    tracer = _session_tracer(args)
    worklog = _session_worklog(args)
    try:
        dbx = _fresh_replay_explorer(args, tracer, worklog)
        report = replay_concurrent(
            records, dbx, concurrency=args.concurrency
        )
        report.corrupt_lines = corrupt
        if args.verify_sequential:
            baseline = replay_concurrent(
                records, _fresh_replay_explorer(args), concurrency=1
            )
            mismatches = baseline.mismatches(report)
            if mismatches:
                for index, seq, conc in mismatches:
                    print(
                        f"wrong answer at statement #{index}: "
                        f"sequential={seq} concurrent={conc}",
                        file=sys.stderr,
                    )
                return EXIT_BUILD_FAILED
            print(f"verified: {len(report.results)} statement(s) "
                  f"byte-identical to the sequential replay")
        if args.json:
            import json

            print(json.dumps(report.as_dict(), indent=2))
        else:
            print(report.render())
    finally:
        _write_obs(args, tracer, worklog)
    if not report.results:
        print("error: no statement records in "
              f"{args.worklog_file}", file=sys.stderr)
        return EXIT_USAGE
    slo_failure = _check_slos(args, registry().snapshot())
    if slo_failure:
        print(f"error: {slo_failure}", file=sys.stderr)
        return EXIT_BUILD_FAILED
    return EXIT_OK


def cmd_serve(args) -> int:
    """``serve --stress``: hammer the serving core with a workload log.

    Replays the log through the :class:`~repro.serve.SessionExecutor`
    with admission control, the deadline watchdog and the per-dataset
    circuit breakers all enabled — the opposite of the deterministic
    ``replay --concurrency`` configuration.  Prints per-statement
    outcomes, breaker states and executor load, and fails (exit 2) if
    any statement ends without a terminal outcome (a silent drop).

    ``--procs N`` swaps the thread pool for N supervised worker
    subprocesses (:mod:`repro.serve.proc`); ``--chaos`` then injects
    worker crash/hang/pipe-drop faults mid-run and asserts the
    supervision tree recovered: every statement terminal, restarts
    within the backoff bounds, and — with ``--verify-sequential`` —
    digests byte-identical to an in-process sequential replay.
    """
    from repro.robustness import Budget
    from repro.serve import BreakerConfig, ServeConfig, replay_concurrent

    if not args.stress:
        raise ReproError(
            "only stress mode is implemented; pass --stress"
        )
    if args.torture is not None:
        return _serve_torture(args)
    if args.chaos and args.procs is None:
        raise ReproError("--chaos requires --procs")
    if args.verify_sequential and args.procs is None:
        raise ReproError(
            "--verify-sequential under serve requires --procs "
            "(thread-mode stress is deliberately nondeterministic; "
            "use 'replay --concurrency N --verify-sequential' instead)"
        )
    if args.state_dir and args.procs is None:
        raise ReproError(
            "--state-dir requires --procs (the durable catalog WAL "
            "lives in the multi-process supervisor)"
        )
    records, corrupt = _read_workload(args)
    _replay_defaults_from_header(args, records)
    _guard_self_replay(args)
    if args.procs is not None:
        return _serve_procs(args, records, corrupt)
    try:
        config = ServeConfig(
            workers=args.workers,
            queue_limit=args.queue_limit,
            deadline_s=(
                args.deadline_ms / 1e3
                if args.deadline_ms is not None else None
            ),
            max_retries=args.max_retries,
            breaker=BreakerConfig(
                trip_after=args.trip_after,
                cooldown_s=args.cooldown_ms / 1e3,
            ),
            open_budget=Budget(
                deadline_s=0.25, max_rows=2000, retries=0
            ),
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    tracer = _session_tracer(args)
    worklog = _session_worklog(args)
    try:
        dbx = _fresh_replay_explorer(args, tracer, worklog)
        report = replay_concurrent(
            records, dbx, concurrency=args.workers, config=config
        )
        report.corrupt_lines = corrupt
        if args.json:
            import json

            print(json.dumps(report.as_dict(), indent=2))
        else:
            print(report.render())
    finally:
        _write_obs(args, tracer, worklog)
    if not report.results:
        print("error: no statement records in "
              f"{args.worklog_file}", file=sys.stderr)
        return EXIT_USAGE
    dropped = [
        res.index for res in report.results
        if res.outcome not in ("ok", "degraded", "rejected", "failed")
    ]
    if dropped:
        print(f"error: statements without a terminal outcome: {dropped}",
              file=sys.stderr)
        return EXIT_BUILD_FAILED
    slo_failure = _check_slos(args, registry().snapshot())
    if slo_failure:
        print(f"error: {slo_failure}", file=sys.stderr)
        return EXIT_BUILD_FAILED
    return EXIT_OK


def _chaos_plan(n: int) -> str:
    """An index-narrowed chaos plan over an ``n``-statement workload.

    Counting faults (never probabilistic) at fixed statement indices,
    so the same workload always produces the same chaos schedule — the
    precondition for ``--chaos --verify-sequential`` byte-identity.
    One crash early, one hang mid-run, one pipe drop late; short
    workloads get however many distinct indices they can hold.
    """
    sites = []
    crash = n // 4
    sites.append(f"proc.worker_crash:{crash}=crash*1")
    hang = max(crash + 1, n // 2)
    if hang < n:
        # the sleep must outlive the supervisor's heartbeat timeout so
        # the missed-heartbeat detector (not the pipe) catches it
        sites.append(f"proc.worker_hang:{hang}=sleep:2.0*1")
    drop = max(hang + 1, (3 * n) // 4)
    if drop < n:
        sites.append(f"proc.pipe_drop:{drop}=crash*1")
    return ",".join(sites)


def _serve_procs(args, records, corrupt: int) -> int:
    """The ``serve --stress --procs N`` path: supervised subprocesses.

    Builds a :class:`~repro.serve.proc.ProcSupervisor` over ``N``
    dataset-sharded workers, replays the workload through it with the
    same DAG harness the thread path uses, then drains gracefully.  A
    SIGTERM mid-run turns into :meth:`begin_drain` — admission stops,
    in-flight statements finish or cancel, workers exit 0, artifacts
    flush — and the command still exits 0: that is the graceful-drain
    contract the chaos tests pin down.
    """
    import signal

    from repro.robustness import Budget
    from repro.serve import BreakerConfig, replay_concurrent
    from repro.serve.proc import (
        ProcServeConfig,
        ProcSupervisor,
        WorkerSpec,
    )

    if args.procs < 1:
        raise ReproError(f"--procs must be >= 1, got {args.procs}")
    n = sum(
        1 for rec in records
        if rec.get("kind") == "statement"
        and isinstance(rec.get("statement"), str)
        and str(rec["statement"]).strip()
    )
    faults_spec = args.faults
    if args.chaos:
        chaos_spec = _chaos_plan(n)
        faults_spec = (
            f"{faults_spec},{chaos_spec}" if faults_spec else chaos_spec
        )
        print(f"chaos plan: {chaos_spec}", file=sys.stderr)
        # the sequential baseline must run the same build-site faults;
        # proc.* sites are never consulted in-process, so sharing the
        # combined spec keeps the two runs digest-comparable
        args.faults = faults_spec
    try:
        budget = None
        if args.budget_ms is not None or args.max_rows is not None:
            budget = Budget(
                deadline_s=(
                    args.budget_ms / 1e3
                    if args.budget_ms is not None else None
                ),
                max_rows=args.max_rows,
            )
        spec = WorkerSpec(
            dataset=args.dataset,
            rows=args.rows,
            seed=args.seed,
            csv=args.csv,
            faults_spec=faults_spec,
            budget=budget,
            max_retries=args.max_retries,
        )
        if args.chaos:
            # deterministic chaos: breakers and deadlines off (their
            # state depends on wall-clock completion order), admission
            # wide open, and a fast heartbeat so injected hangs are
            # detected in test time, not operator time
            config = ProcServeConfig(
                shards=args.procs,
                queue_limit=n + 1,
                deadline_s=None,
                max_retries=args.max_retries,
                breaker=None,
                heartbeat_interval_s=0.05,
                heartbeat_timeout_s=0.5,
                restart_backoff_base_s=0.05,
                restart_backoff_cap_s=0.5,
                drain_grace_s=args.drain_grace_ms / 1e3,
                state_dir=args.state_dir,
                fsync_interval_ms=args.fsync_interval_ms,
                wal_segment_max_bytes=args.wal_segment_bytes,
                wal_snapshot_every=args.wal_snapshot_every,
            )
        else:
            config = ProcServeConfig(
                shards=args.procs,
                queue_limit=args.queue_limit,
                deadline_s=(
                    args.deadline_ms / 1e3
                    if args.deadline_ms is not None else None
                ),
                max_retries=args.max_retries,
                breaker=BreakerConfig(
                    trip_after=args.trip_after,
                    cooldown_s=args.cooldown_ms / 1e3,
                ),
                drain_grace_s=args.drain_grace_ms / 1e3,
                state_dir=args.state_dir,
                fsync_interval_ms=args.fsync_interval_ms,
                wal_segment_max_bytes=args.wal_segment_bytes,
                wal_snapshot_every=args.wal_snapshot_every,
            )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    tracer = _session_tracer(args)
    worklog = _session_worklog(args)
    supervisor = None
    old_handler = None
    old_usr1 = None
    stats_stop = None
    # the handler must be live *before* the workers boot: a SIGTERM
    # that lands while shards are still building their tables has to
    # drain gracefully too, not kill the process with the default
    # action.  CPython delivers signals on the main thread, so the
    # cell needs no lock.
    sigterm_state = {"supervisor": None, "drain": False}

    def _on_sigterm(signum, frame):
        # stop admission only: the DAG loop sees rejections, the
        # replay returns, and the drain below still runs to
        # completion on the main thread — handler-safe by design
        sup = sigterm_state["supervisor"]
        if sup is not None:
            sup.begin_drain()
        else:
            sigterm_state["drain"] = True  # apply once it exists

    try:
        try:
            old_handler = signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:
            old_handler = None  # not the main thread (embedded use)
        # a private registry per run: the conservation and SLO gates
        # below must see exactly this run's counters, not whatever an
        # embedding process accumulated in the global registry
        supervisor = ProcSupervisor(
            spec, config, worklog=worklog, tracer=tracer,
            metrics=MetricsRegistry(),
        )
        sigterm_state["supervisor"] = supervisor
        if sigterm_state["drain"]:
            supervisor.begin_drain()
        if not supervisor.wait_ready(timeout=120.0):
            raise ReproError(
                "workers failed to become ready within 120s"
            )
        # the live ops surface: periodic stats lines on stderr, and an
        # on-demand atomic snapshot dump on SIGUSR1
        stats_path = args.stats_file or "repro-stats.json"
        if hasattr(signal, "SIGUSR1"):
            try:
                old_usr1 = signal.signal(
                    signal.SIGUSR1,
                    lambda signum, frame: _dump_stats(
                        sigterm_state["supervisor"], stats_path
                    ),
                )
            except ValueError:
                old_usr1 = None  # not the main thread (embedded use)
        if args.stats_interval is not None:
            import threading

            stats_stop = threading.Event()

            def _stats_loop():
                while not stats_stop.wait(args.stats_interval):
                    sup = sigterm_state["supervisor"]
                    if sup is not None:
                        print(_stats_line(sup.stats_snapshot()),
                              file=sys.stderr)

            threading.Thread(
                target=_stats_loop, name="repro-stats", daemon=True,
            ).start()
        report = replay_concurrent(
            records, executor=supervisor, concurrency=args.procs
        )
        report.corrupt_lines = corrupt
        drain_report = supervisor.drain()
        chaos = supervisor.chaos_stats()
        telemetry = supervisor.telemetry.stats()
        if args.stats_file:
            _dump_stats(supervisor, args.stats_file)
        if args.json:
            import json

            payload = report.as_dict()
            payload["drain"] = drain_report
            payload["chaos"] = chaos
            payload["telemetry"] = telemetry
            print(json.dumps(payload, indent=2, default=str))
        else:
            print(report.render())
            print(
                f"drain: cancelled={drain_report['cancelled']} "
                f"clean={drain_report['clean']} "
                f"exitcodes={drain_report['exitcodes']}"
            )
            print(
                f"chaos: deaths={chaos['deaths']} "
                f"resubmits={chaos['resubmits']} "
                f"max_restart_delay={chaos['max_restart_delay_s']:.3f}s "
                f"wedged={chaos['wedged']}"
            )
            print(
                f"telemetry: frames={telemetry['frames']} "
                f"workers={telemetry['workers_seen']} "
                f"spans={telemetry['span_trees']} "
                f"dropped={telemetry['dropped_total']:.0f}"
            )
    finally:
        if old_handler is not None:
            signal.signal(signal.SIGTERM, old_handler)
        if old_usr1 is not None:
            signal.signal(signal.SIGUSR1, old_usr1)
        if stats_stop is not None:
            stats_stop.set()
        if supervisor is not None:
            supervisor.close(wait=False)
        _write_obs_procs(args, tracer, worklog, supervisor)
    if not report.results:
        print("error: no statement records in "
              f"{args.worklog_file}", file=sys.stderr)
        return EXIT_USAGE
    failures = []
    if chaos["wedged"]:
        failures.append(f"{chaos['wedged']} ticket(s) never resolved")
    if chaos["max_restart_delay_s"] > chaos["backoff_cap_s"] + 1e-9:
        failures.append(
            f"restart delay {chaos['max_restart_delay_s']:.3f}s "
            f"exceeded the backoff cap {chaos['backoff_cap_s']:.3f}s"
        )
    if args.chaos and chaos["total_deaths"] == 0 and n >= 1:
        failures.append(
            "chaos run injected no worker deaths (vacuous pass)"
        )
    if args.chaos:
        # statement conservation: the parent-side per-shard completion
        # counters (plus the unrouted leg) must sum exactly to the
        # driver's statement count, worker deaths notwithstanding —
        # and telemetry losses must be *counted*, never silent
        import re as _re

        cluster = supervisor.telemetry.cluster_registry().snapshot()
        counters = cluster.get("counters", {})
        completed = sum(
            value for name, value in counters.items()
            if _re.fullmatch(r"proc\.s\d+\.completed", name)
        ) + counters.get("proc.unrouted.completed", 0.0)
        if int(completed) != len(report.results):
            failures.append(
                f"statement conservation broken: per-shard completed "
                f"counters sum to {int(completed)}, driver executed "
                f"{len(report.results)}"
            )
        if "proc.telemetry.dropped" not in counters:
            failures.append(
                "cluster metrics lack the proc.telemetry.dropped "
                "counter (drops must be counted, even at zero)"
            )
    dropped = [
        res.index for res in report.results
        if res.outcome not in ("ok", "degraded", "rejected", "failed")
    ]
    if dropped:
        failures.append(
            f"statements without a terminal outcome: {dropped}"
        )
    if args.verify_sequential:
        baseline = replay_concurrent(
            records, _fresh_replay_explorer(args), concurrency=1
        )
        mismatches = baseline.mismatches(report)
        if mismatches:
            for index, seq, conc in mismatches:
                print(
                    f"wrong answer at statement #{index}: "
                    f"sequential={seq} procs={conc}",
                    file=sys.stderr,
                )
            failures.append(
                f"{len(mismatches)} digest mismatch(es) vs the "
                "sequential replay"
            )
        else:
            print(
                f"verified: {len(report.results)} statement(s) "
                "byte-identical to the sequential replay",
                # keep --json stdout machine-parseable
                file=sys.stderr if args.json else sys.stdout,
            )
    slo_failure = _check_slos(
        args, supervisor.telemetry.cluster_registry().snapshot()
    )
    if slo_failure:
        failures.append(slo_failure)
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return EXIT_BUILD_FAILED
    return EXIT_OK


def _serve_torture(args) -> int:
    """``serve --stress --torture N``: the kill -9 durability harness.

    Each of the ``N`` iterations SIGKILLs a fresh serving process at a
    deterministic point inside the WAL (via the ``wal.*`` fault sites),
    recovers the state directory, and asserts the recovered catalog is
    identical to the acked-mutation prefix.  ``--state-dir`` names the
    *root* under which per-iteration state dirs and failure artifacts
    are created (default: a fresh temp dir).  Exits 0 only if every
    crash point recovered correctly.
    """
    import json
    import tempfile

    from repro.serve.durability.torture import run_torture

    if args.torture < 1:
        raise ReproError(f"--torture must be >= 1, got {args.torture}")
    if args.procs is not None and args.procs < 1:
        raise ReproError(f"--procs must be >= 1, got {args.procs}")
    state_root = args.state_dir or tempfile.mkdtemp(
        prefix="repro-torture-"
    )
    report = run_torture(
        args.worklog_file,
        state_root,
        iterations=args.torture,
        rows=args.rows if args.rows is not None else 120,
        procs=args.procs if args.procs is not None else 1,
    )
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        counts = " ".join(
            f"{site.split('.', 1)[1]}={count}"
            for site, count in sorted(report["site_counts"].items())
        )
        print(
            f"torture: iterations={report['iterations']} "
            f"killed={report['killed']} torn_tails={report['torn_tails']} "
            f"restarts_verified={report['restarts_verified']} "
            f"sites[{counts}]"
        )
        for failure in report["failures"]:
            print(
                f"error: iteration {failure.get('iteration')} "
                f"({failure.get('site')}:{failure.get('seq')}): "
                f"{failure.get('problem')}",
                file=sys.stderr,
            )
    if not report["ok"]:
        print(
            f"error: {len(report['failures'])} torture iteration(s) "
            f"violated the durability contract; artifacts under "
            f"{state_root}",
            file=sys.stderr,
        )
        return EXIT_BUILD_FAILED
    return EXIT_OK


def cmd_recover(args) -> int:
    """``recover``: inspect or verify a ``--state-dir`` offline.

    Read-only by default — torn tails and orphaned temp files are
    *reported* but left untouched; ``--truncate`` applies the same
    repairs startup recovery would.  Exit codes: 0 = the directory
    recovers to a consistent catalog (a truncatable torn tail is
    consistent), 2 = it does not (mid-history corruption, a sequence
    gap, or no readable snapshot), 1 = usage errors such as a missing
    directory.
    """
    import json
    import os as _os

    from repro.serve.durability import recover_state

    if not _os.path.isdir(args.state_dir):
        raise ReproError(
            f"state dir {args.state_dir!r} does not exist"
        )
    try:
        rec = recover_state(
            args.state_dir, shards=args.procs,
            truncate=bool(args.truncate),
        )
    except RecoveryError as exc:
        print(f"error: unrecoverable state dir: {exc}", file=sys.stderr)
        return EXIT_BUILD_FAILED
    payload = rec.as_dict()
    for warning in rec.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"recovered: last_seq={rec.last_seq} "
            f"snapshot_seq={rec.snapshot_seq} "
            f"segments={rec.segments} "
            f"replayed={rec.records_replayed} "
            f"skipped={rec.records_skipped}"
        )
        torn = rec.torn_tail
        if torn is not None:
            action = (
                "truncated" if torn.get("truncated") else "left in place"
            )
            print(
                f"torn tail: {torn['segment']} offset {torn['offset']} "
                f"({torn['reason']}) — {action}"
            )
        views = payload["views"]
        print(f"views ({len(views)}):")
        for name, shard in views.items():
            print(f"  {name} -> shard {shard}")
        for shard, length in payload["journal_lengths"].items():
            print(f"journal s{shard}: {length} entr"
                  f"{'y' if length == 1 else 'ies'}")
    return EXIT_OK


def _stats_line(snap) -> str:
    """One compact live-stats line (the ``--stats-interval`` output)."""
    shard_bits = []
    for entry in snap.get("shards", []):
        latency = entry.get("latency_ms") or {}
        p95 = latency.get("p95")
        shard_bits.append(
            f"s{entry['shard']}"
            f"[g{entry['incarnation']} inflight={entry['inflight']} "
            f"restarts={entry['restarts']}"
            + (f" p95={p95:.0f}ms" if p95 is not None else "")
            + "]"
        )
    tel = snap.get("telemetry", {})
    return (
        f"stats: submitted={snap.get('submitted', 0)} "
        f"queue={snap.get('queue_depth', 0)} "
        f"inflight={snap.get('inflight', 0)} "
        f"dropped={tel.get('dropped_total', 0):.0f} "
        + " ".join(shard_bits)
    )


def _dump_stats(supervisor, path: str) -> None:
    """Atomically write the full stats snapshot JSON (SIGUSR1 / exit)."""
    if supervisor is None:
        return
    import json

    from repro.obs.atomic import atomic_write_text

    atomic_write_text(
        path,
        json.dumps(supervisor.stats_snapshot(), indent=2, default=str)
        + "\n",
    )
    print(f"stats snapshot written to {path}", file=sys.stderr)


def cmd_stats(args) -> int:
    """``stats``: render a stats snapshot file, optionally gate on SLOs.

    The snapshot (written by ``serve --stats-file`` or a SIGUSR1 dump)
    embeds the full cluster metrics registry, so ``--slo`` evaluates
    offline — CI gates on the artifact without re-running the workload.
    """
    import json

    try:
        with open(args.stats_json) as fh:
            snap = json.load(fh)
    except OSError as exc:
        raise ReproError(
            f"cannot read stats snapshot {args.stats_json!r}: {exc}"
        ) from exc
    except ValueError as exc:
        # a torn/partial dump (a SIGUSR1 write racing this reader, or
        # a process killed mid-dump) is an operational condition, not
        # an operator mistake: diagnose it as such, and distinctly
        print(
            f"error: corrupt snapshot {args.stats_json!r}: "
            f"truncated or invalid JSON ({exc}); re-dump with SIGUSR1 "
            f"or rerun serve --stats-file",
            file=sys.stderr,
        )
        return EXIT_BUILD_FAILED
    if args.json:
        print(json.dumps(snap, indent=2))
    else:
        print(
            f"== serve stats: submitted={snap.get('submitted', 0)} "
            f"queue={snap.get('queue_depth', 0)} "
            f"inflight={snap.get('inflight', 0)} "
            f"resubmits={snap.get('resubmits', 0)} =="
        )
        print(
            f"{'shard':<6} {'inc':>4} {'ready':>6} {'restarts':>8} "
            f"{'inflight':>8} {'pending':>8} {'p50':>9} {'p95':>9} "
            f"{'p99':>9}"
        )
        for entry in snap.get("shards", []):
            latency = entry.get("latency_ms") or {}

            def _ms(key):
                value = latency.get(key)
                return f"{value:.1f}ms" if value is not None else "-"

            print(
                f"s{entry['shard']:<5} {str(entry['incarnation']):>4} "
                f"{str(bool(entry.get('ready'))):>6} "
                f"{entry.get('restarts', 0):>8} "
                f"{entry.get('inflight', 0):>8} "
                f"{entry.get('pending', 0):>8} "
                f"{_ms('p50'):>9} {_ms('p95'):>9} {_ms('p99'):>9}"
            )
        breakers = snap.get("breakers") or {}
        if breakers:
            states = "  ".join(
                f"{key}={state}" for key, state in sorted(breakers.items())
            )
            print(f"breakers: {states}")
        deaths = snap.get("deaths") or {}
        tel = snap.get("telemetry") or {}
        print(
            f"deaths: {deaths or '(none)'}  telemetry: "
            f"frames={tel.get('frames', 0)} "
            f"dropped={tel.get('dropped_total', 0)}"
        )
        work_totals = _work_counter_totals(
            (snap.get("metrics") or {}).get("counters") or {}
        )
        if work_totals:
            print("work counters (cumulative, all shards/incarnations):")
            for name, total in sorted(work_totals.items()):
                print(f"  {name} = {total}")
    slo_failure = _check_slos(args, snap.get("metrics") or {})
    if slo_failure:
        print(f"error: {slo_failure}", file=sys.stderr)
        return EXIT_BUILD_FAILED
    return EXIT_OK


def _work_counter_totals(counters) -> dict:
    """Sum ``work.*`` counters out of a metrics-counter mapping.

    Cluster snapshots relabel worker metrics ``proc.s<shard>.g<inc>.
    <name>``; strip that prefix so every shard and incarnation of one
    work counter folds into a single total.  Registries are fresh per
    incarnation, so plain summation is the correct cumulative figure.
    """
    totals: dict = {}
    for name, value in counters.items():
        base = name
        if base.startswith("proc.s"):
            parts = base.split(".", 3)
            if len(parts) == 4:
                base = parts[3]
        if base.startswith("work."):
            totals[base] = totals.get(base, 0) + int(value)
    return totals


def cmd_study(args) -> int:
    """``study``: run the simulated user study and print the analysis."""
    from repro.study import run_study

    args.dataset = "mushroom"
    table = _load_table(args)
    print(f"running the user study on {len(table)} rows...")
    results = run_study(table, seed=args.study_seed)
    for task_type in ("classifier", "similar_pair", "alternative"):
        q = results.analyze(task_type, "quality")
        t = results.analyze(task_type, "minutes")
        print(f"\n{task_type}: speedup {results.speedup(task_type):.2f}x")
        print(f"  quality: {q}")
        print(f"  time:    {t}")
    return 0


def cmd_profile(args) -> int:
    """``profile``: sample where the time goes; export flamegraphs.

    Two modes share the sampling flags:

    * default — time a naive and an optimized CAD View build (the
      original comparison), under the sampling profiler when
      ``--flamegraph`` or ``--memory`` ask for one;
    * ``--session LOG`` — replay a captured workload log under the
      sampling profiler and report per-span self time, deterministic
      work counters, a collapsed-stack flamegraph (``--flamegraph``)
      and per-phase peak memory (``--memory``).
    """
    from repro.core.builder import CADViewBuilder
    from repro.core.optimizer import recommended_config
    from repro.obs import SamplingProfiler

    if args.session:
        return _profile_session(args)
    if args.dataset is None:
        args.dataset = "usedcars"
    if args.seed is None:
        args.seed = 7
    table = _load_table(args)
    pivot = "Make" if args.dataset == "usedcars" else "class"
    base = CADViewConfig(
        compare_limit=args.compare, iunits_k=args.iunits,
        generated_l=args.generated, seed=args.seed,
    )
    tracer = _session_tracer(args)
    profiler = None
    if args.flamegraph or args.memory:
        profiler = SamplingProfiler(hz=args.sample_hz, memory=args.memory)
        if tracer is None:
            # span attribution needs spans: trace even without --trace
            tracer = Tracer("session", command="profile")
    worklog = _session_worklog(args)
    try:
        if profiler is not None:
            profiler.start()
        for name, config in (
            ("naive", base),
            ("optimized", recommended_config(base, len(table))),
        ):
            cad = CADViewBuilder(config).build(table, pivot, tracer=tracer)
            print(f"{name:>10}: {cad.profile}")
    finally:
        if profiler is not None:
            profiler.stop()
        _write_obs(args, tracer, worklog)
    _print_profile(args, profiler)
    return EXIT_OK


def _profile_session(args) -> int:
    """The ``profile --session LOG`` path: a replay under the sampler."""
    from repro.obs import SamplingProfiler

    corrupt: list = []
    try:
        records = read_worklog(args.session, corrupt_lines=corrupt)
    except (ValueError, OSError) as exc:
        raise ReproError(
            f"cannot read worklog {args.session!r}: {exc}"
        ) from exc
    for lineno in corrupt:
        print(
            f"warning: {args.session}:{lineno}: corrupt worklog "
            "line skipped",
            file=sys.stderr,
        )
    _replay_defaults_from_header(args, records)
    if getattr(args, "worklog", None) and os.path.abspath(args.worklog) \
            == os.path.abspath(args.session):
        raise ReproError(
            "refusing to profile a worklog into itself; pass a "
            "different --worklog path"
        )
    # always trace: span frames are what makes the flamegraph semantic
    tracer = _session_tracer(args) or Tracer("session", command="profile")
    worklog = _session_worklog(args)
    profiler = SamplingProfiler(hz=args.sample_hz, memory=args.memory)
    try:
        # NO_WORKLOG: a REPRO_WORKLOG environment variable must not
        # append the profiled statements to the log being read
        dbx = DBExplorer(
            CADViewConfig(seed=args.seed), tracer=tracer,
            worklog=worklog if worklog is not None else NO_WORKLOG,
        )
        dbx.register("data", _load_table(args))
        with profiler:
            report = replay(records, dbx)
    finally:
        _write_obs(args, tracer, worklog)
    if report.statements == 0:
        print(f"error: no statement records in {args.session}",
              file=sys.stderr)
        return EXIT_USAGE
    print(
        f"== profiled replay: {report.statements} statement(s) in "
        f"{report.wall_s:.2f}s ({report.errors} error(s)) =="
    )
    if report.work_totals:
        print("work counters (deterministic):")
        for name, total in sorted(report.work_totals.items()):
            print(f"  {name} = {total}")
    _print_profile(args, profiler)
    return EXIT_OK


def _print_profile(args, profiler) -> None:
    """Render the sampler's reports and write the flamegraph file."""
    if profiler is None:
        return
    print(profiler.self_time_report())
    if args.memory:
        print(profiler.memory_report())
    if args.flamegraph:
        count = profiler.write_collapsed(args.flamegraph)
        print(
            f"flamegraph: {count} collapsed stack(s) written to "
            f"{args.flamegraph} (feed to flamegraph.pl or speedscope)"
        )


def cmd_deps(args) -> int:
    """``deps``: print discovered FDs and top correlations."""
    from repro.features.dependencies import (
        correlation_pairs, discover_dependencies,
    )

    table = _load_table(args)
    print("soft functional dependencies (strength >= 0.98):")
    for dep in discover_dependencies(table, threshold=0.98):
        print(f"  {dep}")
    print("\nstrongest correlations (Cramér's V):")
    for x, y, v in correlation_pairs(table)[:10]:
        print(f"  {x} ~ {y}: {v:.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DBExplorer (EDBT 2016) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen-data", help="generate a dataset CSV")
    p.add_argument("dataset", choices=("usedcars", "mushroom"))
    p.add_argument("--rows", type=int, default=None)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", required=True, help="output CSV path")
    p.set_defaults(func=cmd_gen_data, csv=None)

    p = sub.add_parser("cadview", help="run one statement")
    _add_data_args(p)
    _add_budget_args(p)
    _add_obs_args(p)
    p.add_argument("--sql", required=True, help="statement to execute")
    p.add_argument("--cell-width", type=int, default=26)
    p.set_defaults(func=cmd_cadview)

    p = sub.add_parser(
        "check", help="semantic-check one statement without executing it"
    )
    _add_data_args(p)
    _add_budget_args(p)
    p.add_argument("--sql", required=True, help="statement to analyze")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON instead of text")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("repl", help="interactive statement shell")
    _add_data_args(p)
    _add_budget_args(p)
    _add_obs_args(p)
    p.add_argument("--cell-width", type=int, default=26)
    p.set_defaults(func=cmd_repl)

    p = sub.add_parser(
        "replay", help="re-execute a captured workload log"
    )
    p.add_argument("worklog_file",
                   help="workload log (JSONL) captured with --worklog")
    p.add_argument("--dataset", choices=("usedcars", "mushroom"),
                   default=None,
                   help="override the dataset recorded in the log")
    p.add_argument("--rows", type=int, default=None,
                   help="override the row count recorded in the log")
    p.add_argument("--seed", type=int, default=None,
                   help="override the RNG seed recorded in the log")
    p.add_argument("--csv", default=None,
                   help="load this CSV instead of generating")
    _add_budget_args(p)
    _add_obs_args(p)
    p.add_argument("--json", action="store_true",
                   help="print the replay report as JSON")
    p.add_argument(
        "--concurrency", type=int, default=None, metavar="N",
        help="replay through the serving executor with N workers "
             "(dependency-aware scheduling; deterministic — breakers "
             "and deadlines off)",
    )
    p.add_argument(
        "--verify-sequential", action="store_true",
        help="with --concurrency: also replay sequentially and fail "
             "(exit 2) on any per-statement digest mismatch",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="fail on corrupt/truncated worklog lines instead of "
             "skipping them with a warning",
    )
    _add_slo_args(p)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "serve",
        help="stress the concurrent serving core with a workload log",
    )
    p.add_argument("worklog_file",
                   help="workload log (JSONL) captured with --worklog")
    p.add_argument("--stress", action="store_true",
                   help="run the stress driver (required; there is no "
                        "network server)")
    p.add_argument("--dataset", choices=("usedcars", "mushroom"),
                   default=None,
                   help="override the dataset recorded in the log")
    p.add_argument("--rows", type=int, default=None,
                   help="override the row count recorded in the log")
    p.add_argument("--seed", type=int, default=None,
                   help="override the RNG seed recorded in the log")
    p.add_argument("--csv", default=None,
                   help="load this CSV instead of generating")
    p.add_argument("--workers", type=int, default=4,
                   help="executor pool threads")
    p.add_argument("--queue-limit", type=int, default=4,
                   help="bounded admission queue depth (beyond that: "
                        "explicit rejection with Retry-After)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-query wall-clock deadline enforced by the "
                        "watchdog (default: none)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retries for transient faults, with backoff")
    p.add_argument("--trip-after", type=int, default=3,
                   help="consecutive failures that open a dataset's "
                        "circuit breaker")
    p.add_argument("--cooldown-ms", type=float, default=500.0,
                   help="how long an open breaker short-circuits builds "
                        "before the half-open probe")
    p.add_argument("--procs", type=int, default=None, metavar="N",
                   help="serve through N supervised worker subprocesses "
                        "(dataset-sharded, crash-recovering) instead of "
                        "the in-process thread pool")
    p.add_argument("--chaos", action="store_true",
                   help="with --procs: inject worker crash/hang/"
                        "pipe-drop faults mid-run and fail (exit 2) "
                        "unless the supervisor fully recovers")
    p.add_argument("--verify-sequential", action="store_true",
                   help="with --procs: also replay sequentially "
                        "in-process and fail (exit 2) on any "
                        "per-statement digest mismatch")
    p.add_argument("--drain-grace-ms", type=float, default=5000.0,
                   help="how long a graceful drain waits for in-flight "
                        "statements before cancelling them")
    p.add_argument("--strict", action="store_true",
                   help="fail on corrupt/truncated worklog lines "
                        "instead of skipping them with a warning")
    p.add_argument("--stats-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="with --procs: print a live per-shard stats "
                        "line to stderr every SECONDS")
    p.add_argument("--stats-file", default=None, metavar="FILE",
                   help="with --procs: write the full stats snapshot "
                        "JSON to FILE at exit (SIGUSR1 dumps here too; "
                        "readable with 'repro stats')")
    p.add_argument("--state-dir", default=None, metavar="DIR",
                   help="with --procs: durable catalog WAL + snapshots "
                        "in DIR; startup recovers whatever a previous "
                        "process made durable (with --torture: the "
                        "root for per-iteration state dirs)")
    p.add_argument("--fsync-interval-ms", type=float, default=0.0,
                   metavar="MS",
                   help="group-commit window: mutations acked within "
                        "the same window share one fsync (0 = fsync "
                        "inline per mutation; default 0)")
    p.add_argument("--wal-segment-bytes", type=int, default=1 << 20,
                   metavar="BYTES",
                   help="rotate the WAL segment past this size")
    p.add_argument("--wal-snapshot-every", type=int, default=64,
                   metavar="N",
                   help="snapshot-compact the catalog every N WAL "
                        "records (truncates superseded segments)")
    p.add_argument("--torture", type=int, default=None, metavar="N",
                   help="run N kill -9 durability iterations: SIGKILL "
                        "a fresh serving process at deterministic "
                        "wal.* crash points, recover, and fail "
                        "(exit 2) on any acked-mutation loss or "
                        "unacked resurrection")
    _add_slo_args(p)
    _add_budget_args(p)
    _add_obs_args(p)
    p.add_argument("--json", action="store_true",
                   help="print the stress report as JSON")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "recover",
        help="inspect/verify a durable serve --state-dir offline",
    )
    p.add_argument("state_dir",
                   help="state directory written by "
                        "serve --procs --state-dir")
    p.add_argument("--procs", type=int, default=None, metavar="N",
                   help="expected shard count (refuse recovery on "
                        "mismatch, as serve startup would)")
    p.add_argument("--truncate", action="store_true",
                   help="apply repairs instead of reporting them: "
                        "truncate a torn tail, remove orphaned temp "
                        "files (default: read-only)")
    p.add_argument("--json", action="store_true",
                   help="emit the recovery report as JSON")
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser(
        "stats",
        help="render a serve stats snapshot (and optionally check SLOs)",
    )
    p.add_argument("stats_json",
                   help="snapshot file written by serve --stats-file "
                        "or a SIGUSR1 dump")
    p.add_argument("--json", action="store_true",
                   help="re-emit the snapshot as JSON instead of the "
                        "rendered table")
    _add_slo_args(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("study", help="run the simulated user study")
    p.add_argument("--rows", type=int, default=None)
    p.add_argument("--seed", type=int, default=13)
    p.add_argument("--study-seed", type=int, default=2016)
    p.set_defaults(func=cmd_study, csv=None, dataset="mushroom")

    p = sub.add_parser(
        "profile",
        help="profile a build or a replayed session (flamegraphs)",
    )
    _add_data_args(p)
    _add_obs_args(p)
    p.add_argument("--compare", type=int, default=11)
    p.add_argument("--iunits", type=int, default=6)
    p.add_argument("--generated", type=int, default=15)
    p.add_argument("--session", default=None, metavar="LOG",
                   help="replay this workload log under the sampling "
                        "profiler instead of running the naive-vs-"
                        "optimized build comparison (the log's session "
                        "header supplies dataset/rows/seed defaults)")
    p.add_argument("--flamegraph", default=None, metavar="FILE",
                   help="write collapsed stacks to FILE (the "
                        "flamegraph.pl / speedscope text format), with "
                        "tracer spans as 'span:<name>' frames")
    p.add_argument("--sample-hz", type=float, default=97.0,
                   help="stack sampling rate (default: 97 Hz — prime, "
                        "so it cannot lock step with periodic work)")
    p.add_argument("--memory", action="store_true",
                   help="also record per-phase peak memory via "
                        "tracemalloc (adds tracing overhead)")
    # data flags default to None here (unlike the other data commands)
    # so --session header values can fill them; cmd_profile restores
    # the usual usedcars/seed-7 defaults when no session log is given
    p.set_defaults(func=cmd_profile, dataset=None, seed=None,
                   budget_ms=None)

    p = sub.add_parser("deps", help="discover attribute dependencies")
    _add_data_args(p)
    p.set_defaults(func=cmd_deps)

    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success, 1 usage/parse/other error, 2 build failed,
    3 budget exhausted with nothing built.  Errors go to stderr.
    """
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors; fold into our usage code
        return EXIT_OK if exc.code == 0 else EXIT_USAGE
    try:
        return args.func(args)
    except BudgetExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BUDGET_EXHAUSTED
    except AnalysisError as exc:
        # before the CADViewError clause: AnalysisError inherits from it,
        # but a statement rejected pre-execution is a usage error, not a
        # failed build
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (CADViewError, ConvergenceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BUILD_FAILED
    except DurabilityError as exc:
        # an unrecoverable state dir or a failed WAL is an operational
        # failure (exit 2), not an operator mistake (exit 1)
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BUILD_FAILED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
