"""Cluster labeling: turning raw clusters into IUnits (paper Sec. 3.1.2).

"Our key contribution in creating the IUnits is the post-clustering step
of cluster labeling."  For each cluster and each Compare Attribute we

1. count the attribute's values inside the cluster (its term-frequency
   vector, reused later by Algorithm 1),
2. rank values by frequency,
3. pick representative values using two thresholds: a *max display
   count* and a *statistical difference between frequency counts* —
   a value is shown alongside the top value only while its count is not
   significantly below the count of the previously admitted value.

The statistical-difference rule uses a two-proportion z-test on the
counts (a value joins the representatives while its frequency is not
significantly smaller at level ``alpha``); a simple ratio fallback is
available for deterministic tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.special import ndtr

from repro.discretize.discretizer import DiscretizedView
from repro.errors import CADViewError
from repro.iunits.iunit import IUnit

__all__ = [
    "LabelingConfig",
    "representative_values",
    "label_cluster",
    "build_iunits",
]


@dataclass(frozen=True)
class LabelingConfig:
    """Thresholds of the labeling step.

    max_display:
        Maximum representative values shown per Compare Attribute
        (Table 1 shows 1–2).
    alpha:
        Significance level of the two-proportion test; a candidate value
        is grouped with the previous one while their counts are not
        significantly different.
    min_share:
        A representative must cover at least this fraction of the
        cluster (drops noise values in large clusters).
    """

    max_display: int = 2
    alpha: float = 0.05
    min_share: float = 0.15


def _counts_significantly_below(
    c_small: float, c_big: float, total: float, alpha: float
) -> bool:
    """Two-proportion z-test: is ``c_small/total`` significantly below
    ``c_big/total``?"""
    if total <= 0 or c_big <= 0:
        return False
    p1, p2 = c_big / total, c_small / total
    pooled = (c_big + c_small) / (2.0 * total)
    if pooled in (0.0, 1.0):
        return False
    se = np.sqrt(2.0 * pooled * (1.0 - pooled) / total)
    if se == 0:
        return p1 > p2
    z = (p1 - p2) / se
    p_value = 1.0 - float(ndtr(z))  # one-sided
    return p_value <= alpha


def representative_values(
    counts: np.ndarray,
    labels: Sequence[str],
    config: LabelingConfig,
) -> Tuple[str, ...]:
    """Pick the display values for one attribute of one cluster.

    Values are admitted in frequency order.  The first value is always
    shown; each next value is shown only while (a) the display cap is
    not hit, (b) it covers ``min_share`` of the cluster, and (c) its
    count is *not* significantly below the previous admitted value's
    count — the paper's "statistical difference between frequency
    counts" threshold.
    """
    counts = np.asarray(counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        return ()
    order = np.argsort(-counts, kind="stable")
    chosen: List[str] = []
    prev_count = None
    for idx in order:
        c = counts[idx]
        if c <= 0 or len(chosen) >= config.max_display:
            break
        if chosen:
            if c / total < config.min_share:
                break
            if _counts_significantly_below(c, prev_count, total, config.alpha):
                break
        chosen.append(labels[idx])
        prev_count = c
    return tuple(chosen)


def label_cluster(
    view: DiscretizedView,
    member_mask: np.ndarray,
    pivot_attribute: str,
    pivot_value: str,
    compare_attributes: Sequence[str],
    config: LabelingConfig = LabelingConfig(),
) -> IUnit:
    """Label one cluster of ``view`` rows as an :class:`IUnit`.

    ``member_mask`` selects the cluster's rows within ``view`` (which is
    already restricted to the pivot value's partition).
    """
    member_mask = np.asarray(member_mask, dtype=bool)
    size = int(member_mask.sum())
    if size == 0:
        raise CADViewError("cannot label an empty cluster")
    distributions: Dict[str, np.ndarray] = {}
    display: Dict[str, Tuple[str, ...]] = {}
    for name in compare_attributes:
        codes = view.codes(name)[member_mask]
        valid = codes[codes >= 0]
        counts = np.bincount(valid, minlength=view.ncodes(name)).astype(float)
        distributions[name] = counts
        display[name] = representative_values(
            counts, view.labels(name), config
        )
    return IUnit(
        pivot_attribute,
        pivot_value,
        size,
        tuple(compare_attributes),
        distributions,
        display,
    )


def build_iunits(
    view: DiscretizedView,
    cluster_labels: np.ndarray,
    pivot_attribute: str,
    pivot_value: str,
    compare_attributes: Sequence[str],
    config: LabelingConfig = LabelingConfig(),
) -> List[IUnit]:
    """Label every cluster of a partition (Problem 1.2's output).

    ``cluster_labels`` assigns each row of ``view`` to a cluster id;
    negative ids are ignored (outliers).  Returns one IUnit per
    non-empty cluster, unordered (ranking is Problem 2's job).
    """
    cluster_labels = np.asarray(cluster_labels)
    iunits: List[IUnit] = []
    for cid in np.unique(cluster_labels):
        if cid < 0:
            continue
        mask = cluster_labels == cid
        if not mask.any():
            continue
        iunits.append(
            label_cluster(
                view, mask, pivot_attribute, pivot_value,
                compare_attributes, config,
            )
        )
    return iunits
