"""Diversified top-k IUnit selection (paper Sec. 3.2, Problem 2).

Selecting the top-k IUnits purely by preference score yields redundant,
near-identical IUnits, so the paper adopts the *diversified top-k*
formulation of Qin, Yu & Chang (VLDB 2012): choose ``T ⊆ S`` with
``|T| <= k`` such that no two chosen IUnits are similar
(``sim >= tau``) and the total score is maximized.  This is a maximum
weight independent set problem; greedy "can lead to arbitrarily bad
solutions", so we implement the exact best-first search (div-astar) —
fine here because ``|S| = l`` is small — alongside the greedy baseline
used by the E-DIV ablation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CADViewError
from repro.iunits.iunit import IUnit
from repro.iunits.ranking import PreferenceFunction, SizePreference
from repro.iunits.similarity import iunit_similarity
from repro.obs import work
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "similarity_graph",
    "div_astar",
    "div_greedy",
    "diversified_topk",
]


def similarity_graph(
    iunits: Sequence[IUnit], tau: float
) -> np.ndarray:
    """Boolean adjacency matrix: entry (i, j) True iff sim(i, j) >= tau."""
    n = len(iunits)
    adj = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(i + 1, n):
            if iunit_similarity(iunits[i], iunits[j]) >= tau:
                adj[i, j] = adj[j, i] = True
    return adj


def _check(scores: Sequence[float], adjacency: np.ndarray, k: int) -> np.ndarray:
    scores_arr = np.asarray(scores, dtype=float)
    n = len(scores_arr)
    adjacency = np.asarray(adjacency, dtype=bool)
    if adjacency.shape != (n, n):
        raise CADViewError(
            f"adjacency shape {adjacency.shape} does not match {n} scores"
        )
    if k < 0:
        raise CADViewError(f"k must be >= 0, got {k}")
    if (scores_arr < 0).any():
        raise CADViewError("scores must be non-negative")
    return scores_arr


def div_astar(
    scores: Sequence[float],
    adjacency: np.ndarray,
    k: int,
    checkpoint: Optional[Callable[[], None]] = None,
    tracer: Optional[Tracer] = None,
) -> List[int]:
    """Exact diversified top-k: best-first search with an admissible bound.

    Vertices are considered in descending score order; a search node is
    (position, chosen-set).  The bound adds the best ``k - |chosen|``
    still-compatible scores, which never underestimates, so the first
    fully-expanded best node is optimal (A* on the decision tree; the
    div-astar of Qin et al. specialised to our small ``l``).

    ``checkpoint`` is called once per expanded node; a budgeted caller
    can abort an exploding search and fall back to the greedy solver.

    Returns chosen vertex indices sorted by descending score.
    """
    scores_arr = _check(scores, adjacency, k)
    tracer = tracer or NULL_TRACER
    n = len(scores_arr)
    if n == 0 or k == 0:
        return []
    order = np.argsort(-scores_arr, kind="stable")
    ordered_scores = scores_arr[order]

    def bound(pos: int, chosen: Tuple[int, ...], current: float) -> float:
        budget = k - len(chosen)
        if budget <= 0 or pos >= n:
            return current
        remaining = []
        for q in range(pos, n):
            v = order[q]
            if all(not adjacency[v][c] for c in chosen):
                remaining.append(ordered_scores[q])
                if len(remaining) == budget:
                    break
        return current + float(sum(remaining))

    # max-heap keyed by -bound; tie-break by insertion counter
    counter = itertools.count()
    best_value = -1.0
    best_set: Tuple[int, ...] = ()
    start = (-bound(0, (), 0.0), next(counter), 0, (), 0.0)
    heap = [start]
    while heap:
        if checkpoint is not None:
            checkpoint()
        tracer.inc("astar_nodes")
        work.add("work.diversify.astar_expanded")
        neg_b, _, pos, chosen, current = heapq.heappop(heap)
        if -neg_b <= best_value:
            tracer.inc("astar_pruned", len(heap))
            break  # no node can beat the incumbent
        if current > best_value:
            best_value = current
            best_set = chosen
        if pos >= n or len(chosen) >= k:
            continue
        v = int(order[pos])
        # branch 1: skip v
        b_skip = bound(pos + 1, chosen, current)
        if b_skip > best_value:
            heapq.heappush(
                heap, (-b_skip, next(counter), pos + 1, chosen, current)
            )
        # branch 2: take v if compatible
        if all(not adjacency[v][c] for c in chosen):
            taken = chosen + (v,)
            value = current + float(scores_arr[v])
            b_take = bound(pos + 1, taken, value)
            if value > best_value:
                best_value = value
                best_set = taken
            if b_take > best_value or len(taken) < k:
                heapq.heappush(
                    heap, (-b_take, next(counter), pos + 1, taken, value)
                )
    return sorted(best_set, key=lambda v: (-scores_arr[v], v))


def div_greedy(
    scores: Sequence[float], adjacency: np.ndarray, k: int
) -> List[int]:
    """Greedy baseline: repeatedly take the best compatible vertex.

    Qin et al. show this can be arbitrarily bad; the E-DIV ablation
    quantifies the gap on real candidate sets.
    """
    scores_arr = _check(scores, adjacency, k)
    chosen: List[int] = []
    for v in np.argsort(-scores_arr, kind="stable"):
        if len(chosen) >= k:
            break
        if all(not adjacency[v][c] for c in chosen):
            chosen.append(int(v))
    return chosen


def diversified_topk(
    iunits: Sequence[IUnit],
    k: int,
    tau: float,
    preference: Optional[PreferenceFunction] = None,
    exact: bool = True,
    checkpoint: Optional[Callable[[], None]] = None,
    tracer: Optional[Tracer] = None,
) -> List[IUnit]:
    """Problem 2 end-to-end: score, build the similarity graph, solve.

    Returns at most ``k`` IUnits, highest score first, each stamped with
    its 1-based ``uid``.  ``checkpoint`` reaches the exact solver only —
    the greedy baseline is the cheap fallback a budgeted caller degrades
    to, so it must always run to completion.  A ``tracer`` counts
    candidates in, similarity pairs compared, search nodes expanded and
    IUnits pruned away.
    """
    if not iunits:
        return []
    tracer = tracer or NULL_TRACER
    preference = preference or SizePreference()
    raw = np.array([preference.score(u) for u in iunits], dtype=float)
    # shift to strictly positive when needed (preferences like ascending
    # price are negative); keep every candidate worth selecting
    finite = raw[np.isfinite(raw)]
    floor = float(finite.min()) if finite.size else 0.0
    if floor <= 0.0:
        raw = np.where(np.isfinite(raw), raw - floor + 1.0, 0.0)
    scores = np.where(np.isfinite(raw), raw, 0.0)
    tracer.inc("candidates_in", len(iunits))
    tracer.inc("similarity_pairs", len(iunits) * (len(iunits) - 1) // 2)
    adj = similarity_graph(iunits, tau)
    if exact:
        picked = div_astar(scores, adj, k, checkpoint, tracer)
    else:
        picked = div_greedy(scores, adj, k)
    tracer.inc("pruned", len(iunits) - len(picked))
    return [iunits[v].with_uid(rank) for rank, v in enumerate(picked, start=1)]
