"""The IUnit (Interaction Unit) model.

An IUnit is "an interesting group of values for the Compare Attributes"
(paper Sec. 2.1.1) — a labeled cluster of the tuples carrying one Pivot
Attribute value.  Besides its display labels, an IUnit keeps the full
per-attribute value-frequency distributions of its underlying cluster;
those term-frequency vectors are what Algorithm 1 computes cosine
similarity over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import CADViewError

__all__ = ["IUnit"]


@dataclass(frozen=True)
class IUnit:
    """One labeled cluster.

    Attributes
    ----------
    pivot_attribute / pivot_value:
        The CAD View row this IUnit belongs to.
    size:
        Number of tuples in the underlying cluster.
    compare_attributes:
        The Compare Attributes, in display order (shared by the whole
        CAD View).
    distributions:
        attribute -> frequency-count vector over the attribute's code
        domain in the originating :class:`DiscretizedView`.
    display:
        attribute -> the representative value labels chosen by the
        labeling step (what Table 1 prints in square brackets).
    uid:
        1-based position within its row after top-k ranking; ``None``
        for unranked candidates.
    """

    pivot_attribute: str
    pivot_value: str
    size: int
    compare_attributes: Tuple[str, ...]
    distributions: Mapping[str, np.ndarray]
    display: Mapping[str, Tuple[str, ...]]
    uid: Optional[int] = None

    def __post_init__(self) -> None:
        missing = [
            a for a in self.compare_attributes if a not in self.distributions
        ]
        if missing:
            raise CADViewError(f"IUnit lacks distributions for {missing}")

    def with_uid(self, uid: int) -> "IUnit":
        """A copy carrying its 1-based rank within the CAD View row."""
        return IUnit(
            self.pivot_attribute,
            self.pivot_value,
            self.size,
            self.compare_attributes,
            self.distributions,
            self.display,
            uid,
        )

    def label_text(self, attribute: str) -> str:
        """Rendered label for one attribute, e.g. ``[Traverse LT] [Equinox LT]``.

        Values grouped for having statistically similar frequencies share
        one bracket (comma-separated); distinct-frequency representatives
        get their own brackets.  We keep it simple and render each
        representative in its own bracket pair unless the labeling step
        grouped them (grouping is encoded by tuples inside ``display``).
        """
        values = self.display.get(attribute, ())
        if not values:
            return "[-]"
        return " ".join(f"[{v}]" for v in values)

    def top_values(self, attribute: str, n: int = 3) -> Tuple[Tuple[str, int], ...]:
        """(label-index, count) pairs of the ``n`` most frequent codes.

        Mainly for diagnostics; display labels come from ``display``.
        """
        dist = np.asarray(self.distributions[attribute])
        order = np.argsort(dist)[::-1][:n]
        return tuple((int(i), int(dist[i])) for i in order if dist[i] > 0)

    def __repr__(self) -> str:
        tag = f"#{self.uid}" if self.uid is not None else "cand"
        return (
            f"IUnit({self.pivot_value} {tag}, size={self.size}, "
            f"{ {a: list(v) for a, v in self.display.items()} })"
        )


# keep dataclasses import available for subclass users
_ = field
