"""Similarity search inside a CAD View (paper Sec. 4).

* :func:`iunit_similarity` — Algorithm 1: the similarity of two IUnits
  is the sum over Compare Attributes of the cosine similarity of their
  value-frequency vectors; range ``[0, |I|]``.
* :func:`ranked_list_distance` — Algorithm 2: a rank-aware distance
  between the top-k IUnit lists of two pivot values (lower = more
  similar), handling the disjoint-item problem by matching IUnits via
  Algorithm 1 at threshold ``tau``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CADViewError
from repro.iunits.iunit import IUnit
from repro.obs import work

__all__ = [
    "cosine_similarity",
    "iunit_similarity",
    "default_tau",
    "ranked_list_distance",
]


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine of two non-negative count vectors; 0 when either is empty."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise CADViewError(
            f"cosine: shape mismatch {a.shape} vs {b.shape}"
        )
    # pre-scale by the max magnitude: norm() squares entries first and
    # underflows to zero on subnormal count vectors
    ma, mb = np.abs(a).max(initial=0.0), np.abs(b).max(initial=0.0)
    if ma == 0 or mb == 0:
        return 0.0
    a = a / ma
    b = b / mb
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    value = float(np.dot(a / na, b / nb))
    return min(1.0, max(0.0, value))


def iunit_similarity(x: IUnit, y: IUnit) -> float:
    """Algorithm 1 (IUnit Pair Similarity).

    Sums per-dimension cosine similarity of the value-frequency vectors
    over the shared Compare Attributes ``I``; the maximum is ``|I|``
    (the paper: "for five Compare Attributes the max similarity score
    can be 5.0").
    """
    if x.compare_attributes != y.compare_attributes:
        raise CADViewError(
            "IUnits come from different Compare Attribute sets: "
            f"{x.compare_attributes} vs {y.compare_attributes}"
        )
    work.add("work.diversify.similarity_pairs")
    total = 0.0
    for d in x.compare_attributes:
        total += cosine_similarity(x.distributions[d], y.distributions[d])
    return total


def default_tau(n_compare: int, alpha: float = 0.7) -> float:
    """The paper's similarity threshold heuristic ``tau = alpha * |I|``."""
    if not 0.0 < alpha < 1.0:
        raise CADViewError(f"alpha must be in (0, 1), got {alpha}")
    return alpha * n_compare


def ranked_list_distance(
    tx: Sequence[IUnit],
    ty: Sequence[IUnit],
    tau: float,
) -> float:
    """Algorithm 2 (Attribute-value Pair Similarity).

    For each IUnit ``tx[i]`` (1-based rank ``i``), find the similar
    IUnit in ``ty`` whose rank is closest to ``i``; if none is similar,
    charge rank ``len(ty) + 1``.  Sum the absolute rank differences,
    then do the same from ``ty`` to ``tx``.  Lower = more similar; 0 for
    identical lists.
    """
    if not tx and not ty:
        return 0.0

    def one_direction(a: Sequence[IUnit], b: Sequence[IUnit]) -> float:
        d = 0.0
        for i, unit in enumerate(a, start=1):
            similar_ranks = [
                j for j, other in enumerate(b, start=1)
                if iunit_similarity(unit, other) >= tau
            ]
            if similar_ranks:
                index = min(similar_ranks, key=lambda j: abs(j - i))
            else:
                index = len(b) + 1
            d += abs(i - index)
        return d

    return one_direction(tx, ty) + one_direction(ty, tx)
