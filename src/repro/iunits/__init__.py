"""IUnits: the labeled clusters a CAD View is made of.

Covers paper Problems 1.2 (candidate generation + labeling), 2
(diversified top-k), 3 (similar IUnits) and 4 (similar pivot values).
"""

from repro.iunits.diversify import (
    div_astar,
    div_greedy,
    diversified_topk,
    similarity_graph,
)
from repro.iunits.iunit import IUnit
from repro.iunits.labeling import (
    LabelingConfig,
    build_iunits,
    label_cluster,
    representative_values,
)
from repro.iunits.ranking import (
    AttributePreference,
    CompositePreference,
    PreferenceFunction,
    SizePreference,
)
from repro.iunits.similarity import (
    cosine_similarity,
    default_tau,
    iunit_similarity,
    ranked_list_distance,
)

__all__ = [
    "IUnit",
    "LabelingConfig", "label_cluster", "build_iunits",
    "representative_values",
    "PreferenceFunction", "SizePreference", "AttributePreference",
    "CompositePreference",
    "similarity_graph", "div_astar", "div_greedy", "diversified_topk",
    "cosine_similarity", "iunit_similarity", "default_tau",
    "ranked_list_distance",
]
