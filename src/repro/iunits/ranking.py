"""Preference functions for ranking IUnits (paper Problem 2).

"We have defined this ranking in terms of a specific preference
function.  If no function is specified by the user, we can use a simple
system default, such as cluster size."  The paper's examples: a car
shopper ranks IUnit clusters by ascending price; a taxi fleet manager by
descending mileage.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.discretize.discretizer import DiscretizedView
from repro.errors import CADViewError
from repro.iunits.iunit import IUnit

__all__ = [
    "PreferenceFunction",
    "SizePreference",
    "AttributePreference",
    "CompositePreference",
]


class PreferenceFunction:
    """Scores IUnits; higher scores are preferred."""

    def score(self, iunit: IUnit) -> float:
        """The preference value of one IUnit (higher = better)."""
        raise NotImplementedError

    def __call__(self, iunit: IUnit) -> float:
        return self.score(iunit)


class SizePreference(PreferenceFunction):
    """The system default: prefer IUnits summarizing more tuples.

    "IUnits that represent large clusters ... may give more reliable
    insight than smaller outlier-prone clusters." (Sec. 3.2)
    """

    def score(self, iunit: IUnit) -> float:
        """Cluster size."""
        return float(iunit.size)


class AttributePreference(PreferenceFunction):
    """Prefer low (or high) values of one binned numeric attribute.

    The cluster's position on the attribute is the frequency-weighted
    mean of its bin midpoints; with ``ascending=True`` (e.g. ascending
    cluster price) lower means score higher.
    """

    def __init__(
        self,
        view: DiscretizedView,
        attribute: str,
        ascending: bool = True,
    ):
        if not view.is_binned(attribute):
            raise CADViewError(
                f"AttributePreference needs a binned attribute, "
                f"{attribute!r} is categorical"
            )
        self.attribute = attribute
        self.ascending = ascending
        self._midpoints = np.array(
            [(b.lo + b.hi) / 2.0 for b in view.bins(attribute)]
        )

    def score(self, iunit: IUnit) -> float:
        """Signed frequency-weighted mean of the attribute's bins."""
        dist = np.asarray(iunit.distributions[self.attribute], dtype=float)
        if dist.shape != self._midpoints.shape:
            raise CADViewError(
                f"IUnit distribution for {self.attribute!r} does not match "
                "the view this preference was built from"
            )
        total = dist.sum()
        if total == 0:
            return -np.inf  # never prefer a cluster with no data here
        mean = float(np.dot(dist, self._midpoints) / total)
        return -mean if self.ascending else mean


class CompositePreference(PreferenceFunction):
    """Weighted sum of normalized sub-preferences.

    Each sub-preference's scores are rank-normalized per call batch is
    overkill here; we simply combine raw scores with weights, which is
    adequate when the caller controls the scales.
    """

    def __init__(
        self,
        preferences: Sequence[PreferenceFunction],
        weights: Optional[Sequence[float]] = None,
    ):
        if not preferences:
            raise CADViewError("CompositePreference needs >= 1 preference")
        self.preferences = tuple(preferences)
        if weights is None:
            weights = [1.0] * len(preferences)
        if len(weights) != len(preferences):
            raise CADViewError("weights/preferences length mismatch")
        self.weights = tuple(float(w) for w in weights)

    def score(self, iunit: IUnit) -> float:
        """Weighted sum of the sub-preferences' scores."""
        return sum(
            w * p.score(iunit)
            for w, p in zip(self.weights, self.preferences)
        )
