"""Typed column storage.

A :class:`Column` pairs an :class:`~repro.dataset.schema.Attribute` with a
numpy array of values.  Categorical columns are dictionary-encoded: the
array holds ``int32`` codes into a ``categories`` tuple, which keeps
40K-tuple tables (the paper's YahooUsedCar scale) compact and makes
group-by counting a ``numpy.bincount``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.schema import AttrKind, Attribute
from repro.errors import TypeMismatchError

__all__ = ["Column"]


class Column:
    """An immutable typed column of values.

    Use :meth:`from_values` to build from raw Python values;
    the constructor takes already-encoded storage.

    Parameters
    ----------
    attribute:
        Schema entry this column implements.
    data:
        For categorical columns an ``int32`` array of codes (``-1`` = missing);
        for numeric columns a ``float64`` array (``nan`` = missing).
    categories:
        For categorical columns, the tuple mapping code -> value.
    """

    __slots__ = ("attribute", "_data", "_categories")

    def __init__(
        self,
        attribute: Attribute,
        data: np.ndarray,
        categories: Optional[Tuple[str, ...]] = None,
    ):
        self.attribute = attribute
        if attribute.is_categorical:
            if categories is None:
                raise TypeMismatchError(
                    f"categorical column {attribute.name!r} needs categories"
                )
            data = np.asarray(data, dtype=np.int32)
            if data.size and (data.max(initial=-1) >= len(categories)):
                raise TypeMismatchError(
                    f"code out of range for column {attribute.name!r}"
                )
            self._categories: Tuple[str, ...] = tuple(categories)
        else:
            data = np.asarray(data, dtype=np.float64)
            self._categories = ()
        data.setflags(write=False)
        self._data = data

    # -- construction ---------------------------------------------------

    @classmethod
    def from_values(cls, attribute: Attribute, values: Iterable) -> "Column":
        """Encode raw Python values into a column.

        Categorical values are converted with ``str``; ``None`` becomes a
        missing marker.  Numeric values must be convertible to ``float``;
        ``None`` becomes ``nan``.
        """
        vals = list(values)
        if attribute.is_categorical:
            categories: list = []
            index: dict = {}
            codes = np.empty(len(vals), dtype=np.int32)
            for i, v in enumerate(vals):
                if v is None:
                    codes[i] = -1
                    continue
                v = str(v)
                code = index.get(v)
                if code is None:
                    code = len(categories)
                    index[v] = code
                    categories.append(v)
                codes[i] = code
            return cls(attribute, codes, tuple(categories))
        try:
            data = np.array(
                [np.nan if v is None else float(v) for v in vals],
                dtype=np.float64,
            )
        except (TypeError, ValueError) as exc:
            raise TypeMismatchError(
                f"non-numeric value in numeric column {attribute.name!r}: {exc}"
            ) from None
        return cls(attribute, data)

    # -- basic protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator:
        return (self[i] for i in range(len(self)))

    def __getitem__(self, i: int):
        """Decoded value at row ``i`` (``None`` for missing)."""
        if self.attribute.is_categorical:
            code = int(self._data[i])
            return None if code < 0 else self._categories[code]
        v = float(self._data[i])
        return None if np.isnan(v) else v

    def __repr__(self) -> str:
        return (
            f"Column({self.attribute.name!r}, n={len(self)}, "
            f"kind={self.attribute.kind.value})"
        )

    # -- raw views --------------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """Categorical: the int32 code array. Raises for numeric columns."""
        if not self.attribute.is_categorical:
            raise TypeMismatchError(
                f"{self.attribute.name!r} is numeric; use .numbers"
            )
        return self._data

    @property
    def numbers(self) -> np.ndarray:
        """Numeric: the float64 value array. Raises for categorical columns."""
        if self.attribute.is_categorical:
            raise TypeMismatchError(
                f"{self.attribute.name!r} is categorical; use .codes"
            )
        return self._data

    @property
    def categories(self) -> Tuple[str, ...]:
        """Code -> value mapping for categorical columns (empty otherwise)."""
        return self._categories

    # -- operations ---------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """A new column containing rows at ``indices`` (shares categories)."""
        return Column(self.attribute, self._data[indices], self._categories or None)

    def mask(self, boolmask: np.ndarray) -> "Column":
        """A new column with rows where ``boolmask`` is True."""
        return Column(self.attribute, self._data[boolmask], self._categories or None)

    def code_of(self, value: str) -> int:
        """Code for a categorical ``value``; ``-1`` if it never occurs."""
        if not self.attribute.is_categorical:
            raise TypeMismatchError(
                f"{self.attribute.name!r} is numeric; no category codes"
            )
        try:
            return self._categories.index(str(value))
        except ValueError:
            return -1

    def distinct_values(self) -> Tuple:
        """Distinct non-missing decoded values, in first-seen / sorted order.

        Categorical columns return values in code (first-seen) order,
        restricted to codes that actually occur; numeric columns return
        sorted unique values.
        """
        if self.attribute.is_categorical:
            present = np.unique(self._data)
            return tuple(
                self._categories[int(c)] for c in present if c >= 0
            )
        vals = self._data[~np.isnan(self._data)]
        return tuple(float(v) for v in np.unique(vals))

    def value_counts(self) -> dict:
        """Mapping of decoded value -> occurrence count (missing excluded)."""
        if self.attribute.is_categorical:
            if len(self._categories) == 0 or len(self._data) == 0:
                return {}
            valid = self._data[self._data >= 0]
            counts = np.bincount(valid, minlength=len(self._categories))
            return {
                self._categories[i]: int(c)
                for i, c in enumerate(counts)
                if c > 0
            }
        vals = self._data[~np.isnan(self._data)]
        uniq, counts = np.unique(vals, return_counts=True)
        return {float(v): int(c) for v, c in zip(uniq, counts)}

    def missing_count(self) -> int:
        """Number of missing entries."""
        if self.attribute.is_categorical:
            return int(np.count_nonzero(self._data < 0))
        return int(np.count_nonzero(np.isnan(self._data)))

    def min(self) -> float:
        """Minimum of a numeric column, ignoring missing values."""
        return float(np.nanmin(self.numbers))

    def max(self) -> float:
        """Maximum of a numeric column, ignoring missing values."""
        return float(np.nanmax(self.numbers))

    def with_categories(self, categories: Sequence[str]) -> "Column":
        """Re-encode this categorical column onto a new category list.

        Used when concatenating tables whose columns discovered values in
        different orders.  Values absent from ``categories`` become missing.
        """
        cats = tuple(categories)
        mapping = np.full(len(self._categories) + 1, -1, dtype=np.int32)
        index = {v: i for i, v in enumerate(cats)}
        for old_code, value in enumerate(self._categories):
            mapping[old_code] = index.get(value, -1)
        # codes of -1 (missing) index the last slot, which stays -1
        return Column(self.attribute, mapping[self._data], cats)
