"""Schema objects for the relational substrate.

The paper (Example 1) assumes a single relation ``D`` with ``n``
attributes, a mix of categorical attributes (``Make``, ``Model``,
``Drivetrain``...) and numeric ones (``Price``, ``Mileage``, ``Year``...).
Some attributes are *queriable* — exposed in the forms-based query panel —
and some are *hidden* (Limitation 2 of the paper: ``Engine`` exists in the
data but cannot be selected directly).  The schema records all of this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownAttributeError

__all__ = ["AttrKind", "Attribute", "Schema"]


class AttrKind(enum.Enum):
    """The storage/semantic kind of an attribute.

    CATEGORICAL
        Unordered string-valued domain (``Make``, ``Color``).
    NUMERIC
        Real-valued (``Price``, ``FuelEconomy``); binned into ranges
        before it participates in a CAD View (paper Sec. 2.2.1).
    ORDINAL
        Integer-valued with a natural order but a small domain
        (``Year``, ``NumCylinders``); may be used directly or binned.
    """

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"
    ORDINAL = "ordinal"

    @property
    def is_numeric(self) -> bool:
        """True for kinds stored as numbers (NUMERIC and ORDINAL)."""
        return self is not AttrKind.CATEGORICAL


@dataclass(frozen=True)
class Attribute:
    """A single attribute (column) of a relation.

    Parameters
    ----------
    name:
        Column name; unique within a :class:`Schema`.
    kind:
        The :class:`AttrKind` of the column.
    queriable:
        Whether the front-end exposes this attribute in its query panel.
        Hidden attributes (``queriable=False``) are exactly the ones the
        paper's Limitation 2 is about: present in the data, visible in
        CAD View IUnits, but not directly selectable.
    description:
        Optional human-readable description.
    """

    name: str
    kind: AttrKind
    queriable: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if not isinstance(self.kind, AttrKind):
            raise SchemaError(f"kind must be an AttrKind, got {self.kind!r}")

    @property
    def is_categorical(self) -> bool:
        """True for string-valued attributes."""
        return self.kind is AttrKind.CATEGORICAL

    @property
    def is_numeric(self) -> bool:
        """True for NUMERIC and ORDINAL attributes."""
        return self.kind.is_numeric


class Schema:
    """An ordered, named collection of :class:`Attribute` objects.

    Behaves like an immutable ordered mapping from attribute name to
    :class:`Attribute`; also supports positional access.

    >>> schema = Schema([
    ...     Attribute("Make", AttrKind.CATEGORICAL),
    ...     Attribute("Price", AttrKind.NUMERIC),
    ... ])
    >>> schema["Make"].is_categorical
    True
    >>> schema.names
    ('Make', 'Price')
    """

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        names = [a.name for a in attrs]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate attribute names: {sorted(duplicates)}")
        self._attrs: Tuple[Attribute, ...] = attrs
        self._by_name = {a.name: a for a in attrs}

    # -- mapping/sequence protocol ------------------------------------

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attrs)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, key) -> Attribute:
        if isinstance(key, int):
            return self._attrs[key]
        try:
            return self._by_name[key]
        except KeyError:
            raise UnknownAttributeError(key, self.names) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attrs == other._attrs

    def __hash__(self) -> int:
        return hash(self._attrs)

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.kind.value}" for a in self._attrs)
        return f"Schema({cols})"

    # -- convenience views --------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names, in schema order."""
        return tuple(a.name for a in self._attrs)

    @property
    def categorical_names(self) -> Tuple[str, ...]:
        """Names of the categorical attributes, in schema order."""
        return tuple(a.name for a in self._attrs if a.is_categorical)

    @property
    def numeric_names(self) -> Tuple[str, ...]:
        """Names of the numeric/ordinal attributes, in schema order."""
        return tuple(a.name for a in self._attrs if a.is_numeric)

    @property
    def queriable_names(self) -> Tuple[str, ...]:
        """Names the front-end exposes for direct selection."""
        return tuple(a.name for a in self._attrs if a.queriable)

    @property
    def hidden_names(self) -> Tuple[str, ...]:
        """Names present in the data but not directly selectable."""
        return tuple(a.name for a in self._attrs if not a.queriable)

    def index_of(self, name: str) -> int:
        """Position of ``name`` in the schema order."""
        self[name]  # raise UnknownAttributeError if absent
        return self.names.index(name)

    def subset(self, names: Sequence[str]) -> "Schema":
        """A new schema containing ``names`` in the given order."""
        return Schema([self[n] for n in names])

    def require(self, names: Iterable[str]) -> None:
        """Raise :class:`UnknownAttributeError` for the first unknown name."""
        for n in names:
            self[n]

    def with_queriable(
        self, queriable: Optional[Sequence[str]] = None
    ) -> "Schema":
        """A copy where exactly ``queriable`` attributes are queriable.

        ``None`` makes every attribute queriable.
        """
        if queriable is not None:
            self.require(queriable)
            allowed = set(queriable)
        else:
            allowed = set(self.names)
        return Schema(
            Attribute(a.name, a.kind, a.name in allowed, a.description)
            for a in self._attrs
        )


# Dataclasses with default field() values are not used above, but keep
# the import for subclasses defined elsewhere.
_ = field
