"""Synthetic used-car dataset in the image of the paper's YahooUsedCar scrape.

The paper scraped Yahoo's used-car listings into a 40,000 x 11 table
(Sec. 6.1).  That site is long gone, so we generate a synthetic table with

* the same scale (default 40,000 tuples, 11 attributes),
* the attribute names of Example 1 / Table 1
  (``Make``, ``Model``, ``BodyType``, ``Price``, ``Mileage``, ``Year``,
  ``Engine``, ``Drivetrain``, ``Transmission``, ``Color``, ``FuelEconomy``),
* explicit *conditional attribute dependencies*, which is precisely the
  structure a CAD View summarizes:

  - ``Model`` functionally determines ``Make`` and ``BodyType``;
  - ``Engine`` and ``Drivetrain`` are drawn from per-model option lists
    (e.g. Wranglers are 4WD, Equinoxes are mostly V4/V6 2WD/AWD);
  - ``Price`` depreciates with age and ``Mileage`` and is anchored at a
    per-model base price (so Suburbans cost more than Captivas);
  - ``Mileage`` grows with age;
  - ``FuelEconomy`` falls with engine size and body weight.

The model catalog deliberately contains the Table 1 vehicles (Traverse LT,
Equinox LT, Suburban 1500 LT, Tahoe LT, Captiva LS, Escape XLT/Ltd.,
Explorer XLT/Ltd., Edge Ltd./SEL, Wrangler Unlimited, Compass Sport,
Patriot Sport, Liberty Sport, ...) so the reproduction of Table 1 shows
recognizable IUnits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.schema import AttrKind, Attribute, Schema
from repro.dataset.table import Table

__all__ = ["CarModel", "CAR_CATALOG", "usedcars_schema", "generate_usedcars"]


@dataclass(frozen=True)
class CarModel:
    """One entry of the synthetic vehicle catalog.

    ``engines`` and ``drivetrains`` are (value, weight) option lists; the
    weights need not sum to one.  ``base_price`` is the as-new price used
    by the depreciation curve; ``popularity`` scales how often the model
    appears in listings.
    """

    make: str
    model: str
    body: str
    base_price: float
    engines: Tuple[Tuple[str, float], ...]
    drivetrains: Tuple[Tuple[str, float], ...]
    mpg_base: float
    popularity: float = 1.0


def _suv(make, model, price, engines, drives, mpg, pop=1.0):
    return CarModel(make, model, "SUV", price, tuple(engines), tuple(drives), mpg, pop)


def _sedan(make, model, price, engines, mpg, pop=1.0):
    return CarModel(
        make, model, "Sedan", price, tuple(engines),
        (("2WD", 0.9), ("AWD", 0.1)), mpg, pop,
    )


def _truck(make, model, price, engines, mpg, pop=1.0):
    return CarModel(
        make, model, "Truck", price, tuple(engines),
        (("4WD", 0.6), ("2WD", 0.4)), mpg, pop,
    )


#: The vehicle catalog.  Models functionally determine make and body type,
#: and carry their own engine/drivetrain distributions and price anchors.
CAR_CATALOG: Tuple[CarModel, ...] = (
    # --- Chevrolet SUVs (Table 1, row 1) ---
    _suv("Chevrolet", "Traverse LT", 34000,
         [("V6", 1.0)], [("AWD", 0.6), ("2WD", 0.4)], 19, 1.4),
    _suv("Chevrolet", "Equinox LT", 28000,
         [("V4", 0.6), ("V6", 0.4)], [("AWD", 0.4), ("2WD", 0.6)], 24, 1.6),
    _suv("Chevrolet", "Suburban 1500 LT", 52000,
         [("V8", 1.0)], [("4WD", 0.55), ("2WD", 0.45)], 15, 0.9),
    _suv("Chevrolet", "Tahoe LT", 50000,
         [("V8", 1.0)], [("4WD", 0.6), ("2WD", 0.4)], 15, 1.0),
    _suv("Chevrolet", "Captiva LS", 24000,
         [("V4", 1.0)], [("2WD", 1.0)], 25, 0.8),
    _sedan("Chevrolet", "Malibu LT", 24000, [("V4", 0.8), ("V6", 0.2)], 29, 1.3),
    _sedan("Chevrolet", "Impala LT", 28000, [("V6", 1.0)], 22, 0.9),
    _truck("Chevrolet", "Silverado 1500", 35000, [("V8", 0.8), ("V6", 0.2)], 16, 1.3),
    # --- Ford SUVs (Table 1, row 2) ---
    _suv("Ford", "Escape XLT", 26000,
         [("V4", 0.55), ("V6", 0.45)], [("2WD", 0.6), ("4WD", 0.4)], 23, 1.6),
    _suv("Ford", "Escape Ltd.", 29000,
         [("V4", 0.45), ("V6", 0.55)], [("2WD", 0.55), ("4WD", 0.45)], 22, 1.1),
    _suv("Ford", "Explorer XLT", 36000,
         [("V6", 1.0)], [("4WD", 0.65), ("2WD", 0.35)], 18, 1.2),
    _suv("Ford", "Explorer Ltd.", 41000,
         [("V6", 0.6), ("V8", 0.4)], [("4WD", 0.5), ("2WD", 0.5)], 17, 0.9),
    _suv("Ford", "Edge Ltd.", 34000,
         [("V6", 1.0)], [("AWD", 0.5), ("2WD", 0.5)], 21, 1.0),
    _suv("Ford", "Edge SEL", 31000,
         [("V6", 1.0)], [("AWD", 0.45), ("2WD", 0.55)], 21, 1.1),
    _suv("Ford", "Expedition XLT", 45000,
         [("V8", 1.0)], [("4WD", 0.6), ("2WD", 0.4)], 14, 0.7),
    _sedan("Ford", "Fusion SE", 25000, [("V4", 0.8), ("V6", 0.2)], 28, 1.4),
    _truck("Ford", "F-150 XLT", 36000, [("V8", 0.7), ("V6", 0.3)], 16, 1.5),
    # --- Honda SUVs ---
    _suv("Honda", "CR-V EX", 27000,
         [("V4", 1.0)], [("AWD", 0.5), ("2WD", 0.5)], 26, 1.7),
    _suv("Honda", "CR-V LX", 25000,
         [("V4", 1.0)], [("AWD", 0.4), ("2WD", 0.6)], 26, 1.3),
    _suv("Honda", "Pilot EX-L", 37000,
         [("V6", 1.0)], [("4WD", 0.55), ("2WD", 0.45)], 19, 1.0),
    _sedan("Honda", "Accord EX", 27000, [("V4", 0.75), ("V6", 0.25)], 30, 1.6),
    _sedan("Honda", "Civic LX", 21000, [("V4", 1.0)], 33, 1.8),
    # --- Toyota SUVs ---
    _suv("Toyota", "RAV4 XLE", 27000,
         [("V4", 1.0)], [("AWD", 0.5), ("2WD", 0.5)], 26, 1.6),
    _suv("Toyota", "Highlander SE", 38000,
         [("V6", 0.85), ("V4", 0.15)], [("AWD", 0.55), ("2WD", 0.45)], 20, 1.1),
    _suv("Toyota", "4Runner SR5", 37000,
         [("V6", 1.0)], [("4WD", 0.75), ("2WD", 0.25)], 18, 0.9),
    _sedan("Toyota", "Camry LE", 24000, [("V4", 0.8), ("V6", 0.2)], 30, 1.8),
    _sedan("Toyota", "Corolla LE", 20000, [("V4", 1.0)], 33, 1.7),
    _truck("Toyota", "Tacoma SR5", 30000, [("V6", 0.7), ("V4", 0.3)], 19, 1.0),
    # --- Jeep SUVs (Table 1, last row) ---
    _suv("Jeep", "Wrangler Unlimited", 33000,
         [("V6", 0.8), ("V8", 0.2)], [("4WD", 1.0)], 17, 1.3),
    _suv("Jeep", "Compass Sport", 23000,
         [("V4", 1.0)], [("4WD", 0.5), ("2WD", 0.5)], 25, 1.0),
    _suv("Jeep", "Patriot Sport", 22000,
         [("V4", 1.0)], [("4WD", 0.5), ("2WD", 0.5)], 25, 1.0),
    _suv("Jeep", "Liberty Sport", 25000,
         [("V6", 1.0)], [("4WD", 0.55), ("2WD", 0.45)], 18, 1.0),
    _suv("Jeep", "Grand Cherokee Laredo", 37000,
         [("V6", 0.7), ("V8", 0.3)], [("4WD", 0.7), ("2WD", 0.3)], 17, 1.1),
    # --- Other makes: broaden the Make domain like a real listing site ---
    _suv("Nissan", "Rogue SV", 26000,
         [("V4", 1.0)], [("AWD", 0.5), ("2WD", 0.5)], 26, 1.2),
    _suv("Nissan", "Pathfinder S", 34000,
         [("V6", 1.0)], [("4WD", 0.55), ("2WD", 0.45)], 19, 0.8),
    _sedan("Nissan", "Altima S", 24000, [("V4", 0.85), ("V6", 0.15)], 30, 1.4),
    _suv("Hyundai", "Santa Fe GLS", 28000,
         [("V4", 0.5), ("V6", 0.5)], [("AWD", 0.45), ("2WD", 0.55)], 23, 0.9),
    _sedan("Hyundai", "Sonata GLS", 22000, [("V4", 1.0)], 31, 1.2),
    _suv("Kia", "Sorento LX", 26000,
         [("V4", 0.55), ("V6", 0.45)], [("AWD", 0.45), ("2WD", 0.55)], 23, 0.9),
    _sedan("Kia", "Optima LX", 21000, [("V4", 1.0)], 30, 1.0),
    _suv("GMC", "Acadia SLE", 35000,
         [("V6", 1.0)], [("AWD", 0.55), ("2WD", 0.45)], 19, 0.8),
    _truck("GMC", "Sierra 1500", 36000, [("V8", 0.8), ("V6", 0.2)], 16, 0.9),
    _suv("Dodge", "Durango SXT", 33000,
         [("V6", 0.7), ("V8", 0.3)], [("AWD", 0.5), ("2WD", 0.5)], 17, 0.7),
    _sedan("Dodge", "Charger SE", 28000, [("V6", 0.7), ("V8", 0.3)], 22, 0.8),
    _suv("Subaru", "Outback 2.5i", 27000,
         [("V4", 1.0)], [("AWD", 1.0)], 26, 1.0),
    _suv("Subaru", "Forester 2.5X", 25000,
         [("V4", 1.0)], [("AWD", 1.0)], 25, 1.0),
    _sedan("BMW", "328i", 38000, [("V6", 0.8), ("V4", 0.2)], 26, 0.7),
    _suv("BMW", "X5 xDrive35i", 56000,
         [("V6", 0.7), ("V8", 0.3)], [("AWD", 1.0)], 18, 0.5),
    _sedan("Mercedes-Benz", "C300", 40000, [("V6", 1.0)], 24, 0.6),
    _suv("Mercedes-Benz", "ML350", 52000,
         [("V6", 0.8), ("V8", 0.2)], [("AWD", 1.0)], 18, 0.4),
    _sedan("Volkswagen", "Jetta SE", 21000, [("V4", 1.0)], 30, 1.0),
    _sedan("Mazda", "Mazda3 i", 20000, [("V4", 1.0)], 31, 1.0),
    _suv("Mazda", "CX-9 Touring", 33000,
         [("V6", 1.0)], [("AWD", 0.5), ("2WD", 0.5)], 18, 0.6),
)

#: Exterior colors with listing-frequency weights.
_COLORS: Tuple[Tuple[str, float], ...] = (
    ("White", 0.21), ("Black", 0.19), ("Silver", 0.16), ("Gray", 0.15),
    ("Blue", 0.09), ("Red", 0.09), ("Brown", 0.04), ("Green", 0.03),
    ("Beige", 0.02), ("Orange", 0.02),
)

_CURRENT_YEAR = 2013  # the paper's data era (Table 1 shows 2010-2012 cars)
_MIN_YEAR = 2002


def usedcars_schema(queriable: Optional[Sequence[str]] = None) -> Schema:
    """The 11-attribute used-car schema.

    ``queriable`` restricts which attributes the front-end exposes; by
    default ``Engine`` is hidden, mirroring the paper's Limitation 2
    ("the number of cylinders ... is not available to Mary through her
    forms-based interface").
    """
    schema = Schema([
        Attribute("Make", AttrKind.CATEGORICAL, description="manufacturer"),
        Attribute("Model", AttrKind.CATEGORICAL, description="trim-level model"),
        Attribute("BodyType", AttrKind.CATEGORICAL, description="SUV/Sedan/Truck"),
        Attribute("Price", AttrKind.NUMERIC, description="asking price, USD"),
        Attribute("Mileage", AttrKind.NUMERIC, description="odometer, miles"),
        Attribute("Year", AttrKind.ORDINAL, description="model year"),
        Attribute("Engine", AttrKind.CATEGORICAL, queriable=False,
                  description="engine configuration (hidden attribute)"),
        Attribute("Drivetrain", AttrKind.CATEGORICAL,
                  description="2WD/4WD/AWD"),
        Attribute("Transmission", AttrKind.CATEGORICAL,
                  description="Automatic/Manual"),
        Attribute("Color", AttrKind.CATEGORICAL, description="exterior color"),
        Attribute("FuelEconomy", AttrKind.NUMERIC,
                  description="combined MPG"),
    ])
    if queriable is not None:
        schema = schema.with_queriable(queriable)
    return schema


def _weighted_choice(rng: np.random.Generator, options: Sequence[Tuple[str, float]]) -> str:
    values = [v for v, _ in options]
    weights = np.array([w for _, w in options], dtype=float)
    weights /= weights.sum()
    return values[int(rng.choice(len(values), p=weights))]


def generate_usedcars(
    n: int = 40_000,
    seed: int = 7,
    catalog: Sequence[CarModel] = CAR_CATALOG,
    queriable: Optional[Sequence[str]] = None,
) -> Table:
    """Generate the synthetic used-car table.

    Parameters
    ----------
    n:
        Number of listings (the paper uses 40,000).
    seed:
        RNG seed — generation is fully deterministic given (n, seed).
    catalog:
        Vehicle catalog; defaults to :data:`CAR_CATALOG`.
    queriable:
        Optional list of queriable attribute names (see
        :func:`usedcars_schema`).
    """
    rng = np.random.default_rng(seed)
    pop = np.array([m.popularity for m in catalog], dtype=float)
    pop /= pop.sum()
    model_idx = rng.choice(len(catalog), size=n, p=pop)

    # Each trim-level model is prominent for only a short production
    # window (the paper's Sec. 3.1.1 anecdote: "a specific model is
    # prominent in the database for only a short period of time", which
    # is why Model outranks Mileage when the pivot is Year).  Windows are
    # staggered deterministically across the catalog.
    span = _CURRENT_YEAR - _MIN_YEAR
    table1_makes = {"Chevrolet", "Ford", "Honda", "Toyota", "Jeep"}
    windows = []
    for i, m in enumerate(catalog):
        length = 2 + (i * 5) % 3  # 2..4 model years
        if m.body == "SUV" and m.make in table1_makes:
            # keep the Table 1 vehicles on the market in recent years so
            # the paper's running example (recent low-mileage SUVs from
            # these five makes) stays reproducible
            hi = _CURRENT_YEAR - i % 2
        else:
            hi = _CURRENT_YEAR - (i * 3) % (span - length)
        windows.append((hi - length + 1, hi))

    makes: List[str] = []
    models: List[str] = []
    bodies: List[str] = []
    prices = np.empty(n)
    mileages = np.empty(n)
    years = np.empty(n)
    engines: List[str] = []
    drivetrains: List[str] = []
    transmissions: List[str] = []
    colors: List[str] = []
    mpgs = np.empty(n)

    for i, mi in enumerate(model_idx):
        m = catalog[mi]
        makes.append(m.make)
        models.append(m.model)
        bodies.append(m.body)

        # Age skews young: used-listing sites are dominated by recent
        # cars — but the year must fall inside the model's window.
        lo_year, hi_year = windows[mi]
        age = min(
            _CURRENT_YEAR - _MIN_YEAR,
            int(rng.gamma(shape=2.0, scale=1.8)),
        )
        year = int(np.clip(_CURRENT_YEAR - age, lo_year, hi_year))
        age = _CURRENT_YEAR - year
        years[i] = year

        # Mileage ~ 8K-17K miles/year: drivers vary a lot, so mileage is a
        # noisy proxy for age (as in real listings).
        per_year = rng.normal(12_500, 4_500)
        mileage = max(500.0, age * per_year + rng.normal(0, 8_000) + 6_000)
        mileages[i] = round(mileage, -2)

        engine = _weighted_choice(rng, m.engines)
        engines.append(engine)
        drivetrain = _weighted_choice(rng, m.drivetrains)
        drivetrains.append(drivetrain)

        # Manual transmissions are rare and concentrated in small engines.
        p_manual = 0.12 if engine == "V4" else 0.04
        transmissions.append(
            "Manual" if rng.random() < p_manual else "Automatic"
        )
        colors.append(_weighted_choice(rng, _COLORS))

        # Price: exponential depreciation in age plus mileage penalty.
        engine_premium = {"V4": 0.0, "V6": 0.04, "V8": 0.09}[engine]
        drive_premium = {"2WD": 0.0, "AWD": 0.03, "4WD": 0.05}[drivetrain]
        value = (
            m.base_price
            * (1.0 + engine_premium + drive_premium)
            * (0.85 ** age)
            * (1.0 - min(0.25, mileage / 600_000.0))
        )
        prices[i] = max(1_500.0, round(value * rng.normal(1.0, 0.06), -2))

        # Fuel economy: model anchor, engine penalty, drivetrain penalty.
        mpg = (
            m.mpg_base
            - {"V4": 0.0, "V6": 1.5, "V8": 3.5}[engine]
            - {"2WD": 0.0, "AWD": 0.8, "4WD": 1.2}[drivetrain]
            + rng.normal(0, 0.8)
        )
        mpgs[i] = round(max(10.0, mpg), 1)

    schema = usedcars_schema(queriable)
    return Table.from_columns(schema, {
        "Make": makes,
        "Model": models,
        "BodyType": bodies,
        "Price": prices,
        "Mileage": mileages,
        "Year": years,
        "Engine": engines,
        "Drivetrain": drivetrains,
        "Transmission": transmissions,
        "Color": colors,
        "FuelEconomy": mpgs,
    })
