"""Synthetic mushroom dataset in the image of UCI Mushroom (8124 x 23).

The paper's user study (Sec. 6.1/6.2) runs on the UCI Mushroom dataset:
8124 tuples, 23 categorical attributes, unfamiliar to every subject.
The UCI file is not available offline, so we generate a table with the
same schema and — crucially — the same *kind* of conditional dependency
structure the three study tasks rely on:

* ``odor`` and ``spore-print-color`` are highly predictive of ``class``
  and of ``bruises`` (task 1, Simple Classifier, is well-posed: one or
  two attribute values separate ``bruises = true`` from ``false`` well);
* ``gill-color`` values ``brown`` and ``white`` co-occur with nearly the
  same distributions over other attributes, while ``buff`` and ``green``
  are distinctive (task 2, Most Similar Facet Value Pair, has an
  unambiguous answer);
* ``stalk-shape = enlarged`` with ``spore-print-color = chocolate``
  selects nearly the same tuples as a two-value selection over other
  attributes (``odor = foul`` with ``gill-size = broad``), so task 3,
  Alternative Search Condition, has a low-error solution.

The sampler is a hand-written Bayesian network evaluated ancestrally; it
is deterministic given the seed, so tests can assert the dependency
structure is present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.schema import AttrKind, Attribute, Schema
from repro.dataset.table import Table

__all__ = ["MUSHROOM_ATTRIBUTES", "mushroom_schema", "generate_mushroom"]


#: All 23 attribute names, UCI order (class first).
MUSHROOM_ATTRIBUTES: Tuple[str, ...] = (
    "class", "cap-shape", "cap-surface", "cap-color", "bruises", "odor",
    "gill-attachment", "gill-spacing", "gill-size", "gill-color",
    "stalk-shape", "stalk-root", "stalk-surface-above-ring",
    "stalk-surface-below-ring", "stalk-color-above-ring",
    "stalk-color-below-ring", "veil-type", "veil-color", "ring-number",
    "ring-type", "spore-print-color", "population", "habitat",
)


@dataclass(frozen=True)
class _Node:
    """One conditional distribution of the generating Bayesian network.

    ``cpt`` maps a tuple of parent values to a (value, weight) list;
    the key ``()`` is used when the node has no parents, and a key of
    ``None`` serves as the fallback row for unlisted parent combinations.
    """

    name: str
    parents: Tuple[str, ...]
    cpt: Mapping[Optional[Tuple[str, ...]], Sequence[Tuple[str, float]]]

    def sample(self, rng: np.random.Generator, assignment: Dict[str, str]) -> str:
        key = tuple(assignment[p] for p in self.parents)
        dist = self.cpt.get(key)
        if dist is None:
            dist = self.cpt[None]
        values = [v for v, _ in dist]
        weights = np.array([w for _, w in dist], dtype=float)
        weights /= weights.sum()
        return values[int(rng.choice(len(values), p=weights))]


def _network() -> Tuple[_Node, ...]:
    """The generating network, in ancestral (topological) order."""
    e, p = "edible", "poisonous"
    return (
        _Node("class", (), {(): [(e, 0.518), (p, 0.482)]}),
        # Odor is the famous near-perfect predictor of class.
        _Node("odor", ("class",), {
            (e,): [("none", 0.78), ("almond", 0.11), ("anise", 0.11)],
            (p,): [("foul", 0.55), ("none", 0.12), ("pungent", 0.07),
                   ("creosote", 0.05), ("fishy", 0.15), ("spicy", 0.05),
                   ("musty", 0.01)],
        }),
        # Bruising is strongly (not perfectly) tied to class & odor.
        _Node("bruises", ("class", "odor"), {
            (e, "none"): [("true", 0.55), ("false", 0.45)],
            (e, "almond"): [("true", 0.92), ("false", 0.08)],
            (e, "anise"): [("true", 0.92), ("false", 0.08)],
            (p, "foul"): [("true", 0.12), ("false", 0.88)],
            (p, "none"): [("true", 0.10), ("false", 0.90)],
            (p, "pungent"): [("true", 0.85), ("false", 0.15)],
            None: [("true", 0.08), ("false", 0.92)],
        }),
        # Spore print color depends on class and odor; chocolate clusters
        # with foul odor (this powers study task 3).
        _Node("spore-print-color", ("class", "odor"), {
            (p, "foul"): [("chocolate", 0.82), ("white", 0.12),
                          ("brown", 0.06)],
            (p, "pungent"): [("black", 0.45), ("brown", 0.45),
                             ("chocolate", 0.10)],
            (p, "none"): [("white", 0.75), ("green", 0.25)],
            (e, "none"): [("brown", 0.38), ("black", 0.36), ("white", 0.20),
                          ("purple", 0.03), ("yellow", 0.03)],
            (e, "almond"): [("brown", 0.42), ("black", 0.42),
                            ("purple", 0.16)],
            (e, "anise"): [("brown", 0.42), ("black", 0.42),
                           ("purple", 0.16)],
            None: [("white", 0.5), ("brown", 0.25), ("black", 0.25)],
        }),
        # Gill colors: brown and white are generated with near-identical
        # conditionals (task 2's "most similar pair"); buff is poison-heavy,
        # green is rare & poisonous.
        _Node("gill-color", ("class",), {
            (e,): [("brown", 0.26), ("white", 0.25), ("pink", 0.16),
                   ("gray", 0.13), ("black", 0.10), ("purple", 0.06),
                   ("chocolate", 0.04)],
            (p,): [("buff", 0.40), ("chocolate", 0.17), ("pink", 0.10),
                   ("white", 0.09), ("brown", 0.08), ("gray", 0.09),
                   ("green", 0.02), ("black", 0.05)],
        }),
        _Node("gill-size", ("class", "odor"), {
            (p, "foul"): [("broad", 0.72), ("narrow", 0.28)],
            (p, "none"): [("narrow", 0.80), ("broad", 0.20)],
            (e, "none"): [("broad", 0.72), ("narrow", 0.28)],
            None: [("broad", 0.6), ("narrow", 0.4)],
        }),
        # Stalk shape: enlarged co-occurs with foul odor / chocolate spores.
        _Node("stalk-shape", ("odor",), {
            ("foul",): [("enlarged", 0.80), ("tapering", 0.20)],
            ("none",): [("tapering", 0.62), ("enlarged", 0.38)],
            ("almond",): [("enlarged", 0.55), ("tapering", 0.45)],
            ("anise",): [("enlarged", 0.55), ("tapering", 0.45)],
            None: [("tapering", 0.65), ("enlarged", 0.35)],
        }),
        _Node("stalk-root", ("class",), {
            (e,): [("bulbous", 0.42), ("equal", 0.22), ("club", 0.20),
                   ("rooted", 0.08), ("missing", 0.08)],
            (p,): [("bulbous", 0.52), ("missing", 0.28), ("equal", 0.12),
                   ("club", 0.08)],
        }),
        _Node("ring-type", ("class", "odor"), {
            (p, "foul"): [("large", 0.62), ("evanescent", 0.28),
                          ("pendant", 0.10)],
            (e, "none"): [("pendant", 0.62), ("evanescent", 0.30),
                          ("flaring", 0.05), ("none", 0.03)],
            None: [("pendant", 0.5), ("evanescent", 0.4), ("none", 0.1)],
        }),
        _Node("ring-number", ("ring-type",), {
            ("none",): [("none", 1.0)],
            ("flaring",): [("two", 0.6), ("one", 0.4)],
            None: [("one", 0.87), ("two", 0.12), ("none", 0.01)],
        }),
        _Node("cap-shape", ("class",), {
            (e,): [("convex", 0.42), ("flat", 0.36), ("bell", 0.12),
                   ("knobbed", 0.08), ("sunken", 0.02)],
            (p,): [("convex", 0.48), ("flat", 0.38), ("knobbed", 0.12),
                   ("bell", 0.01), ("conical", 0.01)],
        }),
        _Node("cap-surface", ("class",), {
            (e,): [("fibrous", 0.38), ("smooth", 0.32), ("scaly", 0.30)],
            (p,): [("scaly", 0.48), ("smooth", 0.32), ("fibrous", 0.19),
                   ("grooves", 0.01)],
        }),
        _Node("cap-color", ("class",), {
            (e,): [("brown", 0.28), ("gray", 0.24), ("white", 0.14),
                   ("red", 0.12), ("yellow", 0.10), ("buff", 0.06),
                   ("pink", 0.03), ("cinnamon", 0.02), ("green", 0.01)],
            (p,): [("brown", 0.24), ("red", 0.21), ("yellow", 0.19),
                   ("gray", 0.15), ("white", 0.12), ("buff", 0.05),
                   ("pink", 0.03), ("purple", 0.01)],
        }),
        _Node("gill-attachment", (), {
            (): [("free", 0.974), ("attached", 0.026)],
        }),
        _Node("gill-spacing", ("class",), {
            (e,): [("close", 0.71), ("crowded", 0.29)],
            (p,): [("close", 0.94), ("crowded", 0.06)],
        }),
        _Node("stalk-surface-above-ring", ("class", "bruises"), {
            (e, "true"): [("smooth", 0.85), ("fibrous", 0.12),
                          ("silky", 0.03)],
            (e, "false"): [("smooth", 0.60), ("fibrous", 0.35),
                           ("silky", 0.05)],
            (p, "false"): [("silky", 0.62), ("smooth", 0.30),
                           ("fibrous", 0.08)],
            (p, "true"): [("smooth", 0.75), ("silky", 0.20),
                          ("fibrous", 0.05)],
        }),
        _Node("stalk-surface-below-ring", ("stalk-surface-above-ring",), {
            ("smooth",): [("smooth", 0.85), ("fibrous", 0.10),
                          ("silky", 0.04), ("scaly", 0.01)],
            ("silky",): [("silky", 0.88), ("smooth", 0.10),
                         ("fibrous", 0.02)],
            ("fibrous",): [("fibrous", 0.80), ("smooth", 0.18),
                           ("scaly", 0.02)],
            None: [("smooth", 0.6), ("fibrous", 0.3), ("silky", 0.1)],
        }),
        _Node("stalk-color-above-ring", ("class",), {
            (e,): [("white", 0.62), ("gray", 0.14), ("pink", 0.12),
                   ("orange", 0.06), ("brown", 0.06)],
            (p,): [("white", 0.40), ("pink", 0.22), ("brown", 0.18),
                   ("buff", 0.14), ("cinnamon", 0.04), ("yellow", 0.02)],
        }),
        _Node("stalk-color-below-ring", ("stalk-color-above-ring",), {
            None: [("white", 0.5), ("pink", 0.18), ("brown", 0.14),
                   ("gray", 0.10), ("buff", 0.08)],
            ("white",): [("white", 0.86), ("pink", 0.07), ("gray", 0.07)],
            ("pink",): [("pink", 0.80), ("white", 0.14), ("brown", 0.06)],
            ("brown",): [("brown", 0.78), ("white", 0.12), ("buff", 0.10)],
            ("gray",): [("gray", 0.82), ("white", 0.18)],
            ("buff",): [("buff", 0.84), ("brown", 0.16)],
        }),
        _Node("veil-type", (), {(): [("partial", 1.0)]}),
        _Node("veil-color", (), {
            (): [("white", 0.975), ("brown", 0.012), ("orange", 0.012),
                 ("yellow", 0.001)],
        }),
        _Node("population", ("class",), {
            (e,): [("several", 0.30), ("scattered", 0.25),
                   ("numerous", 0.14), ("solitary", 0.15),
                   ("abundant", 0.12), ("clustered", 0.04)],
            (p,): [("several", 0.52), ("solitary", 0.22),
                   ("scattered", 0.20), ("clustered", 0.06)],
        }),
        _Node("habitat", ("class",), {
            (e,): [("woods", 0.36), ("grasses", 0.33), ("meadows", 0.12),
                   ("paths", 0.10), ("urban", 0.04), ("waste", 0.04),
                   ("leaves", 0.01)],
            (p,): [("woods", 0.40), ("paths", 0.25), ("grasses", 0.17),
                   ("leaves", 0.10), ("urban", 0.06), ("meadows", 0.02)],
        }),
    )


def mushroom_schema(queriable: Optional[Sequence[str]] = None) -> Schema:
    """The 23-attribute all-categorical mushroom schema.

    All attributes are queriable by default; study task 3 hides the two
    given attributes per task instance instead of at schema level.
    """
    schema = Schema([
        Attribute(name, AttrKind.CATEGORICAL) for name in MUSHROOM_ATTRIBUTES
    ])
    if queriable is not None:
        schema = schema.with_queriable(queriable)
    return schema


def generate_mushroom(n: int = 8124, seed: int = 13) -> Table:
    """Generate the synthetic mushroom table (default UCI size, 8124).

    Deterministic given (n, seed); ancestral sampling of the network
    returned by :func:`_network`.
    """
    nodes = _network()
    rng = np.random.default_rng(seed)
    data: Dict[str, List[str]] = {node.name: [] for node in nodes}
    for _ in range(n):
        assignment: Dict[str, str] = {}
        for node in nodes:
            assignment[node.name] = node.sample(rng, assignment)
        for name, value in assignment.items():
            data[name].append(value)
    return Table.from_columns(mushroom_schema(), data)
