"""Dataset generators standing in for the paper's two real datasets.

* :func:`generate_usedcars` — synthetic Yahoo-style used-car listings
  (40,000 x 11 by default), with built-in conditional dependencies.
* :func:`generate_mushroom` — synthetic UCI-style mushroom records
  (8124 x 23), sampled from a hand-written Bayesian network.

Both are deterministic given their seed; see DESIGN.md section 3 for the
substitution rationale.
"""

from repro.dataset.generators.mushroom import (
    MUSHROOM_ATTRIBUTES,
    generate_mushroom,
    mushroom_schema,
)
from repro.dataset.generators.usedcars import (
    CAR_CATALOG,
    CarModel,
    generate_usedcars,
    usedcars_schema,
)

__all__ = [
    "CarModel",
    "CAR_CATALOG",
    "usedcars_schema",
    "generate_usedcars",
    "MUSHROOM_ATTRIBUTES",
    "mushroom_schema",
    "generate_mushroom",
]
