"""The in-memory column-store relation.

A :class:`Table` is the substrate everything else operates on: the
faceted engine computes digests over it, the CAD View builder clusters
its rows, and the query engine filters it with predicates.  Tables are
immutable; filtering produces new tables that share column storage via
numpy fancy indexing.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.column import Column
from repro.dataset.schema import AttrKind, Attribute, Schema
from repro.errors import (
    DataIngestError,
    SchemaError,
    UnknownAttributeError,
)

__all__ = ["Table"]


class Table:
    """An immutable relation: a :class:`Schema` plus equal-length columns.

    Build one from rows::

        table = Table.from_rows(schema, [{"Make": "Ford", "Price": 21000.0}, ...])

    or from columns::

        table = Table.from_columns(schema, {"Make": ["Ford", ...], "Price": [...]})
    """

    def __init__(self, schema: Schema, columns: Mapping[str, Column]):
        if set(columns) != set(schema.names):
            raise SchemaError(
                f"columns {sorted(columns)} do not match schema {list(schema.names)}"
            )
        lengths = {name: len(col) for name, col in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged columns: {lengths}")
        self.schema = schema
        self._columns: Dict[str, Column] = dict(columns)
        self._nrows = next(iter(lengths.values())) if lengths else 0
        # rows skipped at CSV ingestion under --max-bad-rows; empty for
        # every other construction path (and for derived tables)
        self.quarantined: Tuple[DataIngestError, ...] = ()

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Mapping]) -> "Table":
        """Build a table from an iterable of row mappings.

        Missing keys become missing values (``None``).
        """
        rows = list(rows)
        columns = {
            attr.name: Column.from_values(
                attr, (row.get(attr.name) for row in rows)
            )
            for attr in schema
        }
        return cls(schema, columns)

    @classmethod
    def from_columns(cls, schema: Schema, data: Mapping[str, Sequence]) -> "Table":
        """Build a table from a mapping of column name -> raw values."""
        schema.require(data.keys())
        missing = set(schema.names) - set(data)
        if missing:
            raise SchemaError(f"missing columns: {sorted(missing)}")
        columns = {
            attr.name: Column.from_values(attr, data[attr.name])
            for attr in schema
        }
        return cls(schema, columns)

    # -- protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return self._nrows

    def __getitem__(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise UnknownAttributeError(name, self.schema.names) from None

    def __repr__(self) -> str:
        return f"Table(rows={self._nrows}, attrs={list(self.schema.names)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.schema != other.schema or len(self) != len(other):
            return False
        return all(
            list(self._columns[n]) == list(other._columns[n])
            for n in self.schema.names
        )

    # -- row access ----------------------------------------------------------

    def row(self, i: int) -> Dict[str, object]:
        """Row ``i`` as a name -> decoded value dict."""
        if not 0 <= i < self._nrows:
            raise IndexError(f"row {i} out of range [0, {self._nrows})")
        return {name: self._columns[name][i] for name in self.schema.names}

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        """Iterate rows as dicts (mainly for small tables and tests)."""
        return (self.row(i) for i in range(self._nrows))

    # -- relational operations ---------------------------------------------

    def filter(self, mask: np.ndarray) -> "Table":
        """Rows where the boolean ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._nrows,):
            raise SchemaError(
                f"mask length {mask.shape} does not match table ({self._nrows},)"
            )
        return Table(
            self.schema,
            {n: c.mask(mask) for n, c in self._columns.items()},
        )

    def take(self, indices: Sequence[int]) -> "Table":
        """Rows at ``indices``, in the given order (may repeat)."""
        idx = np.asarray(indices, dtype=np.intp)
        return Table(
            self.schema,
            {n: c.take(idx) for n, c in self._columns.items()},
        )

    def project(self, names: Sequence[str]) -> "Table":
        """A table containing only ``names``, in the given order."""
        sub = self.schema.subset(names)
        return Table(sub, {n: self._columns[n] for n in sub.names})

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> "Table":
        """A uniform random sample of ``min(n, len(self))`` rows.

        This is Optimization 1 of the paper (Sec. 6.3): compute Compare
        Attributes and candidate IUnits on a 5K–10K sample.
        """
        if n >= self._nrows:
            return self
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(self._nrows, size=n, replace=False)
        return self.take(np.sort(idx))

    def head(self, n: int = 5) -> "Table":
        """The first ``n`` rows."""
        return self.take(np.arange(min(n, self._nrows)))

    def concat(self, other: "Table") -> "Table":
        """Rows of ``self`` followed by rows of ``other`` (same schema)."""
        if self.schema != other.schema:
            raise SchemaError("cannot concat tables with different schemas")
        columns = {}
        for attr in self.schema:
            a, b = self._columns[attr.name], other._columns[attr.name]
            if attr.is_categorical:
                cats = list(a.categories)
                seen = set(cats)
                for v in b.categories:
                    if v not in seen:
                        cats.append(v)
                        seen.add(v)
                a2, b2 = a.with_categories(cats), b.with_categories(cats)
                columns[attr.name] = Column(
                    attr, np.concatenate([a2.codes, b2.codes]), tuple(cats)
                )
            else:
                columns[attr.name] = Column(
                    attr, np.concatenate([a.numbers, b.numbers])
                )
        return Table(self.schema, columns)

    # -- summaries -------------------------------------------------------------

    def value_counts(self, name: str) -> dict:
        """Value -> count for one attribute (the facet digest ingredient)."""
        return self[name].value_counts()

    def distinct(self, name: str) -> Tuple:
        """Distinct non-missing values of an attribute."""
        return self[name].distinct_values()

    # -- CSV I/O -----------------------------------------------------------------

    def to_csv(self, path_or_buffer) -> None:
        """Write the table as CSV with a header row."""
        own = isinstance(path_or_buffer, (str, bytes))
        f = open(path_or_buffer, "w", newline="") if own else path_or_buffer
        try:
            writer = csv.writer(f)
            writer.writerow(self.schema.names)
            for row in self.iter_rows():
                writer.writerow(
                    ["" if row[n] is None else row[n] for n in self.schema.names]
                )
        finally:
            if own:
                f.close()

    @classmethod
    def from_csv(
        cls, path_or_buffer, schema: Schema, max_bad_rows: int = 0
    ) -> "Table":
        """Read a CSV with a header row into a table with ``schema``.

        Empty strings become missing values.  Every data row is
        validated against the schema before encoding: a short/long row
        or a non-numeric value in a numeric column raises
        :class:`~repro.errors.DataIngestError` carrying the source
        file, the 1-based data-row number (the header does not count)
        and the offending column — a 400k-row load that dies on row
        217,345 is debuggable without bisecting the file.

        ``max_bad_rows`` quarantines instead: up to that many bad rows
        are skipped and recorded (as the :class:`DataIngestError` each
        would have raised) on the returned table's ``quarantined``
        tuple; one bad row past the limit raises.
        """
        if max_bad_rows < 0:
            raise ValueError(
                f"max_bad_rows must be >= 0, got {max_bad_rows}"
            )
        own = isinstance(path_or_buffer, (str, bytes))
        f = open(path_or_buffer, newline="") if own else path_or_buffer
        path = (
            str(path_or_buffer) if own
            else str(getattr(f, "name", "") or "")
        )
        try:
            reader = csv.reader(f)
            header = next(reader, None)
            if header is None:
                raise SchemaError("CSV has no header row")
            schema.require(header)
            if set(header) != set(schema.names):
                raise SchemaError(
                    f"CSV header {header} does not cover schema {list(schema.names)}"
                )
            raw_rows = list(reader)
        finally:
            if own:
                f.close()
        numeric = {
            attr.name for attr in schema if not attr.is_categorical
        }
        rows: List[Dict[str, object]] = []
        quarantined: List[DataIngestError] = []

        def bad_row(error: DataIngestError) -> None:
            if len(quarantined) >= max_bad_rows:
                raise error
            quarantined.append(error)

        for rownum, raw in enumerate(raw_rows, start=1):
            if len(raw) != len(header):
                bad_row(DataIngestError(
                    f"row has {len(raw)} field(s), expected {len(header)}",
                    path=path, row=rownum,
                ))
                continue
            row: Dict[str, object] = {}
            ok = True
            for name, value in zip(header, raw):
                if value == "":
                    row[name] = None
                    continue
                if name in numeric:
                    try:
                        float(value)
                    except ValueError:
                        bad_row(DataIngestError(
                            f"non-numeric value {value!r} in numeric "
                            f"attribute",
                            path=path, row=rownum, column=name,
                        ))
                        ok = False
                        break
                row[name] = value
            if ok:
                rows.append(row)
        table = cls.from_rows(schema, rows)
        table.quarantined = tuple(quarantined)
        return table

    def to_csv_string(self) -> str:
        """The CSV serialization as a string (round-trips via from_csv)."""
        buf = io.StringIO()
        self.to_csv(buf)
        return buf.getvalue()
