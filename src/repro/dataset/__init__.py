"""Relational substrate: schemas, typed columns, and the column-store table.

This package is the "traditional relational database" of the paper's
Example 1 — the thing that can evaluate queries but by itself gives users
no help in gaining familiarity with the data.  Everything else in the
library (faceted navigation, CAD Views) is built on top of it.
"""

from repro.dataset.column import Column
from repro.dataset.schema import AttrKind, Attribute, Schema
from repro.dataset.table import Table

__all__ = ["AttrKind", "Attribute", "Schema", "Column", "Table"]
