"""TPFacet: the two-phased faceted interface with the CAD View (Sec. 5).

TPFacet modifies a basic faceted interface three ways (paper list):

(i)   every queriable attribute is selectable as the Pivot Attribute;
(ii)  clicking an IUnit highlights all similar IUnits;
(iii) clicking a pivot value in the CAD View reorders the rows by
      decreasing similarity to it.

At any moment the interface shows either the results panel or the CAD
View; the user toggles between the *query revision* phase (CAD View)
and the *result set* phase (results panel).  A :class:`TPFacetSession`
extends :class:`FacetSession` with that machinery and logs the same
operation stream, so the study's cost model can price both interfaces
uniformly.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.builder import CADViewBuilder
from repro.core.cadview import CADView, CADViewConfig, IUnitRef
from repro.errors import CADViewError, QueryError
from repro.facets.engine import FacetedEngine, FacetSession

__all__ = ["Phase", "TPFacetSession"]


class Phase(enum.Enum):
    """Which panel is on screen."""

    RESULTS = "results"
    CAD_VIEW = "cad_view"


class TPFacetSession(FacetSession):
    """A faceted session with the CAD View integrated.

    The CAD View is rebuilt lazily: changing selections or the pivot
    invalidates it; reading it builds it for the current result set.
    """

    def __init__(
        self,
        engine: FacetedEngine,
        config: CADViewConfig = CADViewConfig(),
    ):
        super().__init__(engine)
        self.config = config
        self.phase = Phase.RESULTS
        self._pivot: Optional[str] = None
        self._pinned: Tuple[str, ...] = ()
        self._cad: Optional[CADView] = None

    # -- phase & pivot ---------------------------------------------------

    def toggle_phase(self) -> Phase:
        """Switch between the results panel and the CAD View."""
        self.phase = (
            Phase.CAD_VIEW if self.phase is Phase.RESULTS else Phase.RESULTS
        )
        self.operations.append(("phase", self.phase.value))
        return self.phase

    def set_pivot(self, attribute: str, pinned: Sequence[str] = ()) -> None:
        """Choose the Pivot Attribute (the radio button of Sec. 5)."""
        if attribute not in self.engine.queriable:
            raise QueryError(
                f"{attribute!r} is not selectable as pivot "
                f"(queriable: {list(self.engine.queriable)})"
            )
        self._pivot = attribute
        self._pinned = tuple(pinned)
        self._cad = None
        self.operations.append(("pivot", attribute))

    @property
    def pivot(self) -> Optional[str]:
        """The currently selected Pivot Attribute, if any."""
        return self._pivot

    # -- selections invalidate the view -----------------------------------

    def toggle(self, attribute: str, value: str) -> None:
        super().toggle(attribute, value)
        self._cad = None

    def clear(self, attribute: Optional[str] = None) -> None:
        super().clear(attribute)
        self._cad = None

    # -- the CAD View ------------------------------------------------------

    def cadview(self) -> CADView:
        """The CAD View of the current result set (built on demand)."""
        if self._pivot is None:
            raise CADViewError("set_pivot must be called first")
        if self._cad is None:
            result = self.engine.result(self.selections)
            if len(result) == 0:
                raise CADViewError(
                    "current selections produce an empty result set"
                )
            builder = CADViewBuilder(self.config)
            # attributes the user pinned to a single facet value carry no
            # contrast; exclude them from auto-selection
            exclude = [
                a for a, vals in self.selections.items() if len(vals) == 1
            ]
            self._cad = builder.build(
                result,
                pivot=self._pivot,
                pinned=self._pinned,
                name="tpfacet",
                exclude=exclude,
            )
            self.phase = Phase.CAD_VIEW
        self.operations.append(("cadview",))
        return self._cad

    def click_iunit(
        self, pivot_value: str, iunit_id: int,
        threshold: Optional[float] = None,
    ) -> List[Tuple[IUnitRef, float]]:
        """Modification (ii): highlight IUnits similar to the clicked one."""
        cad = self._require_cad()
        self.operations.append(("click_iunit", pivot_value, str(iunit_id)))
        return cad.similar_iunits(pivot_value, iunit_id, threshold)

    def click_pivot_value(self, pivot_value: str) -> CADView:
        """Modification (iii): reorder rows by similarity to the value."""
        cad = self._require_cad()
        self._cad = cad.reorder_by_similarity(pivot_value)
        self.operations.append(("click_pivot_value", pivot_value))
        return self._cad

    def _require_cad(self) -> CADView:
        if self._cad is None:
            raise CADViewError(
                "no CAD View on screen; call cadview() first"
            )
        return self._cad
