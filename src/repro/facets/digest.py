"""Faceted summary digests (the baseline interface's data summary).

A faceted interface's query panel shows, for every queriable attribute,
the attribute values occurring in the current result set with their
tuple counts (paper Sec. 5: "This summary digest typically comprises
all the attribute values that appear in the selected items, grouped by
their corresponding attribute.  The tuple count for each attribute
value may also be included.").

The user study compares digests with cosine similarity (Sec. 6.2.2
gives Solr users "a cosine-similarity based distance metric to compare
the summary digests"; Sec. 6.2.3 scores task 3 by "the similarity
between their faceted summary digest"), so digests know how to measure
distance to one another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import QueryError

__all__ = ["Digest"]


@dataclass(frozen=True)
class Digest:
    """Per-attribute value counts of one result set."""

    counts: Mapping[str, Mapping[str, int]]
    total: int

    def attributes(self) -> Tuple[str, ...]:
        """The attributes the digest covers."""
        return tuple(self.counts)

    def values(self, attribute: str) -> Dict[str, int]:
        """Value -> count for one attribute."""
        try:
            return dict(self.counts[attribute])
        except KeyError:
            raise QueryError(
                f"attribute {attribute!r} not in digest "
                f"(have {list(self.counts)})"
            ) from None

    # -- similarity ---------------------------------------------------

    def attribute_cosine(self, other: "Digest", attribute: str) -> float:
        """Cosine similarity of one attribute's count vectors."""
        a = self.values(attribute)
        b = other.values(attribute)
        keys = sorted(set(a) | set(b))
        if not keys:
            return 1.0  # both empty: identical
        va = np.array([a.get(k, 0) for k in keys], dtype=float)
        vb = np.array([b.get(k, 0) for k in keys], dtype=float)
        na, nb = np.linalg.norm(va), np.linalg.norm(vb)
        if na == 0 and nb == 0:
            return 1.0
        if na == 0 or nb == 0:
            return 0.0
        return float(np.dot(va, vb) / (na * nb))

    def cosine_similarity(self, other: "Digest") -> float:
        """Mean per-attribute cosine similarity over shared attributes."""
        shared = [a for a in self.counts if a in other.counts]
        if not shared:
            raise QueryError("digests share no attributes")
        return float(
            np.mean([self.attribute_cosine(other, a) for a in shared])
        )

    def distance(self, other: "Digest") -> float:
        """``1 - cosine_similarity`` — the study's retrieval-error metric."""
        return 1.0 - self.cosine_similarity(other)
