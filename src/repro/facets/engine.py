"""The faceted navigation engine — our Apache Solr stand-in (Sec. 5/6).

A :class:`FacetedEngine` wraps a table and exposes Solr-style faceting:
for any selection state it computes the result set and the summary
digest (per-attribute value counts).  Numeric attributes facet over
fixed ranges computed once from the full table, like a configured Solr
range facet.

A :class:`FacetSession` holds the interactive state: per-attribute sets
of selected facet values.  Values within one attribute OR together;
attributes AND together — standard faceted-navigation semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dataset.table import Table
from repro.discretize.discretizer import DiscretizedView, Discretizer
from repro.errors import QueryError
from repro.facets.digest import Digest
from repro.obs import work
from repro.obs.metrics import registry
from repro.query.predicates import And, Or, Predicate, TruePred

__all__ = ["FacetedEngine", "FacetSession"]


class FacetedEngine:
    """Facet counts and selection evaluation over one table."""

    def __init__(
        self,
        table: Table,
        queriable: Optional[Sequence[str]] = None,
        nbins: int = 6,
        strategy: str = "width",
    ):
        self.table = table
        if queriable is None:
            queriable = table.schema.queriable_names
        else:
            table.schema.require(queriable)
        self.queriable: Tuple[str, ...] = tuple(queriable)
        # fixed facet domains from the full table (Solr-style config)
        self._view: DiscretizedView = Discretizer(
            strategy=strategy, nbins=nbins
        ).fit(table, self.queriable)

    # -- facet metadata -------------------------------------------------

    def facet_values(self, attribute: str) -> Tuple[str, ...]:
        """All facet values (labels) of one queriable attribute."""
        self._check(attribute)
        return self._view.labels(attribute)

    def predicate_for(self, attribute: str, value: str) -> Predicate:
        """The predicate selecting one facet value."""
        self._check(attribute)
        code = self._view.code_of(attribute, value)
        if code < 0:
            raise QueryError(
                f"{value!r} is not a facet value of {attribute!r} "
                f"(have {list(self._view.labels(attribute))})"
            )
        return self._view.predicate_for(attribute, code)

    def selection_predicate(
        self, selections: Dict[str, Set[str]]
    ) -> Predicate:
        """AND over attributes of OR over each attribute's values."""
        parts: List[Predicate] = []
        for attribute, values in selections.items():
            if not values:
                continue
            ors = [self.predicate_for(attribute, v) for v in sorted(values)]
            parts.append(ors[0] if len(ors) == 1 else Or(ors))
        return And(parts) if parts else TruePred()

    # -- evaluation -----------------------------------------------------------

    def result(self, selections: Dict[str, Set[str]]) -> Table:
        """The result set of a selection state."""
        pred = self.selection_predicate(selections)
        registry().counter("facets.results").inc()
        work.add("work.facets.rows_scanned", len(self.table))
        return self.table.filter(pred.mask(self.table))

    def digest_for_predicate(self, predicate: Predicate) -> Digest:
        """The summary digest of an arbitrary predicate's result set.

        The study's task-3 scoring compares the digest of the hidden
        target selection with the digest of a user's alternative.
        """
        mask = predicate.mask(self.table)
        registry().counter("facets.digests").inc()
        work.add("work.facets.rows_scanned", len(self.table))
        restricted = self._view.restrict(mask)
        counts = {a: restricted.value_counts(a) for a in self.queriable}
        return Digest(counts, int(mask.sum()))

    def digest(self, selections: Dict[str, Set[str]]) -> Digest:
        """The summary digest of a selection state (one pass)."""
        return self.digest_for_predicate(
            self.selection_predicate(selections)
        )

    def _check(self, attribute: str) -> None:
        if attribute not in self.queriable:
            raise QueryError(
                f"{attribute!r} is not a queriable facet "
                f"(have {list(self.queriable)})"
            )


class FacetSession:
    """One user's interactive faceted-navigation state.

    Tracks selected facet values per attribute and counts interface
    operations (the study's cost model charges per operation).
    """

    def __init__(self, engine: FacetedEngine):
        self.engine = engine
        self.selections: Dict[str, Set[str]] = {}
        self.operations: List[Tuple[str, ...]] = []

    # -- interaction -----------------------------------------------------

    def toggle(self, attribute: str, value: str) -> None:
        """Select/deselect one facet value (one click)."""
        self.engine.predicate_for(attribute, value)  # validates
        bucket = self.selections.setdefault(attribute, set())
        if value in bucket:
            bucket.remove(value)
            if not bucket:
                del self.selections[attribute]
        else:
            bucket.add(value)
        self.operations.append(("toggle", attribute, value))

    def clear(self, attribute: Optional[str] = None) -> None:
        """Clear one attribute's selections, or everything."""
        if attribute is None:
            self.selections = {}
        else:
            self.selections.pop(attribute, None)
        self.operations.append(("clear", attribute or "*"))

    # -- observation ------------------------------------------------------

    def digest(self) -> Digest:
        """Read the query panel (one digest-inspection operation)."""
        self.operations.append(("digest",))
        return self.engine.digest(self.selections)

    def result(self) -> Table:
        """Open the results panel."""
        self.operations.append(("result",))
        return self.engine.result(self.selections)

    def count(self) -> int:
        """The result-count readout (cheap glance)."""
        self.operations.append(("count",))
        return len(self.engine.result(self.selections))

    @property
    def operation_count(self) -> int:
        """Number of interface operations performed so far."""
        return len(self.operations)
