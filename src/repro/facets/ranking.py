"""Facet ordering: which facets deserve the limited panel space.

A faceted interface can show only a handful of attribute panels at a
time.  This module ranks the queriable attributes for the *current*
result set, combining the two signals interface research uses:

* coverage — what fraction of the current result carries a value;
* balance — the entropy of the value distribution, normalized by the
  log of the displayed value count (a facet where one value holds 99%
  of the results cannot discriminate anything).

The score is coverage x normalized entropy, so already-pinned
single-value facets (entropy 0 in the filtered result) naturally sink
to the bottom — the same effect the CAD builder gets via its relevance
gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.facets.engine import FacetedEngine

__all__ = ["FacetRank", "rank_facets"]


@dataclass(frozen=True)
class FacetRank:
    """One attribute's display score for the current result."""

    attribute: str
    score: float
    coverage: float
    entropy: float          # bits
    n_values: int


def rank_facets(
    engine: FacetedEngine,
    selections: Optional[Dict[str, Set[str]]] = None,
    max_values: int = 50,
) -> List[FacetRank]:
    """Rank queriable facets for the current selection state.

    Attributes with more than ``max_values`` distinct values in the
    result are penalized (their normalization uses ``max_values``),
    matching interfaces that truncate long facet lists.
    """
    selections = selections or {}
    digest = engine.digest(selections)
    total = max(digest.total, 1)
    ranks: List[FacetRank] = []
    for attribute in engine.queriable:
        counts = np.array(
            list(digest.values(attribute).values()), dtype=float
        )
        covered = float(counts.sum())
        coverage = covered / total
        if counts.size == 0 or covered == 0:
            ranks.append(FacetRank(attribute, 0.0, 0.0, 0.0, 0))
            continue
        p = counts / covered
        entropy = float(-(p * np.log2(p)).sum())
        denom = np.log2(max(2, min(counts.size, max_values)))
        over_cap_penalty = (
            1.0 if counts.size <= max_values else max_values / counts.size
        )
        score = coverage * (entropy / denom) * over_cap_penalty
        ranks.append(
            FacetRank(attribute, score, coverage, entropy, counts.size)
        )
    ranks.sort(key=lambda r: (-r.score, r.attribute))
    return ranks
