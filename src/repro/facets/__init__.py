"""Faceted navigation: the Solr-like baseline engine, digests, TPFacet."""

from repro.facets.digest import Digest
from repro.facets.engine import FacetedEngine, FacetSession
from repro.facets.ranking import FacetRank, rank_facets
from repro.facets.tpfacet import Phase, TPFacetSession

__all__ = [
    "Digest",
    "FacetedEngine",
    "FacetSession",
    "Phase",
    "TPFacetSession",
    "FacetRank", "rank_facets",
]
