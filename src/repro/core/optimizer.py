"""The Sec. 6.3 optimizations, packaged as configuration policy.

The paper's three optimizations:

1. **Sampling** — compute Compare Attributes (and optionally the
   clusters) on a 5K–10K uniform sample; the top-attribute ranking is
   stable under sampling and the cost drops from ~1.7 s to 20–50 ms.
2. **Varying generated IUnits** — generate fewer candidate clusters
   (``l``) while the result set is broad; raise ``l`` as the user
   narrows down and ranking precision starts to matter.
3. **Fewer Compare Attributes** — the clustering cost grows with the
   number of attributes interacting, and the display can only show a
   handful anyway.

:func:`recommended_config` turns a base configuration into the
optimized configuration for a given result size, reproducing the
"<500 ms at 40K tuples" headline; :func:`optimization_ladder` yields
the (name, config) steps the E-OPT bench sweeps.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.cadview import CADViewConfig

__all__ = ["recommended_config", "optimization_ladder"]

#: Sample cap suggested by the paper ("a small random sample of size
#: 5K-10K ... almost the same set" of top attributes).
FS_SAMPLE_CAP = 8_000
CLUSTER_SAMPLE_CAP = 10_000


def recommended_config(
    base: CADViewConfig, result_size: int
) -> CADViewConfig:
    """All three optimizations applied, scaled to ``result_size``.

    Small result sets (the end of an exploration) get the exact,
    richer computation; large ones (the broad early stage, where the
    user most needs interactive latency) get sampling and a smaller
    candidate pool.
    """
    if result_size <= FS_SAMPLE_CAP:
        return base.with_(adaptive_l=True)
    return base.with_(
        fs_sample=FS_SAMPLE_CAP,
        cluster_sample=CLUSTER_SAMPLE_CAP,
        adaptive_l=True,
    )


def optimization_ladder(
    base: CADViewConfig,
) -> Iterator[Tuple[str, CADViewConfig]]:
    """The E-OPT bench's steps, from naive to fully optimized."""
    yield "naive", base
    yield "fs_sampling", base.with_(fs_sample=FS_SAMPLE_CAP)
    yield (
        "fs+cluster_sampling",
        base.with_(fs_sample=FS_SAMPLE_CAP, cluster_sample=CLUSTER_SAMPLE_CAP),
    )
    yield (
        "all",
        base.with_(
            fs_sample=FS_SAMPLE_CAP,
            cluster_sample=CLUSTER_SAMPLE_CAP,
            adaptive_l=True,
        ),
    )
