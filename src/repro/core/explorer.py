"""DBExplorer: the statement-level facade tying everything together.

Executes the paper's SQL dialect end-to-end: ordinary SELECTs through
the query engine, ``CREATE CADVIEW`` through the builder (with the
statement's LIMIT COLUMNS / IUNITS / ORDER BY honored), and the two
in-view search statements against the named-view registry.

>>> dbx = DBExplorer()
>>> dbx.register("UsedCars", cars)
>>> cad = dbx.execute('''CREATE CADVIEW CompareMakes AS
...     SET pivot = Make SELECT Price FROM UsedCars
...     WHERE BodyType = SUV LIMIT COLUMNS 5 IUNITS 3''')
>>> hits = dbx.execute(
...     "HIGHLIGHT SIMILAR IUNITS IN CompareMakes "
...     "WHERE SIMILARITY(Chevrolet, 3) > 3.5")
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.builder import CADViewBuilder
from repro.core.cadview import CADView, CADViewConfig, IUnitRef
from repro.core.render import render_cadview
from repro.dataset.table import Table
from repro.errors import (
    AnalysisError,
    BudgetExceededError,
    CADViewError,
    ConvergenceError,
    OverloadedError,
    ParseError,
    QueryCancelledError,
    QueryError,
)
from repro.obs import work
from repro.obs.export import render_trace
from repro.obs.tracer import Tracer
from repro.obs.worklog import (
    NO_WORKLOG,
    WorkLogWriter,
    statement_kind,
)
from repro.robustness import (
    Budget,
    BuildReport,
    CancelToken,
    FaultInjector,
)
from repro.serve.registry import ViewRegistry
from repro.iunits.iunit import IUnit
from repro.query.ast import (
    CreateCadViewStatement,
    DescribeStatement,
    DropCadViewStatement,
    ExplainStatement,
    HighlightSimilarStatement,
    OrderKey,
    ReorderRowsStatement,
    SelectStatement,
    ShowCadViewsStatement,
    Statement,
)
from repro.query.analyzer import Analyzer, AnalyzerLimits
from repro.query.diagnostics import AnalysisReport
from repro.query.engine import QueryEngine
from repro.query.parser import parse

__all__ = ["DBExplorer", "Session"]

ExecuteResult = Union[str, Table, CADView, List[Tuple[IUnitRef, float]]]

DEFAULT_SESSION = "default"


@dataclass
class Session:
    """Per-session execution state: what one logical user last did.

    Tables and named views are shared across sessions (the catalog);
    the *results of the most recent statement* — the build report and
    the analyzer report — are per-session, so concurrent sessions never
    clobber each other's ``last_report``.
    """

    name: str = DEFAULT_SESSION
    last_report: Optional[BuildReport] = None
    last_analysis: Optional[AnalysisReport] = None
    last_work: Optional[Dict[str, int]] = None
    statements: int = 0


@dataclass
class _ExecContext:
    """Per-call overrides threaded through one ``execute()``."""

    session: Session
    cancel: Optional[CancelToken] = None
    budget: Optional[Budget] = field(default=None)
    faults: Optional[FaultInjector] = None
    # sentinel handling: budget=None means "no override" (use the
    # explorer default); an explicit Budget overrides it — the serving
    # layer passes a degraded budget while a breaker is open
    budget_set: bool = False


class DBExplorer:
    """Register tables, run statements, keep named CAD Views.

    ``budget`` bounds every ``CREATE CADVIEW`` this instance executes
    (wall-clock deadline, row caps, retry counts); ``faults`` injects
    deterministic failures for testing.  Defaults: unbudgeted, no
    faults — and ``faults`` falls back to the ``REPRO_FAULTS``
    environment variable so a deployment can smoke-test its degradation
    paths without code changes.
    """

    def __init__(
        self,
        config: CADViewConfig = CADViewConfig(),
        budget: Optional[Budget] = None,
        faults: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        analyzer_limits: Optional[AnalyzerLimits] = None,
        worklog: Optional[WorkLogWriter] = None,
    ):
        self.engine = QueryEngine()
        self.config = config
        self.budget = budget
        self.faults = faults if faults is not None else (
            FaultInjector.from_env()
        )
        self.tracer = tracer
        self.analyzer_limits = (
            analyzer_limits if analyzer_limits is not None
            else AnalyzerLimits()
        )
        # like faults: the REPRO_WORKLOG env var enables capture without
        # code changes; an explicit writer (or NO_WORKLOG) overrides it
        self.worklog = worklog if worklog is not None else (
            WorkLogWriter.from_env() or NO_WORKLOG
        )
        self._views = ViewRegistry()
        self._sessions: Dict[str, Session] = {
            DEFAULT_SESSION: Session(DEFAULT_SESSION)
        }
        self._sessions_lock = threading.Lock()

    # -- sessions ----------------------------------------------------------

    def session(self, name: str = DEFAULT_SESSION) -> Session:
        """Get or create the named :class:`Session` (thread-safe)."""
        with self._sessions_lock:
            sess = self._sessions.get(name)
            if sess is None:
                sess = self._sessions[name] = Session(name)
            return sess

    def _resolve_session(
        self, session: Optional[Union[str, Session]]
    ) -> Session:
        if session is None:
            return self._sessions[DEFAULT_SESSION]
        if isinstance(session, Session):
            return session
        return self.session(session)

    @property
    def last_report(self) -> Optional[BuildReport]:
        """The most recent CADVIEW build report (default session)."""
        return self._sessions[DEFAULT_SESSION].last_report

    # -- catalog -----------------------------------------------------------

    def register(self, name: str, table: Table) -> None:
        """Register a table for FROM clauses."""
        self.engine.register(name, table)

    def view(self, name: str) -> CADView:
        """Look up a named CAD View created earlier."""
        return self._views.get_view(name)

    @property
    def views(self) -> ViewRegistry:
        """The copy-on-write named-view catalog (shared by sessions)."""
        return self._views

    # -- execution -------------------------------------------------------------

    def execute(
        self,
        sql: str,
        *,
        session: Optional[Union[str, Session]] = None,
        cancel: Optional[CancelToken] = None,
        budget: Optional[Budget] = None,
        faults: Optional[FaultInjector] = None,
    ) -> ExecuteResult:
        """Parse, analyze and run one statement.

        The semantic analyzer (:mod:`repro.query.analyzer`) gates every
        statement before anything executes: ERROR-severity diagnostics
        raise :class:`~repro.errors.AnalysisError` without touching the
        engine or builder; warnings are kept on :attr:`last_analysis`
        (and, for CADVIEW builds, attached to the build report and the
        trace).  Plain ``EXPLAIN`` is exempt — describing a plan is safe
        and useful even for a statement the analyzer would reject.

        When a workload log is attached (the ``worklog`` constructor
        argument or ``REPRO_WORKLOG``), every call appends one record —
        including statements rejected by the parser or the analyzer, so
        a replayed session fails exactly where the original did.

        The keyword-only arguments are the serving layer's hooks — all
        optional and inert by default:

        ``session``
            The :class:`Session` (or its name) whose ``last_report`` /
            ``last_analysis`` this statement updates; ``None`` uses the
            shared default session (single-user behavior).
        ``cancel``
            A :class:`~repro.robustness.CancelToken` checked at every
            budget checkpoint of a CADVIEW build.
        ``budget`` / ``faults``
            Per-call overrides of the explorer-level defaults (the
            executor passes a degraded budget while a circuit breaker
            is open, and a forked injector per admitted statement).
        """
        sess = self._resolve_session(session)
        ctx = _ExecContext(
            sess, cancel=cancel, budget=budget, faults=faults,
            budget_set=budget is not None,
        )
        start = time.perf_counter()
        report_before = sess.last_report
        stmt = None
        # the deterministic work counters for this statement accumulate
        # in a context-local scope (concurrent sessions on executor
        # threads each get their own), and roll up onto the statement's
        # tracer spans for EXPLAIN ANALYZE
        with work.track(self.tracer) as counters:
            try:
                stmt = parse(sql)
                result = self._execute(stmt, sql, ctx)
            except BaseException as exc:
                sess.last_work = counters.as_dict()
                self._log_statement(
                    sql, stmt, start, report_before, ctx, error=exc
                )
                raise
            sess.last_work = counters.as_dict()
        self._log_statement(
            sql, stmt, start, report_before, ctx, result=result
        )
        return result

    def _execute(
        self, stmt: Statement, sql: str, ctx: _ExecContext
    ) -> ExecuteResult:
        """The analyzer gate and dispatch behind :meth:`execute`."""
        sess = ctx.session
        sess.last_analysis = None
        sess.statements += 1
        plain_explain = (
            isinstance(stmt, ExplainStatement)
            and not stmt.analyze and not stmt.check
        )
        if not plain_explain:
            report = self.analyze(stmt, text=sql)
            if not report.ok:
                raise AnalysisError(report)
            sess.last_analysis = report
            if isinstance(stmt, ExplainStatement) and stmt.check:
                return report.render()
        return self._dispatch(stmt, ctx)

    # -- workload logging ---------------------------------------------------

    def _log_statement(
        self,
        sql: str,
        stmt: Optional[Statement],
        start_s: float,
        report_before: Optional[BuildReport],
        ctx: _ExecContext,
        result: Optional[ExecuteResult] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Append one statement record to the attached workload log."""
        if not self.worklog.enabled:
            return
        elapsed_ms = (time.perf_counter() - start_s) * 1e3
        # only a build that ran during THIS statement contributes its
        # phase timings/degradations (identity check: every build makes
        # a fresh BuildReport)
        report = ctx.session.last_report
        if report is report_before:
            report = None
        phases_ms = rows_in = pivot = None
        degradations: List[str] = []
        if report is not None:
            if report.profile is not None:
                phases_ms = {
                    "compare_attrs": report.profile.compare_attrs_s * 1e3,
                    "iunits": report.profile.iunits_s * 1e3,
                    "others": report.profile.others_s * 1e3,
                }
            degradations = [str(d) for d in report.degradations]
            if report.trace is not None:
                rows = report.trace.attrs.get("rows_in")
                rows_in = int(rows) if rows is not None else None
        if isinstance(stmt, CreateCadViewStatement):
            pivot = stmt.pivot
        analysis = ctx.session.last_analysis
        warnings = (
            [str(d) for d in analysis.warnings]
            if analysis is not None else []
        )
        self.worklog.statement(
            sql,
            statement_kind(stmt),
            _statement_status(error),
            elapsed_ms,
            rows_in=rows_in,
            rows_out=_result_rows(result),
            pivot=pivot,
            phases_ms=phases_ms,
            degradations=degradations,
            analysis_warnings=warnings,
            error=(
                f"{type(error).__name__}: {error}"
                if error is not None else None
            ),
            session=ctx.session.name,
            work=ctx.session.last_work,
        )

    def analyze(
        self, stmt_or_sql: Union[str, Statement], text: str = ""
    ) -> AnalysisReport:
        """Run the semantic analyzer without executing anything.

        Accepts either SQL text or an already-parsed statement; checks
        it against the registered tables and CAD Views and returns the
        full :class:`~repro.query.diagnostics.AnalysisReport`.
        """
        if isinstance(stmt_or_sql, str):
            text = stmt_or_sql
            stmt = parse(stmt_or_sql)
        else:
            stmt = stmt_or_sql
        analyzer = Analyzer(
            engine=self.engine, views=self._views,
            limits=self.analyzer_limits,
        )
        return analyzer.analyze(stmt, text=text)

    @property
    def last_analysis(self) -> Optional[AnalysisReport]:
        """The analyzer report of the most recent gated ``execute``."""
        return self._sessions[DEFAULT_SESSION].last_analysis

    def _dispatch(
        self, stmt: Statement, ctx: Optional[_ExecContext] = None
    ) -> ExecuteResult:
        ctx = ctx if ctx is not None else _ExecContext(
            self._sessions[DEFAULT_SESSION]
        )
        if isinstance(stmt, ExplainStatement):
            return self._explain(stmt, ctx)
        if isinstance(stmt, SelectStatement):
            return self._select(stmt)
        if isinstance(stmt, CreateCadViewStatement):
            return self._create_cadview(stmt, ctx=ctx)
        if isinstance(stmt, HighlightSimilarStatement):
            view = self.view(stmt.view)
            return view.similar_iunits(
                stmt.pivot_value, stmt.iunit_id, stmt.threshold
            )
        if isinstance(stmt, ReorderRowsStatement):
            view = self.view(stmt.view)
            reordered = view.reorder_by_similarity(stmt.pivot_value)
            if not stmt.descending:
                order = [reordered.pivot_values[0]] + list(
                    reversed(reordered.pivot_values[1:])
                )
                reordered = CADView(
                    reordered.name, reordered.pivot_attribute, order,
                    reordered.compare_attributes, reordered.rows,
                    reordered.view, reordered.config, reordered.profile,
                    reordered.candidates, reordered.report,
                )
            self._views.set(stmt.view, reordered)
            return reordered
        if isinstance(stmt, DescribeStatement):
            return self._describe(stmt.table)
        if isinstance(stmt, ShowCadViewsStatement):
            return sorted(self._views.snapshot())
        if isinstance(stmt, DropCadViewStatement):
            self._views.drop(stmt.name)
            return sorted(self._views.snapshot())
        raise QueryError(f"cannot execute statement {stmt!r}")

    def render(self, view_name: str, **kwargs) -> str:
        """ASCII-render a named view (see :func:`render_cadview`)."""
        return render_cadview(self.view(view_name), **kwargs)

    # -- statement handlers -------------------------------------------------

    def _describe(self, table_name: str) -> List[Tuple[str, str, str]]:
        """(name, kind, queriable/hidden) rows for DESCRIBE."""
        table = self.engine.table(table_name)
        return [
            (a.name, a.kind.value,
             "queriable" if a.queriable else "hidden")
            for a in table.schema
        ]

    def _select(self, stmt: SelectStatement) -> Table:
        table = self.engine.table(stmt.table)
        result = self.engine.select(
            table, stmt.where, stmt.columns or None, limit=None
        )
        if stmt.order_by:
            result = self.engine.order_by(
                result,
                [k.attribute for k in stmt.order_by],
                [k.ascending for k in stmt.order_by],
            )
        if stmt.limit is not None:
            result = result.head(stmt.limit)
        return result

    def _create_cadview(
        self,
        stmt: CreateCadViewStatement,
        tracer: Optional[Tracer] = None,
        ctx: Optional[_ExecContext] = None,
    ) -> CADView:
        ctx = ctx if ctx is not None else _ExecContext(
            self._sessions[DEFAULT_SESSION]
        )
        table = self.engine.table(stmt.table)
        result = self.engine.select(table, stmt.where)
        config = self.config
        if stmt.limit_columns is not None:
            config = config.with_(compare_limit=stmt.limit_columns)
        if stmt.iunits is not None:
            config = config.with_(iunits_k=stmt.iunits)
        builder = CADViewBuilder(
            config,
            budget=ctx.budget if ctx.budget_set else self.budget,
            faults=ctx.faults if ctx.faults is not None else self.faults,
        )
        cad = builder.build(
            result,
            pivot=stmt.pivot,
            pinned=stmt.select,
            name=stmt.name,
            tracer=tracer if tracer is not None else self.tracer,
            cancel=ctx.cancel,
        )
        ctx.session.last_report = cad.report
        analysis = ctx.session.last_analysis
        if cad.report is not None and analysis is not None:
            for diag in analysis.warnings:
                cad.report.record_analysis_warning(str(diag))
        if stmt.order_by:
            cad = _sort_iunits(cad, stmt.order_by)
        self._views.set(stmt.name, cad)
        return cad

    # -- EXPLAIN ------------------------------------------------------------

    def _explain(
        self, stmt: ExplainStatement, ctx: Optional[_ExecContext] = None
    ) -> str:
        """``EXPLAIN`` renders the plan; ``EXPLAIN ANALYZE`` runs it.

        ANALYZE executes the inner statement under a dedicated
        :class:`Tracer` and returns the rendered span tree — for CADVIEW
        builds that is the full pipeline trace plus a reconciliation of
        the trace's Figure-8 bucket totals against the legacy
        :class:`~repro.core.profile.BuildProfile` and the build report.
        """
        if stmt.check:
            report = self.analyze(stmt.inner)
            if not report.ok:
                raise AnalysisError(report)
            return report.render()
        if not stmt.analyze:
            return "\n".join(self._plan_lines(stmt.inner))
        tracer = Tracer("explain")
        # the statement's work scope opened before this dedicated tracer
        # existed; redirect span rollups here so the rendered trace
        # carries per-phase work counters
        work.attach(tracer)
        if isinstance(stmt.inner, CreateCadViewStatement):
            cad = self._create_cadview(stmt.inner, tracer=tracer, ctx=ctx)
            root = tracer.finish()
            build = root.find("cadview.build")
            top = build[0] if build else root
            lines = [render_trace(top)]
            if cad.profile is not None:
                lines.append("")
                lines.append("bucket reconciliation (trace vs profile):")
                for bucket, legacy in (
                    ("compare_attrs", cad.profile.compare_attrs_s),
                    ("iunits", cad.profile.iunits_s),
                    ("others", cad.profile.others_s),
                ):
                    lines.append(
                        f"  {bucket:<14} trace={top.bucket_total(bucket) * 1e3:.1f}ms"
                        f"  profile={legacy * 1e3:.1f}ms"
                    )
            if cad.report is not None:
                lines.append("")
                lines.extend(cad.report.lines())
            lines.extend(_work_lines())
            return "\n".join(lines)
        with tracer.span("execute", statement=type(stmt.inner).__name__):
            self._dispatch(stmt.inner, ctx)
        lines = [render_trace(tracer.finish())]
        lines.extend(_work_lines())
        return "\n".join(lines)

    def _plan_lines(self, stmt: Statement) -> List[str]:
        """Textual plan outline of what executing ``stmt`` would do."""
        if isinstance(stmt, CreateCadViewStatement):
            lines = [
                f"CREATE CADVIEW {stmt.name} (pivot={stmt.pivot})",
                f"  scan: {stmt.table}"
                + (" with WHERE filter" if stmt.where else ""),
                "  discretize [others]",
                "  compare_attrs [compare_attrs]: chi-square ranking"
                + (f", pinned={list(stmt.select)}" if stmt.select else ""),
                "  per pivot value:",
                "    iunits [iunits]: k-means candidate generation",
                "    topk [others]: diversified top-k (div-astar)",
            ]
            if stmt.order_by:
                lines.append("  reorder iunits by ORDER BY keys")
            return lines
        if isinstance(stmt, SelectStatement):
            lines = [
                f"SELECT from {stmt.table}",
                "  scan: " + stmt.table
                + (" with WHERE filter" if stmt.where else ""),
            ]
            if stmt.order_by:
                lines.append("  sort: " + ", ".join(
                    k.attribute for k in stmt.order_by
                ))
            if stmt.limit is not None:
                lines.append(f"  limit: {stmt.limit}")
            return lines
        return [f"execute: {type(stmt).__name__}"]


def _statement_status(error: Optional[BaseException]) -> str:
    """Map an execute() outcome onto the worklog status vocabulary.

    The buckets mirror the CLI exit-code contract (0 ok / 1 usage /
    2 build failed / 3 budget exhausted) with the two pre-execution
    rejections split out, so a replayed log can be compared rung by
    rung.
    """
    if error is None:
        return "ok"
    if isinstance(error, BudgetExceededError):
        return "budget_exhausted"
    if isinstance(error, AnalysisError):
        return "analysis_error"
    if isinstance(error, ParseError):
        return "parse_error"
    if isinstance(error, QueryCancelledError):
        return "cancelled"
    if isinstance(error, OverloadedError):
        return "rejected"
    if isinstance(error, (CADViewError, ConvergenceError)):
        return "build_failed"
    return "error"


def _work_lines() -> List[str]:
    """The deterministic ``work counters:`` block of EXPLAIN ANALYZE.

    Values come from the statement's context accumulator, so this block
    is byte-identical for the same statement over the same data no
    matter how the run is scheduled — unlike the timed trace lines
    above it.  Empty when no counted kernel ran (or no work scope is
    open, e.g. ``_explain`` called outside ``execute``).
    """
    counters = work.current()
    if counters is None or not counters.counts:
        return []
    lines = ["", "work counters:"]
    lines.extend(
        f"  {name} = {value}"
        for name, value in counters.as_dict().items()
    )
    return lines


def _result_rows(result: Optional[ExecuteResult]) -> Optional[int]:
    """The result-set size of one statement, when it has one."""
    if isinstance(result, Table):
        return len(result)
    if isinstance(result, CADView):
        return len(result.pivot_values)
    if isinstance(result, list):
        return len(result)
    return None


def _sort_iunits(cad: CADView, keys: Tuple[OrderKey, ...]) -> CADView:
    """Re-rank each row's IUnits by ORDER BY keys (paper Sec. 2.1.2).

    Keys must be binned numeric Compare Attributes; IUnits sort on the
    frequency-weighted mean bin midpoint.
    """
    midpoint_cache: Dict[str, np.ndarray] = {}
    for key in keys:
        if key.attribute not in cad.compare_attributes:
            raise CADViewError(
                f"ORDER BY attribute {key.attribute!r} is not a Compare "
                f"Attribute of this view"
            )
        if not cad.view.is_binned(key.attribute):
            raise CADViewError(
                f"ORDER BY needs a numeric attribute, "
                f"{key.attribute!r} is categorical"
            )
        midpoint_cache[key.attribute] = np.array(
            [(b.lo + b.hi) / 2.0 for b in cad.view.bins(key.attribute)]
        )

    def sort_key(unit: IUnit):
        parts = []
        for key in keys:
            dist = np.asarray(unit.distributions[key.attribute], dtype=float)
            total = dist.sum()
            mean = (
                float(np.dot(dist, midpoint_cache[key.attribute]) / total)
                if total else float("inf")
            )
            parts.append(mean if key.ascending else -mean)
        return tuple(parts)

    rows = {}
    for value in cad.pivot_values:
        ordered = sorted(cad.rows[value], key=sort_key)
        rows[value] = [
            u.with_uid(rank) for rank, u in enumerate(ordered, start=1)
        ]
    return CADView(
        cad.name, cad.pivot_attribute, cad.pivot_values,
        cad.compare_attributes, rows, cad.view, cad.config, cad.profile,
        cad.candidates, cad.report,
    )
