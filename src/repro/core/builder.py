"""The CAD View construction pipeline (paper Sections 2.2.2, 3, 6.3).

Build order, mirroring the paper's sub-problems:

1. Discretize the result set (pre-processing, Sec. 2.2.1).
2. Problem 1.1 — pick Compare Attributes with chi-square feature
   selection (on a sample when Optimization 1 is enabled).
3. Problem 1.2 — for each pivot value, cluster its tuples on the
   Compare Attributes with k-means (one-hot encoding) and label the
   ``l`` clusters as candidate IUnits.
4. Problem 2 — keep the diversified top-k per pivot value (div-astar).

Every phase is timed into a :class:`BuildProfile` with the same three
buckets the paper's Figure 8 reports.

Resilience (the interactive-latency contract): a build may carry a
:class:`~repro.robustness.Budget` and a
:class:`~repro.robustness.FaultInjector`.  Under budget pressure or
phase failure the builder walks a *degradation ladder* instead of
aborting —

* feature selection: full chi-square -> sampled chi-square -> entropy
  ranking of the pinned/fallback attributes;
* clustering: k-means -> seeded retry on transient
  :class:`~repro.errors.ConvergenceError` -> one whole-partition IUnit;
* top-k: exact div-astar -> greedy;
* per-pivot-value isolation: any other failure is recorded as an
  incident and only that pivot value is dropped;
* truncation: once the deadline passes, remaining pivot values are
  dropped and the partial view is returned.

:class:`~repro.errors.BudgetExceededError` escapes only when not even a
partial view can be produced.  Every step down the ladder is recorded in
the returned view's :class:`~repro.robustness.BuildReport`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cadview import CADView, CADViewConfig
from repro.core.profile import BuildProfile
from repro.dataset.table import Table
from repro.discretize.discretizer import DiscretizedView, Discretizer
from repro.errors import (
    BudgetExceededError,
    CADViewError,
    ConvergenceError,
    EmptyResultError,
    QueryCancelledError,
    QueryError,
)
from repro.clustering.encoding import one_hot_encode
from repro.clustering.kmeans import KMeans
from repro.features.selection import (
    FeatureSelector,
    select_compare_attributes,
)
from repro.iunits.diversify import diversified_topk
from repro.iunits.iunit import IUnit
from repro.iunits.labeling import LabelingConfig, build_iunits
from repro.iunits.ranking import PreferenceFunction
from repro.iunits.similarity import default_tau
from repro.obs.metrics import registry
from repro.obs.tracer import Tracer
from repro.robustness.budget import Budget, BudgetClock
from repro.robustness.cancel import CancelToken
from repro.robustness.faults import NO_FAULTS, FaultInjector
from repro.robustness.report import BuildReport

__all__ = ["CADViewBuilder"]

# Ladder sample caps applied under budget pressure (rows).  Chosen so a
# pressured phase costs single-digit milliseconds on paper-scale data.
_PRESSURE_FS_SAMPLE = 1_000
_PRESSURE_CLUSTER_SAMPLE = 512


class CADViewBuilder:
    """Builds :class:`CADView` objects from result sets.

    >>> builder = CADViewBuilder(CADViewConfig(compare_limit=5, iunits_k=3))
    >>> cad = builder.build(result, pivot="Make", pinned=("Price",))

    A builder-level ``budget`` / ``faults`` applies to every build; the
    per-call parameters of :meth:`build` and :meth:`refine` override it.
    """

    def __init__(
        self,
        config: CADViewConfig = CADViewConfig(),
        selector: Optional[FeatureSelector] = None,
        preference: Optional[PreferenceFunction] = None,
        budget: Optional[Budget] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.config = config
        self.selector = selector
        self.preference = preference
        self.budget = budget
        self.faults = faults

    # -- public API -------------------------------------------------------

    def _default_faults(self) -> FaultInjector:
        """The injector for builds that were not handed one explicitly.

        Falls back to the ``REPRO_FAULTS`` environment variable — the
        same switch :class:`~repro.core.explorer.DBExplorer` honors —
        so direct-builder workloads (the benches) can have latency or
        failure faults injected without code changes.
        """
        if self.faults is not None:
            return self.faults
        return FaultInjector.from_env() or NO_FAULTS

    def build(
        self,
        result: Table,
        pivot: str,
        pivot_values: Optional[Sequence[str]] = None,
        pinned: Sequence[str] = (),
        name: str = "cadview",
        exclude: Sequence[str] = (),
        budget: Optional[Budget] = None,
        faults: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        cancel: Optional[CancelToken] = None,
    ) -> CADView:
        """Construct the CAD View for ``result`` and ``pivot``.

        Parameters
        ----------
        result:
            The current result set ``R`` (already filtered by the user's
            selections).
        pivot:
            The Pivot Attribute ``fp``.
        pivot_values:
            The selected values ``V``; ``None`` takes every value present
            in ``R`` (the paper's default).
        pinned:
            Compare Attributes the user explicitly SELECTed (the ``N``
            of the query model); honored first, in order.
        exclude:
            Attributes never to auto-select (e.g. attributes already
            pinned by WHERE equality selections, which carry a single
            value in ``R`` and hence zero contrast).
        budget:
            Wall-clock/row limits for this build (overrides the
            builder-level budget).
        faults:
            Fault-injection plan for this build (tests only).
        tracer:
            An existing :class:`~repro.obs.Tracer` to nest this build's
            span tree under (``EXPLAIN ANALYZE`` and the CLI's
            ``--trace`` pass one); ``None`` creates a fresh tracer.
            Either way the build span lands on ``report.trace``.
        cancel:
            A :class:`~repro.robustness.CancelToken` checked at every
            budget checkpoint; once tripped the build raises
            :class:`~repro.errors.QueryCancelledError` promptly instead
            of degrading (the serving watchdog's hook).
        """
        config = self.config
        budget = budget if budget is not None else self.budget
        faults = faults if faults is not None else self._default_faults()
        clock = (budget or Budget()).begin(cancel)
        profile = BuildProfile()
        own_tracer = tracer is None
        tracer = tracer if tracer is not None else Tracer("cadview")
        report = BuildReport(
            budget=budget, profile=profile, tracer=tracer
        )
        if len(result) == 0:
            raise EmptyResultError("result set is empty")
        result.schema[pivot]  # raises UnknownAttributeError when absent
        try:
            with tracer.span(
                "cadview.build", view=name, pivot=pivot,
                rows_in=len(result),
            ) as build_span:
                report.trace = build_span
                result = self._apply_row_caps(result, budget, report)
                build_span.set_attr("rows", len(result))

                # pre-processing: context-dependent discretization of R
                with tracer.span(
                    "discretize", bucket="others", profile=profile,
                    strategy=config.strategy, nbins=config.nbins,
                ) as sp:
                    clock.check("discretize")
                    faults.fire("discretize")
                    discretizer = Discretizer(
                        strategy=config.strategy, nbins=config.nbins
                    )
                    view = discretizer.fit(result)
                    values = self._pivot_values(view, pivot, pivot_values)
                    sp.set_attr("attributes", len(view.attribute_names))
                    sp.set_attr("pivot_values", len(values))

                # Problem 1.1 — Compare Attributes (resilient ladder)
                with tracer.span(
                    "compare_attrs", bucket="compare_attrs",
                    profile=profile,
                ) as sp:
                    compare = self._compare_attributes(
                        result, discretizer, view, pivot, pinned, exclude,
                        clock, faults, report, tracer,
                    )
                    sp.set_attr("selected", len(compare))
                if not compare:
                    raise CADViewError(
                        f"no usable Compare Attribute for pivot {pivot!r}"
                    )

                # Problems 1.2 + 2 — candidate IUnits, diversified top-k
                labeling = LabelingConfig(
                    max_display=config.max_display,
                    alpha=config.label_alpha,
                    min_share=config.min_share,
                )
                tau = default_tau(len(compare), config.tau_alpha)
                l = config.effective_l(len(result))
                kept, rows, candidates = self._build_rows(
                    view, pivot, values, compare, labeling, tau, l,
                    profile, clock, faults, report, tracer,
                )
                report.elapsed_s = clock.elapsed()
                build_span.set_attr("values_built", len(kept))
        except BudgetExceededError:
            registry().counter("build.budget_exhausted").inc()
            raise
        except QueryCancelledError:
            registry().counter("build.cancelled").inc()
            raise
        except CADViewError:
            registry().counter("build.failed").inc()
            raise
        finally:
            if own_tracer:
                tracer.finish()
        self._record_build_metrics(report)
        return CADView(
            name, pivot, kept, compare, rows, view, config, profile,
            candidates, report,
        )

    @staticmethod
    def _record_build_metrics(report: BuildReport) -> None:
        """Fold one finished build into the process-wide registry."""
        reg = registry()
        reg.counter("build.total").inc()
        if report.degraded:
            reg.counter("build.degraded").inc()
        if report.partial:
            reg.counter("build.partial").inc()
        if report.retries:
            reg.counter("build.retries").inc(len(report.retries))
        reg.histogram("build.latency_s").observe(report.elapsed_s)

    def refine(
        self,
        cad: CADView,
        extra_predicate,
        name: Optional[str] = None,
        budget: Optional[Budget] = None,
        faults: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        cancel: Optional[CancelToken] = None,
    ) -> CADView:
        """Incrementally refine a view after the user narrows the query.

        Applies ``extra_predicate`` to the view's underlying result and
        rebuilds only the per-pivot-value clustering — the context
        (discretization bins, label domains) and the Compare Attributes
        are reused, which keeps successive views comparable while the
        user drills down and skips the two selection phases entirely.

        Pivot values left with no tuples drop out of the refined view.
        The same budget/degradation machinery as :meth:`build` applies
        to the clustering loop.
        """
        config = self.config
        budget = budget if budget is not None else self.budget
        faults = faults if faults is not None else self._default_faults()
        clock = (budget or Budget()).begin(cancel)
        profile = BuildProfile()
        own_tracer = tracer is None
        tracer = tracer if tracer is not None else Tracer("cadview")
        report = BuildReport(budget=budget, profile=profile, tracer=tracer)
        old_view = cad.view
        try:
            with tracer.span(
                "cadview.refine", view=name or cad.name,
                pivot=cad.pivot_attribute,
            ) as refine_span:
                report.trace = refine_span
                with tracer.span(
                    "restrict", bucket="others", profile=profile
                ) as sp:
                    mask = extra_predicate.mask(old_view.table)
                    if not mask.any():
                        raise EmptyResultError(
                            "refinement predicate matches no tuples"
                        )
                    view = old_view.restrict(mask)
                    present = view.value_counts(cad.pivot_attribute)
                    values = [v for v in cad.pivot_values if v in present]
                    if not values:
                        raise EmptyResultError(
                            "no pivot value survives the refinement"
                        )
                    sp.set_attr("rows", len(view))
                    sp.set_attr("pivot_values", len(values))

                compare = list(cad.compare_attributes)
                labeling = LabelingConfig(
                    max_display=config.max_display,
                    alpha=config.label_alpha,
                    min_share=config.min_share,
                )
                tau = default_tau(len(compare), config.tau_alpha)
                l = config.effective_l(len(view))
                kept, rows, candidates = self._build_rows(
                    view, cad.pivot_attribute, values, compare, labeling,
                    tau, l, profile, clock, faults, report, tracer,
                )
                report.elapsed_s = clock.elapsed()
                refine_span.set_attr("values_built", len(kept))
        finally:
            if own_tracer:
                tracer.finish()
        self._record_build_metrics(report)
        return CADView(
            name or cad.name, cad.pivot_attribute, kept, compare, rows,
            view, config, profile, candidates, report,
        )

    # -- phases ---------------------------------------------------------------

    @staticmethod
    def _pivot_values(
        view: DiscretizedView,
        pivot: str,
        requested: Optional[Sequence[str]],
    ) -> List[str]:
        present = view.value_counts(pivot)
        if requested is None:
            # all values present, most frequent first (stable display)
            return sorted(present, key=lambda v: (-present[v], v))
        values = []
        for v in requested:
            if str(v) not in present:
                raise EmptyResultError(
                    f"pivot value {v!r} has no tuples in the result set"
                )
            values.append(str(v))
        if not values:
            raise CADViewError("pivot_values must not be empty")
        return values

    def _apply_row_caps(
        self,
        result: Table,
        budget: Optional[Budget],
        report: BuildReport,
    ) -> Table:
        """Sample the input down to the budget's row/cell cap."""
        if budget is None:
            return result
        cap = budget.row_cap(len(result.schema))
        if cap is None or len(result) <= cap:
            return result
        cap = max(cap, 1)
        report.record_degradation(
            "input", f"rows:{len(result)}", f"rows:{cap}",
            "row/cell budget cap",
        )
        return result.sample(cap, np.random.default_rng(self.config.seed))

    def _compare_attributes(
        self,
        result: Table,
        discretizer: Discretizer,
        view: DiscretizedView,
        pivot: str,
        pinned: Sequence[str],
        exclude: Sequence[str],
        clock: BudgetClock,
        faults: FaultInjector,
        report: BuildReport,
        tracer: Tracer,
    ) -> List[str]:
        """Problem 1.1 with the selection degradation ladder.

        Rungs: full statistical selection -> selection on a sample
        (Optimization 1, forced under budget pressure) -> pinned
        attributes topped up by the entropy fallback.  User errors
        (unknown pinned attributes) always propagate.
        """
        config = self.config
        for name in pinned:
            if name not in view:
                raise QueryError(f"pinned attribute {name!r} not in view")

        sample_n = config.fs_sample
        if clock.under_pressure() and (
            sample_n is None or sample_n > _PRESSURE_FS_SAMPLE
        ):
            sample_n = _PRESSURE_FS_SAMPLE
            report.record_degradation(
                "feature_selection", "full", f"sample:{sample_n}",
                "budget pressure",
            )
        try:
            faults.fire("feature_selection")
            fs_view = view
            if sample_n is not None and len(result) > sample_n:
                # Optimization 1: rank attributes on a uniform sample
                with tracer.span("fs_sample", rows=sample_n):
                    sample = result.sample(
                        sample_n, np.random.default_rng(config.seed)
                    )
                    fs_view = discretizer.fit(sample)
            with tracer.span(
                "feature_selection", rows=len(fs_view),
                limit=config.compare_limit,
            ):
                compare = select_compare_attributes(
                    fs_view,
                    pivot,
                    pinned=pinned,
                    limit=config.compare_limit,
                    alpha=config.alpha,
                    selector=self.selector,
                    exclude=exclude,
                    checkpoint=clock.checkpoint("feature_selection"),
                    tracer=tracer,
                )
        except BudgetExceededError as exc:
            report.record_degradation(
                "feature_selection", "chi-square", "entropy-fallback",
                str(exc),
            )
            compare = list(dict.fromkeys(pinned))[:config.compare_limit]
        except QueryError:
            raise  # config/user errors (bad limit, bad pinned) propagate
        except QueryCancelledError:
            raise  # cancellation must stop the build, never degrade it
        # deliberate blanket: any selector crash downgrades to the entropy
        # ranking and is recorded as an incident, never swallowed silently
        # repro-lint: ignore[RL004]
        except Exception as exc:
            report.record_incident(
                "feature_selection", None, exc,
                "fell back to entropy ranking",
            )
            compare = list(dict.fromkeys(pinned))[:config.compare_limit]
        if len(compare) < min(config.compare_limit,
                              len(view.attribute_names) - 1):
            # contrast-based selection can come up short (e.g. a
            # single pivot value has no contrast at all); fill the
            # remaining slots with the highest-entropy attributes,
            # which still summarize the partition's structure
            with tracer.span("entropy_fallback", have=len(compare)):
                compare = self._entropy_fallback(
                    view, pivot, compare, exclude
                )
        return compare

    def _entropy_fallback(
        self,
        view: DiscretizedView,
        pivot: str,
        chosen: Sequence[str],
        exclude: Sequence[str],
    ) -> List[str]:
        """Top up the Compare Attributes by within-view value entropy."""
        chosen = list(chosen)
        skip = set(chosen) | {pivot} | set(exclude)
        scored = []
        for name in view.attribute_names:
            if name in skip:
                continue
            counts = np.array(list(view.value_counts(name).values()), float)
            if counts.size < 2:
                continue
            p = counts / counts.sum()
            entropy = float(-(p * np.log2(p)).sum())
            scored.append((-entropy, name))
        scored.sort()
        for _, name in scored:
            if len(chosen) >= self.config.compare_limit:
                break
            chosen.append(name)
        return chosen

    # -- per-pivot-value loop -------------------------------------------------

    def _build_rows(
        self,
        view: DiscretizedView,
        pivot: str,
        values: Sequence[str],
        compare: Sequence[str],
        labeling: LabelingConfig,
        tau: float,
        l: int,
        profile: BuildProfile,
        clock: BudgetClock,
        faults: FaultInjector,
        report: BuildReport,
        tracer: Tracer,
    ) -> Tuple[List[str], Dict[str, List[IUnit]], Dict[str, List[IUnit]]]:
        """Problems 1.2 + 2 for every pivot value, with error isolation.

        Returns (kept values, displayed rows, candidate IUnits).  A
        failing pivot value becomes an incident and is dropped; once the
        deadline passes the remaining values are truncated.  Raises
        :class:`BudgetExceededError` only when *nothing* was built
        before the deadline, and :class:`CADViewError` when every value
        failed.
        """
        rows: Dict[str, List[IUnit]] = {}
        candidates: Dict[str, List[IUnit]] = {}
        kept: List[str] = []
        rng = np.random.default_rng(self.config.seed)
        for i, value in enumerate(values):
            if clock.exceeded():
                if not kept:
                    clock.check("iunits")  # raises BudgetExceededError
                self._truncate(values[i:], report)
                break
            try:
                with tracer.span(f"pivot:{value}"):
                    with tracer.span(
                        "iunits", bucket="iunits", profile=profile
                    ):
                        cands = self._candidate_iunits(
                            view, pivot, value, compare, labeling, l, rng,
                            clock, faults, report, tracer,
                        )
                    with tracer.span(
                        "topk", bucket="others", profile=profile
                    ):
                        top = self._topk(
                            cands, value, tau, clock, faults, report,
                            tracer,
                        )
            except BudgetExceededError:
                if not kept:
                    raise
                self._truncate(values[i:], report)
                break
            except QueryCancelledError:
                raise  # cancellation punches through per-pivot isolation
            # deliberate blanket: per-pivot isolation — the incident and
            # the dropped value are recorded on the build report
            # repro-lint: ignore[RL004]
            except Exception as exc:
                # isolation: one bad partition must not kill the view
                report.record_incident(
                    "iunits", value, exc, "dropped pivot value"
                )
                report.record_dropped(value)
                continue
            candidates[value] = cands
            rows[value] = top
            kept.append(value)
        if not kept:
            detail = "; ".join(str(i) for i in report.incidents)
            raise CADViewError(
                f"every pivot value failed to build: {detail}"
            )
        return kept, rows, candidates

    @staticmethod
    def _truncate(remaining: Sequence[str], report: BuildReport) -> None:
        """Drop the not-yet-built pivot values at the deadline."""
        for value in remaining:
            report.record_dropped(value)
        report.record_degradation(
            "build", "all-values",
            f"truncated:-{len(remaining)}", "deadline reached",
        )

    def _candidate_iunits(
        self,
        view: DiscretizedView,
        pivot: str,
        value: str,
        compare: Sequence[str],
        labeling: LabelingConfig,
        l: int,
        rng: np.random.Generator,
        clock: BudgetClock,
        faults: FaultInjector,
        report: BuildReport,
        tracer: Tracer,
    ) -> List[IUnit]:
        """Problem 1.2 for one pivot value, with the clustering ladder.

        Transient :class:`ConvergenceError` is retried with a fresh seed
        ``budget.retries`` times; exhausted retries or a mid-clustering
        deadline degrade to a single whole-partition IUnit.
        """
        code = view.code_of(pivot, value)
        partition = view.restrict(view.codes(pivot) == code)
        config = self.config
        span = tracer.current
        span.set_attr("rows", len(partition))
        cap = config.cluster_sample
        if clock.under_pressure() and (
            cap is None or cap > _PRESSURE_CLUSTER_SAMPLE
        ):
            cap = _PRESSURE_CLUSTER_SAMPLE
            if len(partition) > cap:
                report.record_degradation(
                    "cluster", "full-partition", f"sample:{cap}",
                    "budget pressure",
                )
        if cap is not None and len(partition) > cap:
            keep = rng.choice(len(partition), size=cap, replace=False)
            mask = np.zeros(len(partition), dtype=bool)
            mask[keep] = True
            partition = partition.restrict(mask)
            span.set_attr("sampled_rows", len(partition))
        with tracer.span("encode", rows=len(partition)):
            encoding = one_hot_encode(partition, compare)
        k = min(l, len(partition))  # tiny partitions: one tuple per cluster
        checkpoint = clock.checkpoint("cluster")
        retries = clock.budget.retries
        fit = None
        for attempt in range(1, retries + 2):
            try:
                faults.fire("cluster", value)
                km = KMeans(n_clusters=k, seed=int(rng.integers(2**31)))
                fit = km.fit(
                    encoding.matrix, rng, checkpoint=checkpoint,
                    tracer=tracer,
                )
                break
            except ConvergenceError as exc:
                if attempt <= retries:
                    report.record_retry("cluster", value, attempt, exc)
                    if report.profile is not None:
                        report.profile.count("retries")
                    tracer.inc("cluster_restarts")
                    continue
                report.record_incident(
                    "cluster", value, exc,
                    "degraded to whole-partition IUnit",
                )
                report.record_degradation(
                    "cluster", "kmeans", "whole-partition-iunit",
                    "retries exhausted",
                )
                break
            except BudgetExceededError:
                report.record_degradation(
                    "cluster", "kmeans", "whole-partition-iunit",
                    "deadline mid-clustering",
                )
                break
        if fit is None:
            # the bottom rung: the whole partition as one summary IUnit
            labels = np.zeros(len(partition), dtype=np.int32)
        else:
            labels = fit.labels
        with tracer.span("label", clusters=int(labels.max()) + 1):
            units = build_iunits(
                partition, labels, pivot, value, compare, labeling
            )
        span.inc("candidates", len(units))
        return units

    def _topk(
        self,
        cands: Sequence[IUnit],
        value: str,
        tau: float,
        clock: BudgetClock,
        faults: FaultInjector,
        report: BuildReport,
        tracer: Tracer,
    ) -> List[IUnit]:
        """Problem 2 for one pivot value: exact div-astar, else greedy."""
        config = self.config
        faults.fire("topk", value)
        exact = config.exact_topk
        if exact and clock.under_pressure():
            report.record_degradation(
                "topk", "exact", "greedy", "budget pressure"
            )
            exact = False
        try:
            return diversified_topk(
                cands,
                config.iunits_k,
                tau,
                self.preference,
                exact=exact,
                checkpoint=clock.checkpoint("topk"),
                tracer=tracer,
            )
        except BudgetExceededError:
            report.record_degradation(
                "topk", "exact", "greedy", "deadline mid-search"
            )
            return diversified_topk(
                cands, config.iunits_k, tau, self.preference, exact=False,
                tracer=tracer,
            )
