"""The CAD View construction pipeline (paper Sections 2.2.2, 3, 6.3).

Build order, mirroring the paper's sub-problems:

1. Discretize the result set (pre-processing, Sec. 2.2.1).
2. Problem 1.1 — pick Compare Attributes with chi-square feature
   selection (on a sample when Optimization 1 is enabled).
3. Problem 1.2 — for each pivot value, cluster its tuples on the
   Compare Attributes with k-means (one-hot encoding) and label the
   ``l`` clusters as candidate IUnits.
4. Problem 2 — keep the diversified top-k per pivot value (div-astar).

Every phase is timed into a :class:`BuildProfile` with the same three
buckets the paper's Figure 8 reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.cadview import CADView, CADViewConfig
from repro.core.profile import BuildProfile
from repro.dataset.table import Table
from repro.discretize.discretizer import DiscretizedView, Discretizer
from repro.errors import CADViewError, EmptyResultError
from repro.clustering.encoding import one_hot_encode
from repro.clustering.kmeans import KMeans
from repro.features.selection import (
    FeatureSelector,
    select_compare_attributes,
)
from repro.iunits.diversify import diversified_topk
from repro.iunits.labeling import LabelingConfig, build_iunits
from repro.iunits.ranking import PreferenceFunction
from repro.iunits.similarity import default_tau

__all__ = ["CADViewBuilder"]


class CADViewBuilder:
    """Builds :class:`CADView` objects from result sets.

    >>> builder = CADViewBuilder(CADViewConfig(compare_limit=5, iunits_k=3))
    >>> cad = builder.build(result, pivot="Make", pinned=("Price",))
    """

    def __init__(
        self,
        config: CADViewConfig = CADViewConfig(),
        selector: Optional[FeatureSelector] = None,
        preference: Optional[PreferenceFunction] = None,
    ):
        self.config = config
        self.selector = selector
        self.preference = preference

    # -- public API -------------------------------------------------------

    def build(
        self,
        result: Table,
        pivot: str,
        pivot_values: Optional[Sequence[str]] = None,
        pinned: Sequence[str] = (),
        name: str = "cadview",
        exclude: Sequence[str] = (),
    ) -> CADView:
        """Construct the CAD View for ``result`` and ``pivot``.

        Parameters
        ----------
        result:
            The current result set ``R`` (already filtered by the user's
            selections).
        pivot:
            The Pivot Attribute ``fp``.
        pivot_values:
            The selected values ``V``; ``None`` takes every value present
            in ``R`` (the paper's default).
        pinned:
            Compare Attributes the user explicitly SELECTed (the ``N``
            of the query model); honored first, in order.
        exclude:
            Attributes never to auto-select (e.g. attributes already
            pinned by WHERE equality selections, which carry a single
            value in ``R`` and hence zero contrast).
        """
        config = self.config
        profile = BuildProfile()
        if len(result) == 0:
            raise EmptyResultError("result set is empty")
        result.schema[pivot]  # raises UnknownAttributeError when absent

        # pre-processing: context-dependent discretization of R
        with profile.timed("others"):
            discretizer = Discretizer(
                strategy=config.strategy, nbins=config.nbins
            )
            view = discretizer.fit(result)
            values = self._pivot_values(view, pivot, pivot_values)

        # Problem 1.1 — Compare Attributes
        with profile.timed("compare_attrs"):
            compare = self._compare_attributes(
                result, discretizer, view, pivot, pinned, exclude
            )
            if len(compare) < min(config.compare_limit,
                                  len(view.attribute_names) - 1):
                # contrast-based selection can come up short (e.g. a
                # single pivot value has no contrast at all); fill the
                # remaining slots with the highest-entropy attributes,
                # which still summarize the partition's structure
                compare = self._entropy_fallback(
                    view, pivot, compare, exclude
                )
        if not compare:
            raise CADViewError(
                f"no usable Compare Attribute for pivot {pivot!r}"
            )

        # Problems 1.2 + 2 — candidate IUnits, then diversified top-k
        labeling = LabelingConfig(
            max_display=config.max_display,
            alpha=config.label_alpha,
            min_share=config.min_share,
        )
        tau = default_tau(len(compare), config.tau_alpha)
        l = config.effective_l(len(result))
        rows = {}
        candidates = {}
        rng = np.random.default_rng(config.seed)
        for value in values:
            with profile.timed("iunits"):
                cands = self._candidate_iunits(
                    view, pivot, value, compare, labeling, l, rng
                )
            with profile.timed("others"):
                top = diversified_topk(
                    cands,
                    config.iunits_k,
                    tau,
                    self.preference,
                    exact=config.exact_topk,
                )
            candidates[value] = cands
            rows[value] = top

        return CADView(
            name, pivot, values, compare, rows, view, config, profile,
            candidates,
        )

    def refine(
        self,
        cad: CADView,
        extra_predicate,
        name: Optional[str] = None,
    ) -> CADView:
        """Incrementally refine a view after the user narrows the query.

        Applies ``extra_predicate`` to the view's underlying result and
        rebuilds only the per-pivot-value clustering — the context
        (discretization bins, label domains) and the Compare Attributes
        are reused, which keeps successive views comparable while the
        user drills down and skips the two selection phases entirely.

        Pivot values left with no tuples drop out of the refined view.
        """
        config = self.config
        profile = BuildProfile()
        old_view = cad.view
        with profile.timed("others"):
            mask = extra_predicate.mask(old_view.table)
            if not mask.any():
                raise EmptyResultError(
                    "refinement predicate matches no tuples"
                )
            view = old_view.restrict(mask)
            present = view.value_counts(cad.pivot_attribute)
            values = [v for v in cad.pivot_values if v in present]
            if not values:
                raise EmptyResultError(
                    "no pivot value survives the refinement"
                )

        compare = list(cad.compare_attributes)
        labeling = LabelingConfig(
            max_display=config.max_display,
            alpha=config.label_alpha,
            min_share=config.min_share,
        )
        tau = default_tau(len(compare), config.tau_alpha)
        l = config.effective_l(len(view))
        rows = {}
        candidates = {}
        rng = np.random.default_rng(config.seed)
        for value in values:
            with profile.timed("iunits"):
                cands = self._candidate_iunits(
                    view, cad.pivot_attribute, value, compare, labeling,
                    l, rng,
                )
            with profile.timed("others"):
                top = diversified_topk(
                    cands, config.iunits_k, tau, self.preference,
                    exact=config.exact_topk,
                )
            candidates[value] = cands
            rows[value] = top
        return CADView(
            name or cad.name, cad.pivot_attribute, values, compare, rows,
            view, config, profile, candidates,
        )

    # -- phases ---------------------------------------------------------------

    @staticmethod
    def _pivot_values(
        view: DiscretizedView,
        pivot: str,
        requested: Optional[Sequence[str]],
    ) -> List[str]:
        present = view.value_counts(pivot)
        if requested is None:
            # all values present, most frequent first (stable display)
            return sorted(present, key=lambda v: (-present[v], v))
        values = []
        for v in requested:
            if str(v) not in present:
                raise EmptyResultError(
                    f"pivot value {v!r} has no tuples in the result set"
                )
            values.append(str(v))
        if not values:
            raise CADViewError("pivot_values must not be empty")
        return values

    def _compare_attributes(
        self,
        result: Table,
        discretizer: Discretizer,
        view: DiscretizedView,
        pivot: str,
        pinned: Sequence[str],
        exclude: Sequence[str],
    ) -> List[str]:
        config = self.config
        fs_view = view
        if config.fs_sample is not None and len(result) > config.fs_sample:
            # Optimization 1: rank attributes on a uniform sample
            sample = result.sample(
                config.fs_sample, np.random.default_rng(config.seed)
            )
            fs_view = discretizer.fit(sample)
        return select_compare_attributes(
            fs_view,
            pivot,
            pinned=pinned,
            limit=config.compare_limit,
            alpha=config.alpha,
            selector=self.selector,
            exclude=exclude,
        )

    def _entropy_fallback(
        self,
        view: DiscretizedView,
        pivot: str,
        chosen: Sequence[str],
        exclude: Sequence[str],
    ) -> List[str]:
        """Top up the Compare Attributes by within-view value entropy."""
        chosen = list(chosen)
        skip = set(chosen) | {pivot} | set(exclude)
        scored = []
        for name in view.attribute_names:
            if name in skip:
                continue
            counts = np.array(list(view.value_counts(name).values()), float)
            if counts.size < 2:
                continue
            p = counts / counts.sum()
            entropy = float(-(p * np.log2(p)).sum())
            scored.append((-entropy, name))
        scored.sort()
        for _, name in scored:
            if len(chosen) >= self.config.compare_limit:
                break
            chosen.append(name)
        return chosen

    def _candidate_iunits(
        self,
        view: DiscretizedView,
        pivot: str,
        value: str,
        compare: Sequence[str],
        labeling: LabelingConfig,
        l: int,
        rng: np.random.Generator,
    ):
        code = view.code_of(pivot, value)
        partition = view.restrict(view.codes(pivot) == code)
        config = self.config
        if (
            config.cluster_sample is not None
            and len(partition) > config.cluster_sample
        ):
            keep = rng.choice(
                len(partition), size=config.cluster_sample, replace=False
            )
            mask = np.zeros(len(partition), dtype=bool)
            mask[keep] = True
            partition = partition.restrict(mask)
        encoding = one_hot_encode(partition, compare)
        km = KMeans(n_clusters=l, seed=int(rng.integers(2**31)))
        fit = km.fit(encoding.matrix, rng)
        return build_iunits(
            partition, fit.labels, pivot, value, compare, labeling
        )
