"""The CAD View core: configuration, builder, view object, rendering."""

from repro.core import serialize
from repro.core.builder import CADViewBuilder
from repro.core.categorize import CategoryNode, CategoryTree
from repro.core.cadview import CADView, CADViewConfig, IUnitRef
from repro.core.explorer import DBExplorer
from repro.core.profile import BuildProfile
from repro.core.render import render_cadview, render_cadview_markdown

__all__ = [
    "CADViewConfig", "CADView", "IUnitRef",
    "CADViewBuilder", "DBExplorer",
    "BuildProfile", "render_cadview",
    "CategoryNode", "CategoryTree", "serialize",
    "render_cadview_markdown",
]
