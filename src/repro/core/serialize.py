"""JSON export/import of CAD Views.

"Our proposed CAD View can be integrated with any structured data
presentation system" (paper Sec. 1) — this module defines that
integration surface: a stable JSON document carrying the full view
(pivot, Compare Attributes, per-row IUnits with display labels, sizes
and value-frequency distributions, the label domains, and the
selection predicate of every displayed label so front-ends can make
labels clickable).

``loads``/``from_dict`` reconstruct the IUnits well enough to run the
similarity machinery (Algorithms 1 and 2) on the receiving side — a
front-end can re-rank and highlight without the backing table.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.cadview import CADView
from repro.errors import CADViewError
from repro.iunits.iunit import IUnit
from repro.iunits.similarity import iunit_similarity, ranked_list_distance

__all__ = [
    "to_dict", "dumps", "SerializedCADView", "from_dict", "loads",
]

FORMAT_VERSION = 1


def _iunit_to_dict(unit: IUnit) -> dict:
    return {
        "uid": unit.uid,
        "size": unit.size,
        "display": {a: list(v) for a, v in unit.display.items()},
        "distributions": {
            a: [float(x) for x in np.asarray(unit.distributions[a])]
            for a in unit.compare_attributes
        },
    }


def to_dict(cad: CADView) -> dict:
    """The JSON-ready document for one CAD View."""
    labels = {
        a: list(cad.view.labels(a)) for a in cad.compare_attributes
    }
    selectors: Dict[str, Dict[str, str]] = {}
    for attr in cad.compare_attributes:
        selectors[attr] = {
            label: cad.view.predicate_for(attr, code).to_sql()
            for code, label in enumerate(cad.view.labels(attr))
        }
    return {
        "format": FORMAT_VERSION,
        "name": cad.name,
        "pivot_attribute": cad.pivot_attribute,
        "pivot_values": list(cad.pivot_values),
        "compare_attributes": list(cad.compare_attributes),
        "tau": cad.tau,
        "labels": labels,
        "label_selectors": selectors,
        "rows": {
            value: [_iunit_to_dict(u) for u in cad.rows[value]]
            for value in cad.pivot_values
        },
    }


def dumps(cad: CADView, **json_kwargs) -> str:
    """Serialize a CAD View to a JSON string."""
    return json.dumps(to_dict(cad), **json_kwargs)


class SerializedCADView:
    """A CAD View reconstructed from JSON: display + similarity only.

    Enough for a presentation layer: rows of IUnits with labels and
    distributions, plus Algorithms 1 and 2 (:meth:`similar_iunits`,
    :meth:`value_distance`).  It has no backing table, so there is no
    re-clustering or predicate evaluation.
    """

    def __init__(
        self,
        name: str,
        pivot_attribute: str,
        pivot_values: Sequence[str],
        compare_attributes: Sequence[str],
        tau: float,
        rows: Mapping[str, Sequence[IUnit]],
        labels: Mapping[str, Sequence[str]],
        label_selectors: Mapping[str, Mapping[str, str]],
    ):
        self.name = name
        self.pivot_attribute = pivot_attribute
        self.pivot_values = tuple(pivot_values)
        self.compare_attributes = tuple(compare_attributes)
        self.tau = float(tau)
        self.rows = {v: tuple(rows[v]) for v in self.pivot_values}
        self.labels = {a: tuple(l) for a, l in labels.items()}
        self.label_selectors = {
            a: dict(m) for a, m in label_selectors.items()
        }

    def row(self, value: str) -> Tuple[IUnit, ...]:
        """The ranked IUnits of one pivot value."""
        try:
            return self.rows[value]
        except KeyError:
            raise CADViewError(
                f"pivot value {value!r} not in view"
            ) from None

    def iunit(self, value: str, iunit_id: int) -> IUnit:
        """IUnit by (pivot value, 1-based id)."""
        row = self.row(value)
        if not 1 <= iunit_id <= len(row):
            raise CADViewError(f"IUnit id {iunit_id} out of range")
        return row[iunit_id - 1]

    def similar_iunits(
        self, value: str, iunit_id: int, threshold: float = None
    ) -> List[Tuple[Tuple[str, int], float]]:
        """Algorithm 1 over the reconstructed IUnits."""
        anchor = self.iunit(value, iunit_id)
        threshold = self.tau if threshold is None else threshold
        hits = []
        for v in self.pivot_values:
            for unit in self.rows[v]:
                if v == value and unit.uid == iunit_id:
                    continue
                sim = iunit_similarity(anchor, unit)
                if sim >= threshold:
                    hits.append(((v, unit.uid), sim))
        hits.sort(key=lambda h: (-h[1], h[0]))
        return hits

    def value_distance(self, x: str, y: str) -> float:
        """Algorithm 2 over the reconstructed IUnits."""
        return ranked_list_distance(self.row(x), self.row(y), self.tau)

    def selector_for(self, attribute: str, label: str) -> str:
        """The SQL predicate a front-end attaches to a clicked label."""
        try:
            return self.label_selectors[attribute][label]
        except KeyError:
            raise CADViewError(
                f"no selector for {attribute!r}={label!r}"
            ) from None


def from_dict(doc: Mapping) -> SerializedCADView:
    """Reconstruct a :class:`SerializedCADView` from :func:`to_dict`."""
    if doc.get("format") != FORMAT_VERSION:
        raise CADViewError(
            f"unsupported CAD View document format {doc.get('format')!r}"
        )
    compare = tuple(doc["compare_attributes"])
    pivot = doc["pivot_attribute"]
    rows: Dict[str, List[IUnit]] = {}
    for value, units in doc["rows"].items():
        rebuilt = []
        for u in units:
            rebuilt.append(
                IUnit(
                    pivot_attribute=pivot,
                    pivot_value=value,
                    size=int(u["size"]),
                    compare_attributes=compare,
                    distributions={
                        a: np.asarray(u["distributions"][a], dtype=float)
                        for a in compare
                    },
                    display={
                        a: tuple(v) for a, v in u["display"].items()
                    },
                    uid=u["uid"],
                )
            )
        rows[value] = rebuilt
    return SerializedCADView(
        doc["name"],
        pivot,
        doc["pivot_values"],
        compare,
        doc["tau"],
        rows,
        doc["labels"],
        doc["label_selectors"],
    )


def loads(text: str) -> SerializedCADView:
    """Reconstruct from a JSON string."""
    return from_dict(json.loads(text))
