"""Build-time instrumentation for Figures 8–10.

The paper splits the total CAD View construction time into three parts
(Fig. 8): time to compute Compare Attributes, time to generate IUnits,
and "others" (top-k ranking, IUnit and attribute-value similarity).
:class:`BuildProfile` records exactly those buckets.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["BuildProfile"]


@dataclass
class BuildProfile:
    """Wall-clock seconds per build phase."""

    compare_attrs_s: float = 0.0
    iunits_s: float = 0.0
    others_s: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        """Sum of the three buckets (the paper's 'total time')."""
        return self.compare_attrs_s + self.iunits_s + self.others_s

    def record(self, bucket: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` seconds into ``bucket``.

        ``bucket`` is one of ``compare_attrs`` / ``iunits`` / ``others``;
        any other name lands in :attr:`extra` under an explicit
        ``time/`` namespace, so time buckets can never collide with the
        ``count/`` buckets written by :meth:`count` (event counts used
        to silently conflate with seconds here).
        """
        if bucket == "compare_attrs":
            self.compare_attrs_s += elapsed
        elif bucket == "iunits":
            self.iunits_s += elapsed
        elif bucket == "others":
            self.others_s += elapsed
        else:
            if not bucket.startswith(("time/", "count/")):
                bucket = f"time/{bucket}"
            self.extra[bucket] = self.extra.get(bucket, 0.0) + elapsed

    def count(self, name: str, n: float = 1) -> None:
        """Accumulate an event count (not seconds) into ``extra``.

        Counts live under ``count/`` (e.g. the builder's clustering
        ``count/retries``), keeping them distinct from the ``time/``
        buckets :meth:`record` writes.
        """
        key = name if name.startswith("count/") else f"count/{name}"
        self.extra[key] = self.extra.get(key, 0.0) + n

    @contextmanager
    def timed(self, bucket: str) -> Iterator[None]:
        """Accumulate the elapsed time of the with-block into ``bucket``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(bucket, time.perf_counter() - start)

    def as_dict(self) -> Dict[str, float]:
        """All buckets plus the total, as a plain dict."""
        out = {
            "compare_attrs_s": self.compare_attrs_s,
            "iunits_s": self.iunits_s,
            "others_s": self.others_s,
            "total_s": self.total_s,
        }
        out.update(self.extra)
        return out

    def __str__(self) -> str:
        return (
            f"compare_attrs={self.compare_attrs_s * 1e3:.1f}ms "
            f"iunits={self.iunits_s * 1e3:.1f}ms "
            f"others={self.others_s * 1e3:.1f}ms "
            f"total={self.total_s * 1e3:.1f}ms"
        )
