"""Plain-text rendering of a CAD View in the style of paper Table 1.

Each pivot value becomes one multi-line row: the Compare Attributes are
listed in the second column, and each IUnit cell shows that IUnit's
representative values for the attribute on the same line(s).  Labels
that wrap get extra lines in *every* cell of that attribute, so the
attribute rows stay aligned across IUnits.  Optionally a set of
highlighted IUnits (from a ``HIGHLIGHT SIMILAR IUNITS`` statement) is
marked with ``*``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cadview import CADView, IUnitRef

__all__ = ["render_cadview", "render_cadview_markdown"]


def _wrap(text: str, width: int) -> List[str]:
    """Greedy wrap on spaces, hard-splitting over-long words."""
    words = text.split()
    lines: List[str] = []
    current = ""
    for w in words:
        while len(w) > width:
            if current:
                lines.append(current)
                current = ""
            lines.append(w[:width])
            w = w[width:]
        if not current:
            current = w
        elif len(current) + 1 + len(w) <= width:
            current += " " + w
        else:
            lines.append(current)
            current = w
    if current:
        lines.append(current)
    return lines or [""]


def _pad(lines: List[str], height: int) -> List[str]:
    return lines + [""] * (height - len(lines))


def render_cadview(
    cad: CADView,
    cell_width: int = 26,
    highlight: Optional[Iterable[IUnitRef]] = None,
    show_sizes: bool = True,
    show_report: bool = True,
) -> str:
    """Render ``cad`` as an ASCII grid.

    ``highlight`` marks specific IUnits (e.g. the result of
    :meth:`CADView.similar_iunits`) with ``*`` around their size header.
    When the build was partial or degraded, a ``-- build report``
    footer lists every incident and ladder step (suppress with
    ``show_report=False``); clean builds render exactly the bare grid.
    """
    highlighted: Set[Tuple[str, int]] = {
        (ref.pivot_value, ref.iunit_id) for ref in (highlight or [])
    }
    k = max((len(r) for r in cad.rows.values()), default=0)
    pivot_w = max(
        [len(cad.pivot_attribute)] + [len(v) for v in cad.pivot_values]
    ) + 2
    attr_w = max(
        [len("Compare Attrs.")] + [len(a) for a in cad.compare_attributes]
    ) + 2
    inner = cell_width - 2

    headers = [cad.pivot_attribute, "Compare Attrs."] + [
        f"IUnit {i + 1}" for i in range(k)
    ]
    widths = [pivot_w, attr_w] + [cell_width] * k

    def hline() -> str:
        return "+" + "+".join("-" * w for w in widths) + "+"

    def emit(cells: Sequence[List[str]]) -> List[str]:
        height = max(len(c) for c in cells)
        out = []
        for i in range(height):
            parts = []
            for cell, w in zip(cells, widths):
                text = cell[i] if i < len(cell) else ""
                parts.append(" " + text.ljust(w - 1))
            out.append("|" + "|".join(parts) + "|")
        return out

    lines = [hline()]
    lines.extend(emit([[h] for h in headers]))
    lines.append(hline())

    for value in cad.pivot_values:
        row_units = cad.rows[value]
        pivot_cell = [value]
        attr_cell: List[str] = []
        unit_cells: List[List[str]] = [[] for _ in range(k)]

        if show_sizes:
            attr_cell.append("")
            for j in range(k):
                if j < len(row_units):
                    u = row_units[j]
                    mark = "*" if (value, u.uid) in highlighted else ""
                    unit_cells[j].append(f"{mark}(n={u.size}){mark}")
                else:
                    unit_cells[j].append("")

        # attribute-aligned blocks: every cell of an attribute gets the
        # same number of lines (the tallest wrapped label)
        for attr in cad.compare_attributes:
            blocks = []
            for j in range(k):
                if j < len(row_units):
                    blocks.append(
                        _wrap(row_units[j].label_text(attr), inner)
                    )
                else:
                    blocks.append([""])
            height = max(len(b) for b in blocks)
            attr_cell.extend(_pad([attr], height))
            for j in range(k):
                unit_cells[j].extend(_pad(blocks[j], height))

        lines.extend(emit([pivot_cell, attr_cell] + unit_cells))
        lines.append(hline())
    if show_report and not cad.report.clean:
        lines.extend(f"-- build report: {l}" for l in cad.report.lines())
    return "\n".join(lines)


def render_cadview_markdown(
    cad: CADView,
    highlight: Optional[Iterable[IUnitRef]] = None,
) -> str:
    """Render ``cad`` as a GitHub-flavored markdown table.

    One row per (pivot value, Compare Attribute); IUnit cells carry the
    bracketed labels; highlighted IUnits are bolded.
    """
    highlighted: Set[Tuple[str, int]] = {
        (ref.pivot_value, ref.iunit_id) for ref in (highlight or [])
    }
    k = max((len(r) for r in cad.rows.values()), default=0)
    header = (
        [cad.pivot_attribute, "Compare Attr."]
        + [f"IUnit {i + 1}" for i in range(k)]
    )
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join(["---"] * len(header)) + "|",
    ]
    for value in cad.pivot_values:
        units = cad.rows[value]
        size_cells = []
        for j in range(k):
            if j < len(units):
                u = units[j]
                text = f"(n={u.size})"
                if (value, u.uid) in highlighted:
                    text = f"**{text}**"
                size_cells.append(text)
            else:
                size_cells.append("")
        lines.append(
            "| **" + value + "** | | " + " | ".join(size_cells) + " |"
        )
        for attr in cad.compare_attributes:
            cells = []
            for j in range(k):
                if j < len(units):
                    cells.append(units[j].label_text(attr))
                else:
                    cells.append("")
            lines.append(
                "| | " + attr + " | " + " | ".join(cells) + " |"
            )
    return "\n".join(lines)
