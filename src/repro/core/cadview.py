"""The CAD View object and its configuration.

A :class:`CADView` is the tabular structure of paper Table 1: one row
per Pivot Attribute value, a shared ordered list of Compare Attributes,
and the top-k IUnits of each row.  It supports the paper's two in-view
search operations (Sec. 2.1.3): highlighting similar IUnits and
reordering rows by similarity to a preferred pivot value.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.discretize.discretizer import DiscretizedView
from repro.errors import CADViewError
from repro.core.profile import BuildProfile
from repro.iunits.iunit import IUnit
from repro.iunits.similarity import (
    default_tau,
    iunit_similarity,
    ranked_list_distance,
)

__all__ = ["CADViewConfig", "IUnitRef", "CADView"]


@dataclass(frozen=True)
class CADViewConfig:
    """All knobs of CAD View construction.

    Mirrors the query model of Sec. 2.1.2 plus the assumptions of
    Sec. 2.2.1 and the optimizations of Sec. 6.3.

    compare_limit:
        ``LIMIT COLUMNS M`` — total Compare Attributes (user-pinned +
        auto-selected).
    iunits_k:
        ``IUNITS K`` — IUnits displayed per pivot value.
    generated_l:
        Candidate clusters per pivot value; ``None`` uses the paper's
        system-tuning default ``l = 1.5 k`` (at least ``k + 2``).
    alpha:
        Significance gate for Compare Attribute relevance.
    tau_alpha:
        Similarity threshold factor: ``tau = tau_alpha * |I|``.
    nbins / strategy:
        Discretization of numeric attributes.
    max_display / label_alpha / min_share:
        Labeling thresholds (see :class:`LabelingConfig`).
    fs_sample / cluster_sample:
        Optimization 1 — row-sample caps (``None`` disables) for feature
        selection and clustering respectively.
    adaptive_l:
        Optimization 2 — generate fewer candidates on broad result sets.
    seed:
        RNG seed for clustering.
    exact_topk:
        Use div-astar (True) or the greedy baseline (False).
    """

    compare_limit: int = 5
    iunits_k: int = 3
    generated_l: Optional[int] = None
    alpha: float = 0.05
    tau_alpha: float = 0.7
    nbins: int = 6
    strategy: str = "width"
    max_display: int = 2
    label_alpha: float = 0.05
    min_share: float = 0.15
    fs_sample: Optional[int] = None
    cluster_sample: Optional[int] = None
    adaptive_l: bool = False
    seed: int = 0
    exact_topk: bool = True

    def effective_l(self, result_size: int = 0) -> int:
        """Candidate cluster count, honoring ``adaptive_l`` (Sec. 6.3)."""
        if self.generated_l is not None:
            l = self.generated_l
        else:
            l = max(self.iunits_k + 2, int(round(1.5 * self.iunits_k)))
        if self.adaptive_l and result_size > 20_000:
            # broad exploration stage: summarize, do not over-generate
            l = min(l, max(self.iunits_k, 6))
        return l

    def with_(self, **kwargs) -> "CADViewConfig":
        """A modified copy (dataclass ``replace`` convenience)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class IUnitRef:
    """Address of one IUnit inside a CAD View: (pivot value, 1-based id)."""

    pivot_value: str
    iunit_id: int

    def __str__(self) -> str:
        return f"({self.pivot_value}, {self.iunit_id})"


class CADView:
    """The built Conditional Attribute Dependency View.

    Rows preserve the order of ``pivot_values``; each row holds up to
    ``k`` ranked IUnits (``uid`` 1..k).  The originating discretized
    result set is kept for label/selection round-trips.
    """

    def __init__(
        self,
        name: str,
        pivot_attribute: str,
        pivot_values: Sequence[str],
        compare_attributes: Sequence[str],
        rows: Mapping[str, Sequence[IUnit]],
        view: DiscretizedView,
        config: CADViewConfig,
        profile: Optional[BuildProfile] = None,
        candidates: Optional[Mapping[str, Sequence[IUnit]]] = None,
        report: Optional["BuildReport"] = None,
    ):
        self.name = name
        self.pivot_attribute = pivot_attribute
        self.pivot_values = tuple(pivot_values)
        self.compare_attributes = tuple(compare_attributes)
        self.rows: Dict[str, Tuple[IUnit, ...]] = {
            v: tuple(rows[v]) for v in self.pivot_values
        }
        self.view = view
        self.config = config
        self.profile = profile or BuildProfile()
        self.candidates: Dict[str, Tuple[IUnit, ...]] = {
            v: tuple((candidates or rows)[v]) for v in self.pivot_values
        }
        if report is None:
            from repro.robustness.report import BuildReport

            report = BuildReport(profile=self.profile)
        self.report = report

    @property
    def is_partial(self) -> bool:
        """True when the build dropped at least one pivot value."""
        return self.report.partial

    @property
    def is_degraded(self) -> bool:
        """True when any phase ran below its exact algorithm."""
        return self.report.degraded

    # -- lookups ----------------------------------------------------------

    @property
    def tau(self) -> float:
        """The similarity threshold used by the view's operations."""
        return default_tau(len(self.compare_attributes), self.config.tau_alpha)

    def row(self, pivot_value: str) -> Tuple[IUnit, ...]:
        """The ranked IUnits of one pivot value."""
        try:
            return self.rows[pivot_value]
        except KeyError:
            raise CADViewError(
                f"pivot value {pivot_value!r} not in view "
                f"(have {list(self.pivot_values)})"
            ) from None

    def iunit(self, pivot_value: str, iunit_id: int) -> IUnit:
        """IUnit by (pivot value, 1-based id)."""
        row = self.row(pivot_value)
        if not 1 <= iunit_id <= len(row):
            raise CADViewError(
                f"IUnit id {iunit_id} out of range for {pivot_value!r} "
                f"(row has {len(row)})"
            )
        return row[iunit_id - 1]

    def all_iunits(self) -> List[IUnit]:
        """Every displayed IUnit, row by row."""
        return [u for v in self.pivot_values for u in self.rows[v]]

    # -- Sec. 2.1.3 operations ---------------------------------------------

    def similar_iunits(
        self,
        pivot_value: str,
        iunit_id: int,
        threshold: Optional[float] = None,
        include_self: bool = False,
    ) -> List[Tuple[IUnitRef, float]]:
        """Problem 3 / the ``HIGHLIGHT SIMILAR IUNITS`` statement.

        Returns refs of displayed IUnits whose Algorithm-1 similarity to
        the anchor meets ``threshold`` (default: the view's ``tau``),
        best first.
        """
        anchor = self.iunit(pivot_value, iunit_id)
        threshold = self.tau if threshold is None else threshold
        hits: List[Tuple[IUnitRef, float]] = []
        for value in self.pivot_values:
            for unit in self.rows[value]:
                if (
                    not include_self
                    and value == pivot_value
                    and unit.uid == iunit_id
                ):
                    continue
                sim = iunit_similarity(anchor, unit)
                if sim >= threshold:
                    hits.append((IUnitRef(value, unit.uid), sim))
        hits.sort(key=lambda h: (-h[1], h[0].pivot_value, h[0].iunit_id))
        return hits

    def value_distance(
        self, x: str, y: str, tau: Optional[float] = None
    ) -> float:
        """Problem 4: Algorithm-2 distance between two pivot values.

        ``tau`` overrides the view's similarity threshold — useful when
        the default is too strict for any cross-row IUnits to qualify
        as similar (every distance then degenerates to the maximum).
        """
        tau = self.tau if tau is None else tau
        return ranked_list_distance(self.row(x), self.row(y), tau)

    def reorder_by_similarity(
        self, preferred: str, tau: Optional[float] = None
    ) -> "CADView":
        """The ``REORDER ROWS`` statement.

        A new view whose rows start with ``preferred`` and continue in
        increasing Algorithm-2 distance (decreasing similarity).
        """
        self.row(preferred)  # validate
        others = [v for v in self.pivot_values if v != preferred]
        others.sort(
            key=lambda v: (self.value_distance(preferred, v, tau), v)
        )
        order = [preferred] + others
        return CADView(
            self.name,
            self.pivot_attribute,
            order,
            self.compare_attributes,
            self.rows,
            self.view,
            self.config,
            self.profile,
            self.candidates,
            self.report,
        )

    # -- misc ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"CADView({self.name!r}, pivot={self.pivot_attribute!r}, "
            f"values={list(self.pivot_values)}, "
            f"compare={list(self.compare_attributes)})"
        )


_ = field
