"""Decision-tree categorization of query results (the [4]/[6] baseline).

The paper's related work contrasts the CAD View with automatic query
result categorization (Chakrabarti et al., SIGMOD 2004; Chen & Li,
SIGMOD 2007): build a navigation tree over the result set whose nodes
partition tuples by attribute values, so users drill down instead of
paging.  "A central property of these algorithms is that they depend on
the data and are independent of the user's interest" — which is exactly
what the E-CAT ablation bench demonstrates against the CAD View.

The greedy construction picks, at every node, the attribute with the
highest value entropy among those not yet used on the path (maximal
fan-out information), stopping at ``max_depth`` or when a partition is
smaller than ``min_leaf``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.discretize.discretizer import DiscretizedView
from repro.errors import QueryError

__all__ = ["CategoryNode", "CategoryTree"]


@dataclass
class CategoryNode:
    """One node of the category tree.

    ``path`` is the (attribute, value-label) trail from the root;
    internal nodes carry the splitting ``attribute`` and ``children``
    keyed by value label; leaves carry the member row count.
    """

    path: Tuple[Tuple[str, str], ...]
    size: int
    attribute: Optional[str] = None
    children: Dict[str, "CategoryNode"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        """True when this node does not split further."""
        return self.attribute is None

    def label(self) -> str:
        """The readable path label, e.g. ``Drivetrain=4WD / Engine=V6``."""
        if not self.path:
            return "(all)"
        return " / ".join(f"{a}={v}" for a, v in self.path)


class CategoryTree:
    """A navigation tree over a discretized result set."""

    def __init__(self, root: CategoryNode, attributes: Tuple[str, ...]):
        self.root = root
        self.attributes = attributes

    @classmethod
    def fit(
        cls,
        view: DiscretizedView,
        attributes: Optional[Sequence[str]] = None,
        max_depth: int = 3,
        min_leaf: int = 20,
        max_fanout: int = 12,
    ) -> "CategoryTree":
        """Build the tree over ``view``.

        Attributes with more than ``max_fanout`` values never split (a
        navigation menu that wide is useless), matching the cardinality
        constraints of the cited systems.
        """
        names = tuple(attributes) if attributes else view.attribute_names
        if max_depth < 1:
            raise QueryError("max_depth must be >= 1")
        for n in names:
            if n not in view:
                raise QueryError(f"attribute {n!r} not in view")

        def entropy(codes: np.ndarray, card: int) -> float:
            valid = codes[codes >= 0]
            if valid.size == 0:
                return 0.0
            counts = np.bincount(valid, minlength=card).astype(float)
            p = counts[counts > 0] / valid.size
            return float(-(p * np.log2(p)).sum())

        def build(
            mask: np.ndarray,
            path: Tuple[Tuple[str, str], ...],
            used: frozenset,
            depth: int,
        ) -> CategoryNode:
            size = int(mask.sum())
            node = CategoryNode(path, size)
            if depth >= max_depth or size < 2 * min_leaf:
                return node
            best_attr, best_h = None, 0.0
            for name in names:
                if name in used or view.ncodes(name) > max_fanout:
                    continue
                h = entropy(view.codes(name)[mask], view.ncodes(name))
                if h > best_h:
                    best_h, best_attr = h, name
            if best_attr is None:
                return node
            node.attribute = best_attr
            codes = view.codes(best_attr)
            for code, label in enumerate(view.labels(best_attr)):
                child_mask = mask & (codes == code)
                if int(child_mask.sum()) < min_leaf:
                    continue
                node.children[label] = build(
                    child_mask,
                    path + ((best_attr, label),),
                    used | {best_attr},
                    depth + 1,
                )
            if not node.children:
                node.attribute = None
            return node

        root = build(
            np.ones(len(view), dtype=bool), (), frozenset(), 0
        )
        return cls(root, names)

    # -- views ------------------------------------------------------------

    def leaves(self) -> List[CategoryNode]:
        """All leaf categories, in depth-first order."""
        out: List[CategoryNode] = []

        def walk(node: CategoryNode) -> None:
            if node.is_leaf:
                out.append(node)
                return
            for label in sorted(node.children):
                walk(node.children[label])

        walk(self.root)
        return out

    def depth(self) -> int:
        """Levels of splitting below the root."""
        def walk(node: CategoryNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(c) for c in node.children.values())

        return walk(self.root)

    def describe(self, max_lines: int = 40) -> str:
        """An indented text rendering of the tree."""
        lines: List[str] = []

        def walk(node: CategoryNode, indent: int) -> None:
            if len(lines) >= max_lines:
                return
            head = node.path[-1] if node.path else None
            text = f"{head[0]}={head[1]}" if head else "(all)"
            lines.append("  " * indent + f"{text}  [{node.size}]")
            for label in sorted(node.children):
                walk(node.children[label], indent + 1)

        walk(self.root, 0)
        if len(lines) >= max_lines:
            lines.append("  ...")
        return "\n".join(lines)

    def navigation_cost(self) -> float:
        """Expected number of category labels a user scans to reach a
        tuple's leaf (the cited systems' optimization target)."""
        total = self.root.size or 1

        def walk(node: CategoryNode) -> float:
            if node.is_leaf:
                return 0.0
            fanout = len(node.children)
            below = sum(walk(c) for c in node.children.values())
            covered = sum(c.size for c in node.children.values())
            return fanout * (covered / total) + below

        return walk(self.root)
