"""repro - DBExplorer: Exploratory Search in Databases (EDBT 2016).

A from-scratch reproduction of Singh, Cafarella & Jagadish's DBExplorer:
the Conditional Attribute Dependency (CAD) View data-summarization
technique, its faceted-navigation integration (TPFacet), and the paper's
full evaluation (user-study tasks and performance figures).

Quickstart::

    from repro import DBExplorer, generate_usedcars

    dbx = DBExplorer()
    dbx.register("UsedCars", generate_usedcars(40_000))
    cad = dbx.execute('''
        CREATE CADVIEW CompareMakes AS
        SET pivot = Make
        SELECT Price
        FROM UsedCars
        WHERE Mileage BETWEEN 10K AND 30K AND Transmission = Automatic
          AND BodyType = SUV
          AND Make IN (Jeep, Toyota, Honda, Ford, Chevrolet)
        LIMIT COLUMNS 5 IUNITS 3''')
    print(dbx.render("CompareMakes"))
"""

from repro.core import (
    BuildProfile,
    CADView,
    CADViewBuilder,
    CADViewConfig,
    DBExplorer,
    IUnitRef,
    render_cadview,
)
from repro.dataset import AttrKind, Attribute, Column, Schema, Table
from repro.dataset.generators import (
    generate_mushroom,
    generate_usedcars,
    mushroom_schema,
    usedcars_schema,
)
from repro.errors import (
    BudgetExceededError,
    CADViewError,
    ConvergenceError,
    EmptyResultError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
)
from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    registry,
    render_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.robustness import Budget, BuildReport, Fault, FaultInjector
from repro.iunits import IUnit, iunit_similarity, ranked_list_distance
from repro.query import (
    And, Between, Cmp, Eq, In, IsMissing, Ne, Not, Or, Predicate,
    QueryEngine, TruePred, parse, parse_predicate,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "DBExplorer", "CADView", "CADViewBuilder", "CADViewConfig",
    "IUnitRef", "BuildProfile", "render_cadview",
    # dataset
    "AttrKind", "Attribute", "Schema", "Column", "Table",
    "generate_usedcars", "usedcars_schema",
    "generate_mushroom", "mushroom_schema",
    # iunits
    "IUnit", "iunit_similarity", "ranked_list_distance",
    # query
    "Predicate", "TruePred", "Eq", "Ne", "In", "Between", "Cmp",
    "IsMissing", "And", "Or", "Not", "QueryEngine",
    "parse", "parse_predicate",
    # errors
    "ReproError", "SchemaError", "UnknownAttributeError",
    "TypeMismatchError", "QueryError", "ParseError", "CADViewError",
    "EmptyResultError", "ConvergenceError", "BudgetExceededError",
    # robustness
    "Budget", "BuildReport", "Fault", "FaultInjector",
    # observability
    "Tracer", "Span", "MetricsRegistry", "registry", "render_trace",
    "to_chrome_trace", "write_chrome_trace", "write_metrics",
]
