"""Binning strategies for numeric attributes.

The paper requires "attribute value cardinality reduction ... as a
pre-processing step" (Sec. 2.2.1), suggesting histogram-construction
techniques [Jagadish & Suel].  This module provides the classic
equi-width and equi-depth schemes; :mod:`repro.discretize.histogram`
adds the V-optimal scheme from that reference.

A :class:`Bin` is a closed-open interval ``[lo, hi)`` except the last
bin of a binning, which is closed on both ends so the maximum belongs
somewhere.  Bin labels use the paper's compact style: ``[15K-20K]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import QueryError
from repro.query.predicates import Between, Predicate

__all__ = ["Bin", "format_number", "equal_width_bins", "equal_depth_bins",
           "bin_indices"]


def format_number(x: float) -> str:
    """Human format with K/M abbreviation, Table-1 style.

    >>> format_number(25000)
    '25K'
    >>> format_number(2011)
    '2011'
    >>> format_number(17.5)
    '17.5'
    """
    if abs(x) >= 1_000_000 and x == round(x / 100_000) * 100_000:
        v = x / 1_000_000
        return f"{v:.1f}".rstrip("0").rstrip(".") + "M"
    if abs(x) >= 5_000 and x == round(x / 500) * 500:
        v = x / 1_000
        return f"{v:.1f}".rstrip("0").rstrip(".") + "K"
    if x == int(x):
        return str(int(x))
    return f"{x:g}"


@dataclass(frozen=True)
class Bin:
    """One value range produced by a binning strategy."""

    lo: float
    hi: float
    closed_hi: bool = False

    @property
    def label(self) -> str:
        """Compact range label, e.g. ``15K-20K`` or ``2011-2012``.

        Degenerate single-value bins label as the bare value.
        """
        if self.lo == self.hi:
            return format_number(self.lo)
        return f"{format_number(self.lo)}-{format_number(self.hi)}"

    def contains(self, x: float) -> bool:
        """Membership test honoring the closed/open upper end."""
        if self.closed_hi:
            return self.lo <= x <= self.hi
        return self.lo <= x < self.hi

    def predicate(self, attr: str) -> Predicate:
        """A selectable predicate equivalent to this bin.

        Uses BETWEEN, which is inclusive; for open-ended bins we nudge
        the upper bound just below ``hi``.  This is how an IUnit label
        like ``Price [15K-20K]`` becomes a query the user can apply
        (paper Limitation 2: selecting via surrogate queriable ranges).
        """
        hi = self.hi if self.closed_hi else np.nextafter(self.hi, -np.inf)
        return Between(attr, self.lo, hi)

    def __str__(self) -> str:
        return self.label


def _validate(values: np.ndarray, nbins: int) -> np.ndarray:
    if nbins < 1:
        raise QueryError(f"nbins must be >= 1, got {nbins}")
    values = np.asarray(values, dtype=float)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise QueryError("cannot bin an all-missing column")
    return values


def _bins_from_edges(edges: Sequence[float]) -> List[Bin]:
    bins = []
    for i in range(len(edges) - 1):
        bins.append(
            Bin(float(edges[i]), float(edges[i + 1]),
                closed_hi=(i == len(edges) - 2))
        )
    return bins


def equal_width_bins(values: Sequence[float], nbins: int) -> List[Bin]:
    """Split ``[min, max]`` into ``nbins`` equal-width ranges.

    Edges are snapped to "round" numbers (1-2-5 grid) so labels read like
    the paper's ``[25K-30K]`` rather than ``[24,713-29,821]``.
    """
    vals = _validate(values, nbins)
    lo, hi = float(vals.min()), float(vals.max())
    if lo == hi:
        return [Bin(lo, hi, closed_hi=True)]
    raw_step = (hi - lo) / nbins
    # snap the step to a 1/2/2.5/5 x 10^k grid; allow a slightly smaller
    # step (down to 3/4 of raw) so we do not drastically under-bin
    mag = 10.0 ** np.floor(np.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= 0.75 * raw_step:
            break
    start = np.floor(lo / step) * step
    edges = [start]
    while edges[-1] < hi:
        edges.append(edges[-1] + step)
    return _bins_from_edges(edges)


def equal_depth_bins(values: Sequence[float], nbins: int) -> List[Bin]:
    """Quantile (equi-depth) binning: roughly equal tuple counts per bin.

    Duplicate quantile edges (heavy ties) are merged, so the result may
    have fewer than ``nbins`` bins.
    """
    vals = _validate(values, nbins)
    qs = np.linspace(0.0, 1.0, nbins + 1)
    edges = np.quantile(vals, qs)
    edges = np.unique(edges)
    if len(edges) == 1:
        return [Bin(float(edges[0]), float(edges[0]), closed_hi=True)]
    return _bins_from_edges(edges)


def bin_indices(values: Sequence[float], bins: Sequence[Bin]) -> np.ndarray:
    """Index of the bin containing each value; ``-1`` for missing/outside.

    Vectorized via ``searchsorted`` on the bin edges.
    """
    values = np.asarray(values, dtype=float)
    edges = np.array([b.lo for b in bins] + [bins[-1].hi])
    idx = np.searchsorted(edges, values, side="right") - 1
    # the maximum value belongs in the last (closed) bin
    idx[values == bins[-1].hi] = len(bins) - 1
    out_of_range = (idx < 0) | (idx >= len(bins)) | np.isnan(values)
    idx = np.where(out_of_range, -1, idx)
    return idx.astype(np.int32)
