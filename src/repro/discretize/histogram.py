"""V-optimal histogram construction (Jagadish et al., VLDB 1998).

The paper points to "the well-developed techniques in histogram
construction [17]" for its binning pre-processing step.  Reference [17]
is Jagadish & Suel's *Optimal Histograms with Quality Guarantees*, whose
canonical V-optimal algorithm chooses bucket boundaries minimizing the
total within-bucket variance of frequencies, by dynamic programming.

We implement the exact O(D^2 * B) DP over the D distinct sorted values
(D is capped by pre-aggregation, which does not change the optimum for
the capped problem), plus a helper that converts the optimal partition
into :class:`~repro.discretize.binning.Bin` ranges.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.discretize.binning import Bin
from repro.errors import QueryError

__all__ = ["v_optimal_partition", "v_optimal_bins"]


def _sse_table(weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Prefix sums enabling O(1) SSE queries over weight ranges."""
    prefix = np.concatenate([[0.0], np.cumsum(weights)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(weights ** 2)])
    return prefix, prefix_sq


def _sse(prefix: np.ndarray, prefix_sq: np.ndarray, i: int, j: int) -> float:
    """Sum of squared errors of weights[i:j] around their mean."""
    n = j - i
    s = prefix[j] - prefix[i]
    sq = prefix_sq[j] - prefix_sq[i]
    return float(sq - s * s / n)


def v_optimal_partition(
    weights: Sequence[float], nbuckets: int
) -> List[Tuple[int, int]]:
    """Optimal partition of ``weights`` into ``<= nbuckets`` runs.

    Returns ``[(start, end), ...]`` half-open index ranges minimizing the
    summed within-run variance (the V-optimal objective).  Runs the
    classic DP: ``opt[b][j]`` = best error for the first ``j`` items in
    ``b`` buckets.
    """
    w = np.asarray(weights, dtype=float)
    n = len(w)
    if n == 0:
        raise QueryError("cannot partition an empty sequence")
    if nbuckets < 1:
        raise QueryError(f"nbuckets must be >= 1, got {nbuckets}")
    nbuckets = min(nbuckets, n)
    prefix, prefix_sq = _sse_table(w)

    INF = float("inf")
    # opt[b][j]: min error splitting first j items into exactly b buckets
    opt = np.full((nbuckets + 1, n + 1), INF)
    back = np.zeros((nbuckets + 1, n + 1), dtype=np.int64)
    opt[0][0] = 0.0
    for b in range(1, nbuckets + 1):
        for j in range(b, n + 1):
            best, best_i = INF, b - 1
            for i in range(b - 1, j):
                if opt[b - 1][i] == INF:
                    continue
                cost = opt[b - 1][i] + _sse(prefix, prefix_sq, i, j)
                if cost < best:
                    best, best_i = cost, i
            opt[b][j] = best
            back[b][j] = best_i

    # choose the bucket count with the best error (more buckets never hurt,
    # so this is nbuckets unless n < nbuckets)
    b = int(np.argmin(opt[1:, n])) + 1
    ranges: List[Tuple[int, int]] = []
    j = n
    while b > 0:
        i = int(back[b][j])
        ranges.append((i, j))
        j = i
        b -= 1
    ranges.reverse()
    return ranges


def v_optimal_bins(
    values: Sequence[float], nbins: int, max_distinct: int = 256
) -> List[Bin]:
    """V-optimal binning of raw ``values`` into at most ``nbins`` ranges.

    Builds the frequency vector over distinct values (pre-aggregated to
    ``max_distinct`` equi-width micro-buckets when there are more
    distinct values than that, which keeps the DP tractable), runs the
    exact DP, and converts the partition into bins.
    """
    vals = np.asarray(values, dtype=float)
    vals = vals[~np.isnan(vals)]
    if vals.size == 0:
        raise QueryError("cannot bin an all-missing column")
    uniq, counts = np.unique(vals, return_counts=True)
    if len(uniq) > max_distinct:
        # pre-aggregate to micro-buckets; DP then merges micro-buckets
        edges = np.linspace(uniq[0], uniq[-1], max_distinct + 1)
        idx = np.clip(np.searchsorted(edges, uniq, side="right") - 1,
                      0, max_distinct - 1)
        agg_counts = np.zeros(max_distinct)
        np.add.at(agg_counts, idx, counts)
        # zero-count micro-buckets stay: empty value ranges are exactly
        # what V-optimal boundaries should snap to
        lo_edges = edges[:-1]
        hi_edges = edges[1:]
        counts = agg_counts
    else:
        lo_edges = uniq
        hi_edges = uniq

    ranges = v_optimal_partition(counts, nbins)
    bins: List[Bin] = []
    for bi, (i, j) in enumerate(ranges):
        lo = float(lo_edges[i])
        if bi + 1 < len(ranges):
            hi = float(lo_edges[j])  # next bucket's start
        else:
            hi = float(hi_edges[j - 1])
        last = bi == len(ranges) - 1
        if not last and hi <= lo:
            hi = np.nextafter(lo, np.inf)
        bins.append(Bin(lo, hi, closed_hi=last))
    return bins
