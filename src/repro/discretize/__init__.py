"""Discretization: binning strategies, V-optimal histograms, Discretizer."""

from repro.discretize.binning import (
    Bin,
    bin_indices,
    equal_depth_bins,
    equal_width_bins,
    format_number,
)
from repro.discretize.discretizer import DiscretizedView, Discretizer
from repro.discretize.histogram import v_optimal_bins, v_optimal_partition

__all__ = [
    "Bin", "format_number", "equal_width_bins", "equal_depth_bins",
    "bin_indices", "v_optimal_partition", "v_optimal_bins",
    "Discretizer", "DiscretizedView",
]
