"""The discretization pipeline: Table -> all-categorical DiscretizedView.

The CAD View machinery (feature selection, clustering, IUnit labeling)
works on a uniformly categorical encoding of the result set: categorical
attributes keep their codes; numeric attributes are binned into ranges
(paper Sec. 2.2.1 and 3.1.2, "To label both categorical and numerical
attributes in uniform manner, we discretize the numerical attributes").

Because discretization is (re)fit on the *current result set*, the
ranges are context dependent — exactly why Mary's Year ranges come out
as ``2011-2012`` once she has selected low-mileage cars.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.table import Table
from repro.discretize.binning import (
    Bin, bin_indices, equal_depth_bins, equal_width_bins, format_number,
)
from repro.discretize.histogram import v_optimal_bins
from repro.errors import QueryError
from repro.query.predicates import Eq, Predicate

__all__ = ["Discretizer", "DiscretizedView"]

_STRATEGIES = {
    "width": equal_width_bins,
    "depth": equal_depth_bins,
    "voptimal": v_optimal_bins,
}


class DiscretizedView:
    """An all-categorical view over the rows of a source table.

    For every attribute ``a`` the view provides an ``int32`` code array
    aligned with the source rows (``-1`` = missing), a label per code,
    and a way back from a code to a selectable :class:`Predicate`.
    """

    def __init__(
        self,
        table: Table,
        codes: Mapping[str, np.ndarray],
        labels: Mapping[str, Tuple[str, ...]],
        bins: Mapping[str, Tuple[Bin, ...]],
    ):
        self.table = table
        self._codes = dict(codes)
        self._labels = dict(labels)
        self._bins = dict(bins)

    # -- introspection ---------------------------------------------------

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """The attributes covered by this view, in fit order."""
        return tuple(self._codes)

    def __contains__(self, name: str) -> bool:
        return name in self._codes

    def __len__(self) -> int:
        return len(self.table)

    def codes(self, name: str) -> np.ndarray:
        """Aligned int32 code array for ``name``."""
        self._check(name)
        return self._codes[name]

    def labels(self, name: str) -> Tuple[str, ...]:
        """Label per code for ``name`` (index == code)."""
        self._check(name)
        return self._labels[name]

    def ncodes(self, name: str) -> int:
        """Domain size of ``name`` in this view."""
        return len(self.labels(name))

    def label_of(self, name: str, code: int) -> str:
        """Decoded label for one code (``?`` for missing)."""
        if code < 0:
            return "?"
        return self.labels(name)[code]

    def code_of(self, name: str, label: str) -> int:
        """Code for a label, or ``-1`` if no such label."""
        try:
            return self.labels(name).index(label)
        except ValueError:
            return -1

    def is_binned(self, name: str) -> bool:
        """True if ``name`` was numeric and got binned."""
        return name in self._bins

    def bins(self, name: str) -> Tuple[Bin, ...]:
        """The bins of a binned attribute."""
        self._check(name)
        if name not in self._bins:
            raise QueryError(f"{name!r} is categorical, not binned")
        return self._bins[name]

    def predicate_for(self, name: str, code: int) -> Predicate:
        """A predicate selecting source rows carrying this code.

        Categorical -> ``Eq``, binned numeric -> ``Between``.  This is
        what makes IUnit labels actionable: every displayed value maps
        to a selection the user can apply.
        """
        self._check(name)
        if name in self._bins:
            return self._bins[name][code].predicate(name)
        return Eq(name, self.labels(name)[code])

    def matrix(self, names: Sequence[str]) -> np.ndarray:
        """(n_rows, len(names)) int32 matrix of codes."""
        return np.column_stack([self.codes(n) for n in names]).astype(np.int32)

    def restrict(self, mask: np.ndarray) -> "DiscretizedView":
        """The view restricted to rows where ``mask`` is True.

        Labels/bins are shared; code arrays are sliced.  Used to carve
        out the per-pivot-value partitions that get clustered.
        """
        mask = np.asarray(mask, dtype=bool)
        return DiscretizedView(
            self.table.filter(mask),
            {n: c[mask] for n, c in self._codes.items()},
            self._labels,
            self._bins,
        )

    def value_counts(self, name: str) -> Dict[str, int]:
        """Label -> count over this view's rows (missing excluded)."""
        codes = self.codes(name)
        valid = codes[codes >= 0]
        counts = np.bincount(valid, minlength=self.ncodes(name))
        labels = self.labels(name)
        return {labels[i]: int(c) for i, c in enumerate(counts) if c > 0}

    def _check(self, name: str) -> None:
        if name not in self._codes:
            raise QueryError(
                f"attribute {name!r} not in discretized view "
                f"(have {list(self._codes)})"
            )


class Discretizer:
    """Fits a :class:`DiscretizedView` over a table.

    Parameters
    ----------
    strategy:
        ``"width"`` (equi-width with round edges, the default — it gives
        the paper's clean ``[25K-30K]`` style labels), ``"depth"``
        (equi-depth/quantile), or ``"voptimal"`` (Jagadish–Suel).
    nbins:
        Default number of bins for numeric attributes.
    nbins_overrides:
        Optional per-attribute bin-count overrides.
    max_direct_ordinal:
        Ordinal attributes with at most this many distinct values are
        used directly (label per integer value) rather than binned —
        ``Year`` with a handful of model years reads better as
        ``2011-2012`` pairs than as wide bins.
    """

    def __init__(
        self,
        strategy: str = "width",
        nbins: int = 6,
        nbins_overrides: Optional[Mapping[str, int]] = None,
        max_direct_ordinal: int = 12,
    ):
        if strategy not in _STRATEGIES:
            raise QueryError(
                f"unknown strategy {strategy!r}; choose from {sorted(_STRATEGIES)}"
            )
        self.strategy = strategy
        self.nbins = nbins
        self.nbins_overrides = dict(nbins_overrides or {})
        self.max_direct_ordinal = max_direct_ordinal

    def _nbins_for(self, name: str) -> int:
        return self.nbins_overrides.get(name, self.nbins)

    def fit(
        self, table: Table, names: Optional[Sequence[str]] = None
    ) -> DiscretizedView:
        """Discretize ``table`` (all attributes, or just ``names``)."""
        names = tuple(names) if names is not None else table.schema.names
        codes: Dict[str, np.ndarray] = {}
        labels: Dict[str, Tuple[str, ...]] = {}
        bins: Dict[str, Tuple[Bin, ...]] = {}
        make_bins = _STRATEGIES[self.strategy]

        for name in names:
            attr = table.schema[name]
            col = table[name]
            if attr.is_categorical:
                # keep only codes that occur; re-map to a dense domain so
                # the view's domain reflects the current result set
                occurring = sorted(set(int(c) for c in col.codes if c >= 0))
                remap = np.full(len(col.categories) + 1, -1, dtype=np.int32)
                for new, old in enumerate(occurring):
                    remap[old] = new
                codes[name] = remap[col.codes]
                labels[name] = tuple(col.categories[o] for o in occurring)
                continue

            nums = col.numbers
            finite = nums[~np.isnan(nums)]
            if finite.size == 0:
                codes[name] = np.full(len(table), -1, dtype=np.int32)
                labels[name] = ()
                bins[name] = ()
                continue
            distinct = np.unique(finite)
            is_small_ordinal = (
                attr.kind.name == "ORDINAL"
                and len(distinct) <= self.max_direct_ordinal
            )
            if is_small_ordinal or len(distinct) <= 2:
                # pair up consecutive ordinals: Year -> 2011-2012, 2009-2010
                blist = _ordinal_pair_bins(distinct)
            else:
                blist = make_bins(finite, self._nbins_for(name))
            codes[name] = bin_indices(nums, blist)
            labels[name] = tuple(b.label for b in blist)
            bins[name] = tuple(blist)

        return DiscretizedView(table, codes, labels, bins)


def _ordinal_pair_bins(distinct: np.ndarray) -> List[Bin]:
    """Bins pairing consecutive ordinal values, newest pair first in data
    order (bins are returned in ascending order; the pairing starts from
    the top so the most recent values share a bin, like the paper's
    ``Year [2011-2012]``)."""
    values = list(map(float, distinct))
    bins: List[Bin] = []
    i = len(values)
    while i > 0:
        j = max(0, i - 2)
        lo, hi = values[j], values[i - 1]
        bins.append(Bin(lo, hi, closed_hi=True))
        i = j
    bins.reverse()
    return bins
