"""Statistics substrate: the paper's mixed-model / LRT analysis."""

from repro.stats.analysis import DisplayEffect, display_effect
from repro.stats.nonparametric import WilcoxonResult, wilcoxon_signed_rank
from repro.stats.mixedlm import (
    LRTResult,
    MixedLMResult,
    fit_mixed_lm,
    likelihood_ratio_test,
)

__all__ = [
    "MixedLMResult", "LRTResult", "fit_mixed_lm", "likelihood_ratio_test",
    "DisplayEffect", "display_effect",
    "WilcoxonResult", "wilcoxon_signed_rank",
]
