"""Linear mixed model with a random intercept, fit by maximum likelihood.

The paper's analysis (Sec. 6.2): "we have performed linear mixed model
statistical analysis.  We use Display type as fixed effect and User ID
as random effect. ... The logic of the likelihood ratio test is to
compare the likelihood of two models ... the model without the factor
(the null model) and then the model with the factor."

Model: ``y = X beta + u[group] + eps``, ``u_g ~ N(0, sigma_u^2)``,
``eps ~ N(0, sigma_e^2)``.  The marginal covariance is block diagonal
(one block per group), so the log-likelihood evaluates in closed form
per group via the Sherman–Morrison identity; the two variance
parameters are optimized on the log scale with Nelder–Mead, and the
fixed effects are profiled out by GLS at each step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.errors import ConvergenceError, QueryError
from repro.features.chi2 import chi2_sf

__all__ = ["MixedLMResult", "LRTResult", "fit_mixed_lm",
           "likelihood_ratio_test"]


@dataclass(frozen=True)
class MixedLMResult:
    """A fitted random-intercept mixed model."""

    beta: np.ndarray          # fixed-effect estimates
    beta_se: np.ndarray       # GLS standard errors
    sigma_u: float            # random-intercept s.d.
    sigma_e: float            # residual s.d.
    loglik: float             # maximized log-likelihood
    n_obs: int
    n_groups: int

    def fixed_effect(self, index: int) -> Tuple[float, float]:
        """(estimate, standard error) of one fixed effect."""
        return float(self.beta[index]), float(self.beta_se[index])


@dataclass(frozen=True)
class LRTResult:
    """Likelihood-ratio comparison of nested mixed models."""

    chi2: float
    df: int
    p_value: float
    full: MixedLMResult
    null: MixedLMResult

    def __str__(self) -> str:
        return f"chi2({self.df}) = {self.chi2:.3f}, p = {self.p_value:.4g}"


def _group_blocks(
    y: np.ndarray, X: np.ndarray, groups: Sequence
) -> List[Tuple[np.ndarray, np.ndarray]]:
    index: Dict[object, List[int]] = {}
    for i, g in enumerate(groups):
        index.setdefault(g, []).append(i)
    return [(y[idx], X[idx]) for idx in map(np.array, index.values())]


def _profile_negloglik(
    log_params: np.ndarray,
    blocks: List[Tuple[np.ndarray, np.ndarray]],
    p: int,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """-loglik at (log sigma_u, log sigma_e) with beta profiled by GLS.

    Returns (negative log-likelihood, beta, cov(beta)).
    Sherman–Morrison: with V = s2e I + s2u J (J all-ones),
    ``V^-1 = (1/s2e)(I - (s2u / (s2e + n s2u)) J)`` and
    ``log|V| = (n-1) log s2e + log(s2e + n s2u)``.
    """
    s2u = float(np.exp(2.0 * log_params[0]))
    s2e = float(np.exp(2.0 * log_params[1]))
    XtVX = np.zeros((p, p))
    XtVy = np.zeros(p)
    logdet = 0.0
    ytVy = 0.0
    n_total = 0
    for yg, Xg in blocks:
        n = len(yg)
        n_total += n
        shrink = s2u / (s2e + n * s2u)
        sum_y = yg.sum()
        sum_X = Xg.sum(axis=0)
        XtVX += (Xg.T @ Xg - shrink * np.outer(sum_X, sum_X)) / s2e
        XtVy += (Xg.T @ yg - shrink * sum_X * sum_y) / s2e
        ytVy += (yg @ yg - shrink * sum_y * sum_y) / s2e
        logdet += (n - 1) * np.log(s2e) + np.log(s2e + n * s2u)
    try:
        cov = np.linalg.inv(XtVX)
    except np.linalg.LinAlgError:
        return np.inf, np.zeros(p), np.eye(p)
    beta = cov @ XtVy
    quad = ytVy - beta @ XtVy
    nll = 0.5 * (logdet + quad + n_total * np.log(2.0 * np.pi))
    return float(nll), beta, cov


def fit_mixed_lm(
    y: Sequence[float],
    X: np.ndarray,
    groups: Sequence,
    seed: int = 0,
) -> MixedLMResult:
    """Fit ``y = X beta + u[group] + eps`` by maximum likelihood.

    ``X`` must include the intercept column if one is wanted.

    Nelder–Mead occasionally collapses from an unlucky start; a
    non-finite optimum gets one retry from a ``seed``-jittered start
    before :class:`ConvergenceError` is raised (chaining the failure
    of the first attempt as its cause).
    """
    y = np.asarray(y, dtype=float)
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[0] != len(y):
        raise QueryError(
            f"X shape {X.shape} incompatible with {len(y)} observations"
        )
    if len(groups) != len(y):
        raise QueryError("groups length must match observations")
    blocks = _group_blocks(y, X, groups)
    p = X.shape[1]

    resid_scale = max(float(np.std(y)), 1e-6)
    start = np.log([resid_scale / 2.0, resid_scale / 2.0])

    def objective(log_params: np.ndarray) -> float:
        return _profile_negloglik(log_params, blocks, p)[0]

    rng = np.random.default_rng(seed)
    first_failure: Optional[ConvergenceError] = None
    opt = None
    for attempt in range(2):
        attempt_start = (
            start if attempt == 0 else start + rng.normal(scale=0.5, size=2)
        )
        opt = minimize(
            objective, attempt_start, method="Nelder-Mead",
            options={"xatol": 1e-8, "fatol": 1e-10, "maxiter": 2000},
        )
        if np.isfinite(opt.fun):
            break
        if first_failure is None:
            first_failure = ConvergenceError(
                f"mixed model likelihood did not evaluate "
                f"(attempt {attempt + 1}, start={attempt_start.tolist()})"
            )
    else:
        raise ConvergenceError(
            "mixed model likelihood did not evaluate after a seeded retry"
        ) from first_failure
    nll, beta, cov = _profile_negloglik(opt.x, blocks, p)
    return MixedLMResult(
        beta=beta,
        beta_se=np.sqrt(np.clip(np.diag(cov), 0.0, None)),
        sigma_u=float(np.exp(opt.x[0])),
        sigma_e=float(np.exp(opt.x[1])),
        loglik=-nll,
        n_obs=len(y),
        n_groups=len(blocks),
    )


def likelihood_ratio_test(
    y: Sequence[float],
    X_full: np.ndarray,
    X_null: np.ndarray,
    groups: Sequence,
) -> LRTResult:
    """LRT of nested mixed models (both fit by ML, as the paper does).

    Degrees of freedom = difference in fixed-effect counts.
    """
    X_full = np.asarray(X_full, dtype=float)
    X_null = np.asarray(X_null, dtype=float)
    if X_null.shape[1] >= X_full.shape[1]:
        raise QueryError("X_null must have fewer columns than X_full")
    full = fit_mixed_lm(y, X_full, groups)
    null = fit_mixed_lm(y, X_null, groups)
    chi2 = max(0.0, 2.0 * (full.loglik - null.loglik))
    df = X_full.shape[1] - X_null.shape[1]
    return LRTResult(chi2, df, chi2_sf(chi2, df), full, null)
