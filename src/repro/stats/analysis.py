"""Paper-style analysis of the user study measurements.

:func:`display_effect` runs exactly the paper's Sec. 6.2 analysis on a
set of (user, display-type, measurement) triples: a random-intercept
mixed model with display type as the fixed effect and user as the
random effect, compared against the intercept-only null model with a
likelihood-ratio test — yielding the ``chi2(1) = ..., p = ...,
effect ± s.e.`` numbers quoted throughout the evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import QueryError
from repro.stats.mixedlm import LRTResult, likelihood_ratio_test

__all__ = ["DisplayEffect", "display_effect"]


@dataclass(frozen=True)
class DisplayEffect:
    """The paper's reporting bundle for one measure."""

    chi2: float
    df: int
    p_value: float
    effect: float        # fixed-effect of TPFacet vs the baseline
    effect_se: float
    baseline_mean: float
    treatment_mean: float

    def __str__(self) -> str:
        return (
            f"chi2({self.df}) = {self.chi2:.2f}, p = {self.p_value:.4g}; "
            f"effect {self.effect:+.3f} +/- {self.effect_se:.3f}"
        )


def display_effect(
    users: Sequence,
    displays: Sequence[str],
    values: Sequence[float],
    treatment: str = "TPFacet",
) -> DisplayEffect:
    """Mixed-model LRT of display type on a measurement.

    Parameters
    ----------
    users / displays / values:
        Parallel sequences: who, on which interface, scored what.
    treatment:
        The display coded 1 (the other level is the baseline).
    """
    if not (len(users) == len(displays) == len(values)):
        raise QueryError("users/displays/values must be parallel")
    levels = sorted(set(displays))
    if len(levels) != 2:
        raise QueryError(f"need exactly 2 display types, got {levels}")
    if treatment not in levels:
        raise QueryError(f"treatment {treatment!r} not in {levels}")
    y = np.asarray(values, dtype=float)
    x = np.array([1.0 if d == treatment else 0.0 for d in displays])
    X_full = np.column_stack([np.ones_like(x), x])
    X_null = np.ones((len(x), 1))
    lrt: LRTResult = likelihood_ratio_test(y, X_full, X_null, users)
    effect, se = lrt.full.fixed_effect(1)
    return DisplayEffect(
        chi2=lrt.chi2,
        df=lrt.df,
        p_value=lrt.p_value,
        effect=effect,
        effect_se=se,
        baseline_mean=float(y[x == 0].mean()),
        treatment_mean=float(y[x == 1].mean()),
    )
