"""Nonparametric paired comparison: the Wilcoxon signed-rank test.

The paper analyzes its crossover measurements with a parametric mixed
model; with eight subjects a distribution-free check is good practice,
so the study tooling also reports Wilcoxon signed-rank on the paired
(Solr, TPFacet) per-user values.

The null distribution of the W+ statistic is computed *exactly* by
dynamic programming for small n (every subset of ranks is equally
likely under H0), falling back to the normal approximation with
tie/continuity corrections for large n.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import ndtr

from repro.errors import QueryError

__all__ = ["WilcoxonResult", "wilcoxon_signed_rank"]


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a signed-rank test."""

    statistic: float      # W+ (sum of ranks of positive differences)
    n: int                # pairs with non-zero difference
    p_value: float        # two-sided
    method: str           # "exact" | "normal"


def _exact_two_sided(w_plus: float, ranks: np.ndarray) -> float:
    """Exact two-sided p via the DP over achievable rank-sum counts.

    ``counts[s]`` = number of sign assignments with W+ == s; ranks may
    be tied (midranks), so sums are scaled x2 to stay integral.
    """
    scaled = np.round(ranks * 2).astype(int)
    total = int(scaled.sum())
    counts = np.zeros(total + 1, dtype=float)
    counts[0] = 1.0
    for r in scaled:
        shifted = np.zeros_like(counts)
        shifted[r:] = counts[:len(counts) - r]
        counts = counts + shifted
    n_assignments = counts.sum()
    w_scaled = int(round(w_plus * 2))
    mean = total / 2.0
    # two-sided: double the smaller tail (with the point mass included)
    lo = counts[: min(w_scaled, total) + 1].sum()
    hi = counts[w_scaled:].sum() if w_scaled <= total else 0.0
    tail = min(lo, hi)
    if w_scaled == mean:
        return 1.0
    return float(min(1.0, 2.0 * tail / n_assignments))


def wilcoxon_signed_rank(
    x: Sequence[float],
    y: Sequence[float],
    exact_max_n: int = 25,
) -> WilcoxonResult:
    """Two-sided Wilcoxon signed-rank test of paired samples.

    Zero differences are dropped (Wilcoxon's original treatment); tied
    absolute differences get midranks.  Exact p for ``n <= exact_max_n``,
    otherwise the normal approximation with tie correction.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise QueryError("x and y must be 1-D and the same length")
    d = x - y
    d = d[d != 0]
    n = d.size
    if n == 0:
        return WilcoxonResult(0.0, 0, 1.0, "exact")

    abs_d = np.abs(d)
    order = np.argsort(abs_d, kind="stable")
    ranks = np.empty(n, dtype=float)
    sorted_abs = abs_d[order]
    i = 0
    rank_values = np.empty(n, dtype=float)
    while i < n:
        j = i
        while j + 1 < n and sorted_abs[j + 1] == sorted_abs[i]:
            j += 1
        rank_values[i:j + 1] = (i + j) / 2.0 + 1.0  # midrank
        i = j + 1
    ranks[order] = rank_values

    w_plus = float(ranks[d > 0].sum())
    if n <= exact_max_n:
        return WilcoxonResult(
            w_plus, n, _exact_two_sided(w_plus, ranks), "exact"
        )

    mean = n * (n + 1) / 4.0
    # tie correction on the variance
    _, tie_counts = np.unique(abs_d, return_counts=True)
    tie_term = float((tie_counts ** 3 - tie_counts).sum()) / 48.0
    var = n * (n + 1) * (2 * n + 1) / 24.0 - tie_term
    if var <= 0:
        return WilcoxonResult(w_plus, n, 1.0, "normal")
    z = (w_plus - mean - 0.5 * np.sign(w_plus - mean)) / np.sqrt(var)
    p = 2.0 * (1.0 - float(ndtr(abs(z))))
    return WilcoxonResult(w_plus, n, min(1.0, p), "normal")
