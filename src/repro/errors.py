"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-classes mirror the major
subsystems: schema/data errors, query errors (including SQL parse
errors), and CAD View construction errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class SchemaError(ReproError):
    """A table or column was used inconsistently with its schema."""


class UnknownAttributeError(SchemaError, KeyError):
    """An attribute name does not exist in the schema.

    Inherits from ``KeyError`` so ``table["nope"]`` behaves like a
    normal mapping lookup failure while still being a
    :class:`ReproError`.
    """

    def __init__(self, name: str, available: tuple = ()):  # type: ignore[type-arg]
        self.name = name
        self.available = tuple(available)
        hint = ""
        if self.available:
            hint = f" (available: {', '.join(self.available)})"
        super().__init__(f"unknown attribute {name!r}{hint}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0]


class TypeMismatchError(SchemaError):
    """A value or operation does not match the attribute's type."""


class QueryError(ReproError):
    """A query could not be evaluated."""


class ParseError(QueryError):
    """A SQL/CADVIEW statement could not be parsed.

    Carries the offending position so interfaces can point at it.
    """

    def __init__(self, message: str, text: str = "", pos: int = -1):
        self.text = text
        self.pos = pos
        if pos >= 0 and text:
            snippet = text[max(0, pos - 20):pos + 20]
            message = f"{message} at position {pos}: ...{snippet!r}..."
        super().__init__(message)


class CADViewError(ReproError):
    """The CAD View could not be constructed as requested."""


class AnalysisError(QueryError, CADViewError):
    """Static analysis rejected a statement before execution.

    Raised by the pre-execution gate when the semantic analyzer
    (:mod:`repro.query.analyzer`) finds ERROR-severity diagnostics.
    Inherits from both :class:`QueryError` and :class:`CADViewError`
    because the gate fires for failures of either family *before* the
    engine or builder gets a chance to — callers that caught the
    execution-time class keep working unchanged.

    ``diagnostics`` holds the offending
    :class:`~repro.query.diagnostics.Diagnostic` records; ``report``
    the full :class:`~repro.query.diagnostics.AnalysisReport`.
    """

    def __init__(self, report):
        self.report = report
        self.diagnostics = list(getattr(report, "errors", []))
        super().__init__(report.render() if hasattr(report, "render")
                         else str(report))


class EmptyResultError(CADViewError):
    """The selection produced no tuples for a required pivot value."""


class DataIngestError(SchemaError):
    """A CSV row could not be coerced to the schema.

    Carries the source file, the 1-based data-row number (the header
    does not count) and the offending column, so a 400k-row load that
    dies on row 217,345 is debuggable without bisecting the file.
    """

    def __init__(self, message: str, path: str = "", row: int = 0,
                 column: str = ""):
        self.path = path
        self.row = row
        self.column = column
        where = ""
        if path or row or column:
            at_column = f", column {column!r}" if column else ""
            where = f" ({path or '<buffer>'}: row {row}{at_column})"
        super().__init__(f"{message}{where}")


class ConvergenceError(ReproError):
    """An iterative numerical procedure failed to converge."""


class ServeError(ReproError):
    """A failure of the concurrent serving layer (:mod:`repro.serve`)."""


class OverloadedError(ServeError):
    """Admission control rejected a statement: the queue is full.

    This is an explicit, *cheap* rejection — the serving core never
    queues unboundedly.  ``retry_after_s`` is the executor's estimate
    of when capacity will free up (the Retry-After hint a transport
    layer would surface to the client).
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        self.retry_after_s = max(0.0, float(retry_after_s))
        super().__init__(
            f"{message} (retry after {self.retry_after_s:.2f}s)"
        )


class WorkerCrashError(ServeError):
    """A worker subprocess died (or went silent) mid-statement.

    Raised supervisor-side for every in-flight request of a dead worker
    — the process exited with a nonzero code, was SIGKILLed after
    missing heartbeats, or tore its pipe.  It is a *transient* fault:
    the supervisor resubmits the statement to the restarted worker up
    to its retry budget, and only then does the ticket fail with this
    error.  ``shard`` and ``incarnation`` identify the worker that
    died; ``cause`` is ``crash`` / ``hang`` / ``pipe_drop``.
    """

    def __init__(
        self,
        message: str,
        shard: int = -1,
        incarnation: int = 0,
        cause: str = "crash",
    ):
        self.shard = shard
        self.incarnation = incarnation
        self.cause = cause
        super().__init__(
            f"{message} (shard {shard}, incarnation {incarnation}, "
            f"cause {cause})"
        )


class DurabilityError(ServeError):
    """The write-ahead log could not uphold its durability contract.

    Raised by :mod:`repro.serve.durability` when an append, fsync, or
    snapshot write fails.  It is deliberately *not* absorbed anywhere:
    a serving process that cannot make catalog mutations durable must
    stop acknowledging them (fail-stop), never degrade to in-memory
    acks that a crash would silently revoke.
    """


class RecoveryError(DurabilityError):
    """A state directory cannot be recovered into a consistent catalog.

    Distinct from a *torn tail* (the expected signature of a crash
    mid-append, which recovery truncates with a warning): this error
    means acknowledged history is damaged — a checksum failure or torn
    record *before* the end of the log, a sequence-number gap, or an
    unreadable snapshot with no valid predecessor.  Recovery refuses to
    guess; ``repro recover`` surfaces the diagnosis.
    """


class QueryCancelledError(ServeError):
    """A statement was cancelled before it completed.

    Raised cooperatively: the serving watchdog trips a
    :class:`~repro.robustness.CancelToken` and the next budget
    checkpoint inside the build raises this.  Unlike
    :class:`BudgetExceededError` it is *not* absorbed by the
    degradation ladder — a cancelled query must stop promptly, not
    produce a cheaper answer.
    """

    def __init__(self, reason: str = "cancelled"):
        self.reason = reason
        super().__init__(f"query cancelled: {reason}")


class BudgetExceededError(ReproError):
    """A budgeted operation ran out of wall-clock (or work) budget.

    Raised only when no further degradation rung can bring the work
    back under budget; carries enough context to tell *where* the
    deadline fired.
    """

    def __init__(self, phase: str, elapsed_s: float, deadline_s: float):
        self.phase = phase
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s
        super().__init__(
            f"budget exceeded in phase {phase!r}: "
            f"{elapsed_s * 1e3:.1f}ms elapsed of a "
            f"{deadline_s * 1e3:.1f}ms deadline"
        )
