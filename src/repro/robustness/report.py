"""Structured account of what a CAD View build actually did.

Every build — budgeted or not — carries a :class:`BuildReport` on the
returned :class:`~repro.core.cadview.CADView`.  A clean build has an
empty report; a degraded one lists every :class:`Degradation` rung the
builder stepped down, every :class:`Retry` of a transient failure, and
every :class:`Incident` where a pivot value had to be dropped so the
rest of the view could still be answered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.profile import BuildProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.tracer import Span, Tracer
    from repro.robustness.budget import Budget

__all__ = ["Incident", "Degradation", "Retry", "BuildReport"]


@dataclass(frozen=True)
class Incident:
    """A failure that was isolated instead of aborting the build."""

    phase: str                      # e.g. "cluster", "topk"
    pivot_value: Optional[str]      # None for whole-build phases
    error: str                      # exception class name
    message: str                    # str(exception)
    action: str                     # what the builder did about it

    def __str__(self) -> str:
        where = f"{self.phase}[{self.pivot_value}]" if self.pivot_value \
            else self.phase
        return f"{where} {self.error}: {self.message} -> {self.action}"


@dataclass(frozen=True)
class Degradation:
    """One ladder step down from the exact algorithm."""

    phase: str
    from_mode: str
    to_mode: str
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.phase} {self.from_mode}->{self.to_mode} ({self.reason})"
        )


@dataclass(frozen=True)
class Retry:
    """A transient failure retried with a fresh seed."""

    phase: str
    pivot_value: Optional[str]
    attempt: int                    # 1-based attempt that failed
    error: str

    def __str__(self) -> str:
        where = f"{self.phase}[{self.pivot_value}]" if self.pivot_value \
            else self.phase
        return f"{where} attempt {self.attempt} failed: {self.error}"


@dataclass
class BuildReport:
    """Incidents, degradations, retries and timings of one build."""

    incidents: List[Incident] = field(default_factory=list)
    degradations: List[Degradation] = field(default_factory=list)
    retries: List[Retry] = field(default_factory=list)
    dropped_values: List[str] = field(default_factory=list)
    analysis_warnings: List[str] = field(default_factory=list)
    budget: Optional["Budget"] = None
    elapsed_s: float = 0.0
    profile: Optional[BuildProfile] = None
    tracer: Optional["Tracer"] = None
    trace: Optional["Span"] = None

    # -- recording (builder-facing) ------------------------------------------

    def _annotate(self, kind: str, message: str) -> None:
        """Mirror a robustness event onto the currently open span."""
        if self.tracer is not None:
            self.tracer.annotate(kind, message)

    def record_incident(
        self,
        phase: str,
        pivot_value: Optional[str],
        error: BaseException,
        action: str,
    ) -> None:
        """Log an isolated failure and what was done instead."""
        incident = Incident(
            phase, pivot_value, type(error).__name__, str(error), action
        )
        self.incidents.append(incident)
        self._annotate("incident", str(incident))

    def record_degradation(
        self, phase: str, from_mode: str, to_mode: str, reason: str
    ) -> None:
        """Log one ladder step, deduplicating repeats of the same step."""
        step = Degradation(phase, from_mode, to_mode, reason)
        if step not in self.degradations:
            self.degradations.append(step)
            self._annotate("degradation", str(step))

    def record_retry(
        self,
        phase: str,
        pivot_value: Optional[str],
        attempt: int,
        error: BaseException,
    ) -> None:
        """Log a seeded retry of a transient failure."""
        retry = Retry(phase, pivot_value, attempt, type(error).__name__)
        self.retries.append(retry)
        self._annotate("retry", str(retry))

    def record_dropped(self, pivot_value: str) -> None:
        """Log a pivot value excluded from the returned view."""
        if pivot_value not in self.dropped_values:
            self.dropped_values.append(pivot_value)

    def record_analysis_warning(self, message: str) -> None:
        """Log a pre-execution analyzer warning against this build.

        Warnings do not make the build unclean — the pipeline itself ran
        exactly as asked — but they travel with the view (and onto the
        trace) so a degraded-looking result can be explained by its
        statement, not just its execution.
        """
        if message not in self.analysis_warnings:
            self.analysis_warnings.append(message)
            self._annotate("analysis", message)

    # -- reading (caller-facing) ---------------------------------------------

    @property
    def clean(self) -> bool:
        """True when the build ran the exact pipeline with no trouble.

        Analyzer warnings count as trouble: they do not degrade the
        build, but a report that carries them must render its footer so
        the warning reaches the user next to the grid it is about.
        """
        return not (
            self.incidents or self.degradations or self.retries
            or self.dropped_values or self.analysis_warnings
        )

    @property
    def partial(self) -> bool:
        """True when at least one pivot value was dropped."""
        return bool(self.dropped_values)

    @property
    def degraded(self) -> bool:
        """True when any ladder rung below "exact" was used."""
        return bool(self.degradations)

    def summary(self) -> str:
        """One line: PARTIAL/DEGRADED/OK plus counts and elapsed time."""
        if self.partial:
            status = "PARTIAL"
        elif self.degraded:
            status = "DEGRADED"
        else:
            status = "OK"
        return (
            f"{status}: {len(self.incidents)} incident(s), "
            f"{len(self.degradations)} degradation(s), "
            f"{len(self.retries)} retry(ies), "
            f"{len(self.dropped_values)} dropped value(s) "
            f"in {self.elapsed_s * 1e3:.1f}ms"
        )

    def lines(self) -> List[str]:
        """The summary plus one detail line per recorded event."""
        out = [self.summary()]
        out.extend(f"incident: {i}" for i in self.incidents)
        out.extend(f"degradation: {d}" for d in self.degradations)
        out.extend(f"retry: {r}" for r in self.retries)
        out.extend(f"analysis: {w}" for w in self.analysis_warnings)
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly dump (used by the CLI and tests)."""
        return {
            "status": self.summary().split(":")[0],
            "incidents": [vars(i) for i in self.incidents],
            "degradations": [vars(d) for d in self.degradations],
            "retries": [vars(r) for r in self.retries],
            "dropped_values": list(self.dropped_values),
            "analysis_warnings": list(self.analysis_warnings),
            "elapsed_s": self.elapsed_s,
            "profile": self.profile.as_dict() if self.profile else None,
        }

    def __str__(self) -> str:
        return "\n".join(self.lines())
