"""Deterministic fault injection for the CAD View pipeline.

The builder consults a :class:`FaultInjector` at named *sites* — one per
pipeline phase (``discretize``, ``feature_selection``, ``cluster``,
``topk``), optionally narrowed to one pivot value
(``cluster:Chevrolet``).  A planned :class:`Fault` then raises a typed
error or sleeps (to simulate a slow phase) a configured number of
times, after which the site behaves normally again — which is exactly
what a retry-then-succeed test needs.

Everything is deterministic: counting faults fire on their first
``times`` consultations; probabilistic faults draw from a per-site RNG
seeded by ``hash((seed, site))``, so a given (seed, plan) always fails
the same way.

The ``REPRO_FAULTS`` environment variable activates injection without
code changes (used by the CI fault pass)::

    REPRO_FAULTS=1                                # enabled, empty plan
    REPRO_FAULTS="cluster:Jeep=convergence*2"     # fail Jeep twice
    REPRO_FAULTS="topk=sleep:0.05,cluster=crash"  # several sites

The serving layer (:mod:`repro.serve`) adds concurrency fault points on
top of the per-phase build sites:

``serve.queue_full``
    Consulted at admission; a planned error here forces the executor to
    reject the statement as :class:`~repro.errors.OverloadedError` even
    when the queue has room (exercises the rejection path end-to-end).
``serve.slow_worker``
    Consulted on the worker thread just before a statement executes; a
    ``sleep`` fault simulates a stalled worker (pair with a serve
    deadline to exercise the watchdog), an error fault simulates a
    worker-side crash the retry machinery must absorb.

The multi-process layer (:mod:`repro.serve.proc`) adds three sites
consulted inside the worker *subprocess*, narrowed by the statement
index (``proc.worker_crash:3`` targets statement #3 only):

``proc.worker_crash``
    The worker calls ``os._exit`` with a nonzero code — a segfault/OOM
    stand-in the supervisor must detect, restart, and retry around.
``proc.worker_hang``
    A ``sleep`` fault here stalls the worker with its *heartbeat
    suppressed*, so the supervisor's missed-heartbeat detector (not a
    pipe event) is what catches it and SIGKILLs the process.
``proc.pipe_drop``
    The worker closes its end of the control pipe and exits, so the
    supervisor sees a torn/EOF pipe instead of a clean response.

The durability layer (:mod:`repro.serve.durability`) adds four sites
consulted inside the WAL writer, narrowed by the record's sequence
number (``wal.pre_fsync:3=crash*1`` targets seq 3).  Unlike every site
above, a planned fault here is converted to ``SIGKILL`` of the *whole
supervisor process* — the torture harness's crash points, not
recoverable errors:

``wal.pre_fsync``
    After the record is staged, before its fsync; a torn prefix of the
    record is pushed to the OS first, simulating a half-written append.
``wal.post_fsync_pre_ack``
    After the fsync (and the torture ack-log line), before the waiting
    committer is released — the "durable but never acked" window.
``wal.segment_rotate``
    Right after a full segment is sealed and a fresh one created.
``wal.mid_compaction``
    Between the snapshot temp file's fsync and its atomic rename, so
    recovery must fall back to the previous snapshot plus the WAL.

Because a restarted worker rebuilds its injector from the plan spec,
the supervisor forwards the statement's *proc attempt number* and the
worker calls :meth:`FaultInjector.advance` to burn the consultations a
previous incarnation already made — a counting ``crash*1`` fault kills
the worker exactly once per statement no matter how many times the
statement is resubmitted.

Concurrent serving forks one injector per admitted statement
(:meth:`FaultInjector.fork`), so the counting state of ``times``-style
faults never races across worker threads — a given (plan, statement
index) always fails the same way regardless of interleaving.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.errors import ConvergenceError, EmptyResultError

__all__ = ["Fault", "FaultInjector", "NO_FAULTS"]


_ERROR_KINDS = {
    "convergence": ConvergenceError,
    "crash": RuntimeError,
    "empty": EmptyResultError,
    "value": ValueError,
}


@dataclass(frozen=True)
class Fault:
    """One planned fault.

    kind:
        ``convergence`` / ``crash`` / ``empty`` / ``value`` raise the
        matching exception; ``sleep`` only delays (pair with a budget
        deadline to simulate a timeout mid-phase).
    times:
        Fire on the first ``times`` consultations of the site;
        ``None`` means every time.
    delay_s:
        Sleep this long before raising (or, for ``sleep``, instead of
        raising).
    p:
        Instead of counting, fire with this probability from the
        injector's per-site seeded RNG.
    """

    kind: str = "crash"
    times: Optional[int] = 1
    delay_s: float = 0.0
    p: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind != "sleep" and self.kind not in _ERROR_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"have {sorted(_ERROR_KINDS)} and 'sleep'"
            )


class FaultInjector:
    """A plan of faults keyed by site name, consulted by the pipeline.

    Site lookup tries the narrowed key first (``cluster:Jeep``), then
    the bare phase (``cluster``), so one entry can target a single
    pivot value or a whole phase.
    """

    def __init__(
        self,
        plan: Optional[Mapping[str, Union[Fault, str]]] = None,
        seed: int = 0,
    ):
        self.plan: Dict[str, Fault] = {}
        for site, fault in (plan or {}).items():
            self.plan[site] = (
                fault if isinstance(fault, Fault) else _parse_fault(fault)
            )
        self.seed = seed
        self._consulted: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._rngs: Dict[str, np.random.Generator] = {}

    # -- the pipeline-facing hook ------------------------------------------

    def fire(self, phase: str, pivot_value: Optional[str] = None) -> None:
        """Raise/sleep if a fault is planned for this site, else no-op."""
        for site in self._keys(phase, pivot_value):
            fault = self.plan.get(site)
            if fault is None:
                continue
            if not self._due(site, fault):
                continue
            self._fired[site] = self._fired.get(site, 0) + 1
            if fault.delay_s > 0.0:
                time.sleep(fault.delay_s)
            if fault.kind != "sleep":
                raise _ERROR_KINDS[fault.kind](
                    f"injected {fault.kind} fault at {site!r}"
                )
            return  # a sleep fault consumed the site; don't cascade

    def fired(self, site: str) -> int:
        """How many times the fault at ``site`` actually fired."""
        return self._fired.get(site, 0)

    def advance(
        self, phase: str, n: int, pivot_value: Optional[str] = None
    ) -> None:
        """Consume ``n`` consultations of a site without acting on them.

        The multi-process serving layer uses this to make faults
        *incarnation-proof*: a restarted worker rebuilds its injector
        from the plan spec with zeroed counters, so before re-executing
        a resubmitted statement it advances each ``proc.*`` site by the
        number of attempts previous incarnations already made.  Counting
        faults burn their ``times`` budget; probabilistic faults redraw
        (and discard) the same RNG sequence — either way, attempt ``k``
        of a statement behaves identically whether it runs in the first
        worker incarnation or the fifth.
        """
        for _ in range(n):
            for site in self._keys(phase, pivot_value):
                fault = self.plan.get(site)
                if fault is None:
                    continue
                if self._due(site, fault):
                    break  # fire() would have acted here and stopped

    @property
    def enabled(self) -> bool:
        """True when any fault is planned."""
        return bool(self.plan)

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _keys(phase: str, pivot_value: Optional[str]):
        if pivot_value is not None:
            yield f"{phase}:{pivot_value}"
        yield phase

    def _due(self, site: str, fault: Fault) -> bool:
        if fault.p is not None:
            rng = self._rngs.get(site)
            if rng is None:
                rng = np.random.default_rng(
                    abs(hash((self.seed, site))) % (2**32)
                )
                self._rngs[site] = rng
            return bool(rng.random() < fault.p)
        n = self._consulted.get(site, 0)
        self._consulted[site] = n + 1
        return fault.times is None or n < fault.times

    def fork(self, index: int) -> "FaultInjector":
        """A fresh injector with the same plan and a derived seed.

        The fork starts with zeroed consultation counters, so its
        counting faults fire deterministically within one statement's
        execution no matter how statements interleave across worker
        threads.  ``index`` (the statement's position in its stream)
        perturbs the per-site RNG seed so probabilistic plans do not
        fire identically for every statement.
        """
        return FaultInjector(self.plan, seed=self.seed + index)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultInjector":
        """Build an injector from a ``site=kind[*times]`` spec string."""
        plan: Dict[str, Fault] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            site, sep, rhs = part.partition("=")
            if not sep or not site.strip():
                raise ValueError(
                    f"bad fault spec {part!r}; want site=kind[*times]"
                )
            plan[site.strip()] = _parse_fault(rhs.strip())
        return cls(plan, seed=seed)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultInjector"]:
        """The injector requested by ``REPRO_FAULTS``, if any.

        ``0``/unset/empty return ``None``; ``1`` returns an enabled-but-
        empty injector (the CI switch); anything else is parsed as a
        plan spec.
        """
        spec = (environ if environ is not None else os.environ).get(
            "REPRO_FAULTS", ""
        ).strip()
        if not spec or spec == "0":
            return None
        if spec == "1":
            return cls({})
        return cls.parse(spec)


def _parse_fault(text: str) -> Fault:
    """``kind[*times]`` or ``sleep:seconds[*times]`` -> :class:`Fault`."""
    times: Optional[int] = 1
    if "*" in text:
        text, _, count = text.partition("*")
        times = None if count.strip() in ("", "inf") else int(count)
    text = text.strip()
    if text.startswith("sleep:"):
        return Fault("sleep", times=times, delay_s=float(text[6:]))
    return Fault(text, times=times)


NO_FAULTS = FaultInjector({})
"""A shared no-op injector: consulting it never raises or sleeps."""
