"""Resilience layer: budgets, degradation reporting, fault injection.

The CAD View pipeline is interactive — the paper's premise is that an
exploration step answers in interactive time, every time.  This package
supplies the three pieces that make that a guarantee instead of a hope:

* :class:`Budget` / :class:`BudgetClock` — wall-clock deadlines and
  row/cell caps, checked cooperatively inside every long loop;
* :class:`BuildReport` — the structured account of incidents,
  degradations and retries carried by every built view;
* :class:`FaultInjector` — deterministic fault injection so tests can
  force every degradation rung on demand.
"""

from repro.robustness.budget import Budget, BudgetClock
from repro.robustness.cancel import CancelToken
from repro.robustness.faults import NO_FAULTS, Fault, FaultInjector
from repro.robustness.report import (
    BuildReport,
    Degradation,
    Incident,
    Retry,
)

__all__ = [
    "Budget",
    "BudgetClock",
    "CancelToken",
    "BuildReport",
    "Incident",
    "Degradation",
    "Retry",
    "Fault",
    "FaultInjector",
    "NO_FAULTS",
]
