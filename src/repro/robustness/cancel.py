"""Cooperative cancellation for in-flight statements.

A :class:`CancelToken` is the one-way flag the serving layer
(:mod:`repro.serve`) uses to stop a running build: the per-query
watchdog (or an impatient caller) calls :meth:`CancelToken.cancel`,
and the next cooperative checkpoint inside the pipeline — the same
``clock.check(phase)`` sites PR 1 placed in the k-means/k-modes/chi2/
div-astar loops — raises :class:`~repro.errors.QueryCancelledError`.

Cancellation is deliberately cooperative: Python threads cannot be
killed, so the contract is "every loop that can run long checks the
budget clock, and the budget clock checks the token".  A token can be
cancelled from any thread, exactly once (later calls keep the first
reason), and never un-cancelled.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import QueryCancelledError

__all__ = ["CancelToken"]


class CancelToken:
    """A thread-safe, one-shot cancellation flag.

    >>> token = CancelToken()
    >>> token.cancel("deadline")
    True
    >>> token.cancelled
    True
    >>> token.raise_if_cancelled()
    Traceback (most recent call last):
        ...
    repro.errors.QueryCancelledError: query cancelled: deadline
    """

    __slots__ = ("_event", "_lock", "_reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> bool:
        """Trip the token; returns True only for the first call.

        The first caller's ``reason`` wins and is what the raised
        :class:`~repro.errors.QueryCancelledError` reports.
        """
        with self._lock:
            if self._event.is_set():
                return False
            self._reason = reason
            self._event.set()
            return True

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        """The first cancellation reason (``None`` while live)."""
        return self._reason

    def raise_if_cancelled(self) -> None:
        """Raise :class:`QueryCancelledError` once cancelled, else no-op.

        This is the hook :meth:`BudgetClock.check
        <repro.robustness.budget.BudgetClock.check>` calls at every
        cooperative checkpoint.
        """
        if self._event.is_set():
            raise QueryCancelledError(self._reason or "cancelled")

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until cancelled (or ``timeout``); True when cancelled."""
        return self._event.wait(timeout)

    def __repr__(self) -> str:
        state = f"cancelled: {self._reason!r}" if self.cancelled else "live"
        return f"CancelToken({state})"
