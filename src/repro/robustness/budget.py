"""Wall-clock and work budgets for CAD View construction.

A :class:`Budget` is an immutable *spec*: how long a build may run, how
many rows/cells it may look at, and how often transient failures may be
retried.  Calling :meth:`Budget.begin` starts the clock and returns a
:class:`BudgetClock`, which is what gets threaded through the pipeline.

The pipeline cooperates with the clock at *checkpoints* — cheap
``clock.check(phase)`` calls placed inside every iteration loop that can
run long (Lloyd iterations, per-candidate chi-square scoring, div-astar
node expansions).  A checkpoint raises :class:`BudgetExceededError` once
the deadline has passed; the builder catches it at phase boundaries and
steps down its degradation ladder instead of aborting outright.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import BudgetExceededError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.cancel import CancelToken

__all__ = ["Budget", "BudgetClock"]


@dataclass(frozen=True)
class Budget:
    """Resource limits for one CAD View build.

    deadline_s:
        Wall-clock budget in seconds; ``None`` means unlimited.
    max_rows:
        Cap on input rows considered; larger inputs are uniformly
        sampled down before the build starts.
    max_cells:
        Cap on ``rows * attributes``; combined with ``max_rows`` into a
        single effective row cap (the tighter of the two wins).
    retries:
        How many times a transient :class:`ConvergenceError` in
        clustering is retried with a fresh seed before degrading.
    degrade_at:
        Fraction of the deadline after which the builder preemptively
        steps down its ladder (greedy top-k, harder cluster sampling)
        rather than waiting for the hard deadline.
    """

    deadline_s: Optional[float] = None
    max_rows: Optional[int] = None
    max_cells: Optional[int] = None
    retries: int = 1
    degrade_at: float = 0.5

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if not 0.0 < self.degrade_at <= 1.0:
            raise ValueError(
                f"degrade_at must be in (0, 1], got {self.degrade_at}"
            )

    @property
    def unlimited(self) -> bool:
        """True when no limit of any kind is set."""
        return (
            self.deadline_s is None
            and self.max_rows is None
            and self.max_cells is None
        )

    def row_cap(self, n_attributes: int) -> Optional[int]:
        """Effective input row cap given the table width (or ``None``)."""
        caps = []
        if self.max_rows is not None:
            caps.append(self.max_rows)
        if self.max_cells is not None and n_attributes > 0:
            caps.append(self.max_cells // n_attributes)
        return min(caps) if caps else None

    def begin(
        self, cancel: Optional["CancelToken"] = None
    ) -> "BudgetClock":
        """Start the wall clock; returns the running clock.

        ``cancel`` attaches a cancellation token: every checkpoint then
        also raises :class:`~repro.errors.QueryCancelledError` once the
        token trips, which is how the serving watchdog stops a build
        without the build knowing about the serving layer.
        """
        return BudgetClock(self, cancel)


class BudgetClock:
    """A started :class:`Budget`: the object the pipeline checks against."""

    __slots__ = ("budget", "cancel", "_start")

    def __init__(
        self, budget: Budget, cancel: Optional["CancelToken"] = None
    ):
        self.budget = budget
        self.cancel = cancel
        self._start = time.perf_counter()

    # -- time queries -----------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since :meth:`Budget.begin`."""
        return time.perf_counter() - self._start

    def remaining(self) -> float:
        """Seconds left before the deadline (``inf`` when unlimited)."""
        if self.budget.deadline_s is None:
            return math.inf
        return self.budget.deadline_s - self.elapsed()

    def pressure(self) -> float:
        """Fraction of the deadline already spent (0.0 when unlimited)."""
        if self.budget.deadline_s is None:
            return 0.0
        return self.elapsed() / self.budget.deadline_s

    def exceeded(self) -> bool:
        """True once the deadline has passed."""
        return self.remaining() < 0.0

    def under_pressure(self) -> bool:
        """True past the ``degrade_at`` fraction of the deadline."""
        return self.pressure() >= self.budget.degrade_at

    # -- cooperative checkpoints ----------------------------------------------

    def check(self, phase: str) -> None:
        """Raise at a checkpoint when the build must stop.

        :class:`~repro.errors.QueryCancelledError` when the attached
        cancel token has tripped (checked first — a cancelled query
        must not be mistaken for a budget blowout and degraded), then
        :class:`BudgetExceededError` once the deadline has passed.
        """
        if self.cancel is not None:
            self.cancel.raise_if_cancelled()
        if self.budget.deadline_s is not None:
            elapsed = self.elapsed()
            if elapsed > self.budget.deadline_s:
                raise BudgetExceededError(
                    phase, elapsed, self.budget.deadline_s
                )

    def checkpoint(self, phase: str) -> Callable[[], None]:
        """A zero-argument ``check`` bound to ``phase``.

        Handed to inner loops (k-means iterations, div-astar pops) that
        should not know budget phase names themselves.
        """
        return lambda: self.check(phase)

    def __repr__(self) -> str:
        deadline = self.budget.deadline_s
        if deadline is None:
            return f"BudgetClock(unlimited, elapsed={self.elapsed():.3f}s)"
        return (
            f"BudgetClock({self.elapsed():.3f}s of {deadline:.3f}s, "
            f"pressure={self.pressure():.0%})"
        )
