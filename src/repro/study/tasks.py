"""The three exploratory task types of the user study (Sec. 6.2).

Each task type comes as a *matched pair* (A, B): group-1 users do A on
TPFacet and B on Solr, group-2 users the reverse — the paper's
crossover design.

* :class:`ClassifierTask` (Sec. 6.2.1) — select at most two attribute
  values maximizing F1 for a binary target class.
* :class:`SimilarPairTask` (Sec. 6.2.2) — among four given values of an
  attribute, find the two whose result sets have the most similar
  summary digests.
* :class:`AlternativeTask` (Sec. 6.2.3) — given a selection condition,
  find a different selection (over other attributes, at most two
  values) reproducing the same result set as closely as possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import QueryError
from repro.facets.engine import FacetedEngine
from repro.study.metrics import (
    f1_score,
    pair_rank,
    pair_similarity_ranking,
    retrieval_error,
)

__all__ = [
    "ClassifierTask",
    "SimilarPairTask",
    "AlternativeTask",
    "TaskSuite",
    "mushroom_task_suite",
]

Selections = Dict[str, Set[str]]


@dataclass(frozen=True)
class ClassifierTask:
    """Build a <=2-value classifier for ``attribute = target_value``."""

    task_id: str
    attribute: str
    target_value: str
    max_values: int = 2

    def target_mask(self, engine: FacetedEngine) -> np.ndarray:
        """Boolean mask of the target class over the full table."""
        pred = engine.predicate_for(self.attribute, self.target_value)
        return pred.mask(engine.table)

    def score(self, engine: FacetedEngine, answer: Selections) -> float:
        """F1 of the answer's selection against the target class."""
        self.validate(answer)
        pred = engine.selection_predicate(answer)
        return f1_score(pred.mask(engine.table), self.target_mask(engine))

    def validate(self, answer: Selections) -> None:
        """Enforce the task's value budget and attribute rules."""
        n_values = sum(len(v) for v in answer.values())
        if n_values == 0 or n_values > self.max_values:
            raise QueryError(
                f"classifier answer must use 1..{self.max_values} values, "
                f"got {n_values}"
            )
        if self.attribute in answer:
            raise QueryError(
                "classifier may not select on the class attribute itself"
            )


@dataclass(frozen=True)
class SimilarPairTask:
    """Find the most similar pair among ``values`` of ``attribute``."""

    task_id: str
    attribute: str
    values: Tuple[str, ...]

    def ground_truth(
        self, engine: FacetedEngine
    ) -> List[Tuple[Tuple[str, str], float]]:
        """All pairs ranked under the task's digest-cosine metric."""
        return pair_similarity_ranking(engine, self.attribute, self.values)

    def score(
        self, engine: FacetedEngine, answer: Tuple[str, str]
    ) -> float:
        """1-based rank of the chosen pair (1 = correct, up to 6)."""
        if len(set(answer)) != 2 or not set(answer) <= set(self.values):
            raise QueryError(
                f"answer must be two distinct values from {self.values}"
            )
        return float(pair_rank(self.ground_truth(engine), answer))


@dataclass(frozen=True)
class AlternativeTask:
    """Reproduce the result of ``given`` using other attributes."""

    task_id: str
    given: Tuple[Tuple[str, str], ...]   # ((attribute, value), ...)
    max_values: int = 2

    @property
    def given_attributes(self) -> Tuple[str, ...]:
        """The attributes of the given condition (banned in answers)."""
        return tuple(a for a, _ in self.given)

    def given_selections(self) -> Selections:
        """The given condition as a faceted selection state."""
        sels: Selections = {}
        for attr, value in self.given:
            sels.setdefault(attr, set()).add(value)
        return sels

    def score(self, engine: FacetedEngine, answer: Selections) -> float:
        """Retrieval error (lower is better) of the alternative."""
        self.validate(answer)
        target = engine.digest(self.given_selections())
        alt = engine.digest(answer)
        return retrieval_error(target, alt)

    def validate(self, answer: Selections) -> None:
        """Enforce the value budget and the given-attribute ban."""
        n_values = sum(len(v) for v in answer.values())
        if n_values == 0 or n_values > self.max_values:
            raise QueryError(
                f"alternative must use 1..{self.max_values} values, "
                f"got {n_values}"
            )
        banned = set(self.given_attributes) & set(answer)
        if banned:
            raise QueryError(
                f"alternative may not reuse the given attributes {banned}"
            )


@dataclass(frozen=True)
class TaskSuite:
    """The matched task pairs, one pair per task type."""

    classifier: Tuple[ClassifierTask, ClassifierTask]
    similar_pair: Tuple[SimilarPairTask, SimilarPairTask]
    alternative: Tuple[AlternativeTask, AlternativeTask]


def mushroom_task_suite() -> TaskSuite:
    """The paper's tasks, instantiated on the mushroom dataset.

    The sample tasks quoted in the paper are used verbatim where given:
    classifier target ``bruises = true`` (6.2.1); gill-color values
    ``{buff, white, brown, green}`` (6.2.2); alternative for
    ``stalk-shape = enlarged AND spore-print-color = chocolate``
    (6.2.3).  Each pairs with a matched second task on different
    attributes.
    """
    return TaskSuite(
        classifier=(
            ClassifierTask("T1a", "bruises", "true"),
            ClassifierTask("T1b", "gill-size", "broad"),
        ),
        similar_pair=(
            SimilarPairTask(
                "T2a", "gill-color", ("buff", "white", "brown", "green")
            ),
            SimilarPairTask(
                "T2b", "cap-color", ("red", "yellow", "gray", "white")
            ),
        ),
        alternative=(
            AlternativeTask(
                "T3a",
                (
                    ("stalk-shape", "enlarged"),
                    ("spore-print-color", "chocolate"),
                ),
            ),
            AlternativeTask(
                "T3b",
                (("odor", "foul"), ("gill-size", "broad")),
            ),
        ),
    )
