"""Task-quality metrics of the user study (paper Sec. 6.2).

* Task 1 (Simple Classifier): standard F1 of the selection against the
  target class.
* Task 2 (Most Similar Facet Value Pair): the ground-truth rank (1..6)
  of the chosen pair among all pairs, under the task's defined metric
  (digest cosine similarity).
* Task 3 (Alternative Search Condition): retrieval error = 1 - cosine
  similarity between the target result's digest and the alternative
  result's digest.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import QueryError
from repro.facets.digest import Digest
from repro.facets.engine import FacetedEngine

__all__ = [
    "f1_score",
    "pair_similarity_ranking",
    "pair_rank",
    "retrieval_error",
]


def f1_score(predicted: np.ndarray, actual: np.ndarray) -> float:
    """F1 of boolean masks (predicted selection vs target class)."""
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape:
        raise QueryError("mask shapes differ")
    tp = float(np.count_nonzero(predicted & actual))
    fp = float(np.count_nonzero(predicted & ~actual))
    fn = float(np.count_nonzero(~predicted & actual))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2.0 * precision * recall / (precision + recall)


def pair_similarity_ranking(
    engine: FacetedEngine,
    attribute: str,
    values: Sequence[str],
) -> List[Tuple[Tuple[str, str], float]]:
    """All value pairs ranked by digest cosine similarity (best first).

    This is the task's ground-truth metric: select each value alone,
    take the digest of its result set, and compare digests pairwise.
    """
    if len(values) < 2:
        raise QueryError("need at least 2 values to rank pairs")
    digests: Dict[str, Digest] = {
        v: engine.digest({attribute: {v}}) for v in values
    }
    scored = []
    for a, b in combinations(values, 2):
        # exclude the pivot attribute's own counts: both digests trivially
        # differ there (each is concentrated on its own value)
        sims = [
            digests[a].attribute_cosine(digests[b], attr)
            for attr in digests[a].attributes()
            if attr != attribute
        ]
        scored.append(((a, b), float(np.mean(sims))))
    scored.sort(key=lambda x: (-x[1], x[0]))
    return scored


def pair_rank(
    ranking: Sequence[Tuple[Tuple[str, str], float]],
    chosen: Tuple[str, str],
) -> int:
    """1-based rank of ``chosen`` in a pair ranking (order-insensitive)."""
    target = frozenset(chosen)
    for i, (pair, _) in enumerate(ranking, start=1):
        if frozenset(pair) == target:
            return i
    raise QueryError(f"pair {chosen!r} not in ranking")


def retrieval_error(target: Digest, alternative: Digest) -> float:
    """Task 3's error: digest distance between target and alternative.

    0 when the alternative reproduces the target result set exactly;
    grows toward 1 (and can exceed it only never — bounded by 1).
    """
    return target.distance(alternative)
