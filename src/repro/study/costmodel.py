"""Interaction cost model: from an operation log to task minutes.

The real study measured wall-clock task completion; the simulation
replaces the human with policy agents, so time comes from pricing each
interface operation the agent performed.  Costs are calibrated from the
HCI literature's reading/decision rates (inspecting a full facet digest
of ~20 attributes is slow; a click is fast) so that the *relative*
interface effect matches the paper: Solr tasks take longer because
their strategies need many expensive digest inspections, while TPFacet
strategies read one CAD View and click.

Per-user variation enters in two places, matching the mixed-model
analysis design (user = random effect):

* a per-user speed multiplier (lognormal around 1), and
* per-operation lognormal noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import QueryError

__all__ = ["CostModel", "UserProfile"]

#: Base cost in seconds of each loggable operation.
_DEFAULT_COSTS: Dict[str, float] = {
    "toggle": 3.0,            # find & click one facet value
    "clear": 2.0,
    "digest": 35.0,           # read/compare a full multi-attribute digest
    "digest_glance": 8.0,     # check one attribute's counts in the digest
    "result": 10.0,           # scan the first page of results
    "count": 1.5,             # read the hit-count readout
    "phase": 1.0,             # toggle results <-> CAD View
    "pivot": 3.0,             # pick the pivot radio button
    "cadview": 30.0,          # read a fresh CAD View table
    "cadview_glance": 6.0,    # re-read a part of the current CAD View
    "click_iunit": 4.0,       # click + see highlights
    "click_pivot_value": 5.0, # click + see reordered rows
    "think": 5.0,             # generic decision pause
    "compare_digests": 70.0,  # hand-compare two multi-attribute digests
}


@dataclass(frozen=True)
class UserProfile:
    """One simulated subject."""

    user_id: str
    group: int                 # 1 or 2 (crossover assignment)
    speed: float               # multiplies every operation cost
    diligence: float           # in (0, 1]; scales exploration budgets

    @classmethod
    def roster(
        cls, n_users: int = 8, seed: int = 42
    ) -> Tuple["UserProfile", ...]:
        """The study's subject pool: U1..Un split into two equal groups."""
        if n_users % 2:
            raise QueryError("crossover design needs an even user count")
        rng = np.random.default_rng(seed)
        users = []
        for i in range(n_users):
            users.append(
                cls(
                    user_id=f"U{i + 1}",
                    group=1 if i < n_users // 2 else 2,
                    speed=float(np.exp(rng.normal(0.0, 0.25))),
                    diligence=float(np.clip(rng.normal(0.75, 0.15), 0.4, 1.0)),
                )
            )
        return tuple(users)


@dataclass
class CostModel:
    """Prices operation logs.

    Parameters
    ----------
    costs:
        Seconds per operation kind (defaults above).
    noise_sigma:
        Lognormal sigma of per-operation noise.
    """

    costs: Dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_COSTS)
    )
    noise_sigma: float = 0.20

    def price(
        self,
        operations: Sequence[Tuple[str, ...]],
        user: UserProfile,
        rng: np.random.Generator,
    ) -> float:
        """Total minutes for ``operations`` performed by ``user``."""
        total_s = 0.0
        for op in operations:
            kind = op[0]
            try:
                base = self.costs[kind]
            except KeyError:
                raise QueryError(f"unpriced operation kind {kind!r}") from None
            noise = float(np.exp(rng.normal(0.0, self.noise_sigma)))
            total_s += base * user.speed * noise
        return total_s / 60.0
