"""Simulated study subjects (policy agents), one per interface.

Each agent solves the three task types using *only* what its interface
exposes:

* :class:`SolrAgent` sees facet digests (value counts per attribute)
  and must hit-and-trial: toggle a selection, read the digest, undo.
  Exploration budgets scale with the user's diligence, so quality
  varies — exactly the behaviour the paper reports for the baseline.
* :class:`TPFacetAgent` additionally sees the CAD View: IUnit labels
  and value distributions per Compare Attribute, similarity highlights,
  and row reordering.  Its strategies read one CAD View, shortlist
  candidates from the conditional distributions, and verify the few
  finalists — the paper's "more methodical" exploration.

Both log every interface operation; the cost model prices the logs into
task minutes.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.cadview import CADView, CADViewConfig
from repro.facets.digest import Digest
from repro.facets.engine import FacetedEngine, FacetSession
from repro.facets.tpfacet import TPFacetSession
from repro.study.costmodel import UserProfile
from repro.study.tasks import (
    AlternativeTask,
    ClassifierTask,
    Selections,
    SimilarPairTask,
)

__all__ = ["AgentOutcome", "SolrAgent", "TPFacetAgent"]

Operations = List[Tuple[str, ...]]


class AgentOutcome:
    """What an agent hands back: the answer plus its operation log."""

    def __init__(self, answer, operations: Operations):
        self.answer = answer
        self.operations = operations


def _digest_f1(
    digest: Digest, class_attr: str, target: str, target_total: int
) -> float:
    """F1 readable off a digest: class counts inside the selection."""
    tp = digest.values(class_attr).get(target, 0)
    if tp == 0 or digest.total == 0 or target_total == 0:
        return 0.0
    precision = tp / digest.total
    recall = tp / target_total
    return 2.0 * precision * recall / (precision + recall)


def _selection_of(values: Sequence[Tuple[str, str]]) -> Selections:
    sels: Selections = {}
    for attr, value in values:
        sels.setdefault(attr, set()).add(value)
    return sels


class _Agent:
    """Shared plumbing."""

    def __init__(
        self,
        engine: FacetedEngine,
        user: UserProfile,
        rng: np.random.Generator,
    ):
        self.engine = engine
        self.user = user
        self.rng = rng

    def _shuffled(self, items: list) -> list:
        items = list(items)
        self.rng.shuffle(items)
        return items


class SolrAgent(_Agent):
    """Baseline strategies: digest-driven hit-and-trial."""

    # -- task 1: simple classifier ------------------------------------

    def do_classifier(self, task: ClassifierTask) -> AgentOutcome:
        """Task 1 via hit-and-trial over digest class counts."""
        session = FacetSession(self.engine)
        base = session.digest()
        target_total = base.values(task.attribute).get(task.target_value, 0)

        # candidate single values: frequent values of every other facet
        candidates: List[Tuple[str, str]] = []
        for attr in self.engine.queriable:
            if attr == task.attribute:
                continue
            counts = base.values(attr)
            top = sorted(counts, key=lambda v: -counts[v])[:2]
            candidates.extend((attr, v) for v in top)
        candidates = self._shuffled(candidates)
        budget = max(6, int(len(candidates) * 0.35 * self.user.diligence))

        # hit-and-trial users eyeball precision/recall off raw counts;
        # less diligent users misjudge more
        perception_sigma = 0.04 + 0.10 * (1.0 - self.user.diligence)

        def trial(values: Sequence[Tuple[str, str]]) -> float:
            for attr, v in values:
                session.toggle(attr, v)
            d = self.engine.digest(session.selections)
            session.operations.append(("digest_glance",))
            session.operations.append(("think",))
            score = _digest_f1(d, task.attribute, task.target_value,
                               target_total)
            score += float(self.rng.normal(0.0, perception_sigma))
            for attr, v in values:
                session.toggle(attr, v)
            return score

        singles = [(trial([c]), c) for c in candidates[:budget]]
        singles.sort(key=lambda s: -s[0])

        # pair exploration among the best singles
        m = 3 + int(2 * self.user.diligence)
        shortlist = [c for _, c in singles[:m]]
        pair_budget = 3 + int(5 * self.user.diligence)
        best_score, best_values = singles[0] if singles else (0.0, None)
        best_values = [best_values] if best_values else []
        for pair in list(combinations(shortlist, 2))[:pair_budget]:
            score = trial(pair)
            if score > best_score:
                best_score, best_values = score, list(pair)
        return AgentOutcome(_selection_of(best_values), session.operations)

    # -- task 2: most similar facet value pair ----------------------------

    def do_similar_pair(self, task: SimilarPairTask) -> AgentOutcome:
        """Task 2 via manual pairwise digest comparison."""
        session = FacetSession(self.engine)
        digests: Dict[str, Digest] = {}
        for v in task.values:
            session.toggle(task.attribute, v)
            digests[v] = session.digest()
            session.toggle(task.attribute, v)

        # manual pairwise cosine comparison: slow and slightly noisy
        perception_sigma = 0.001 + 0.005 * (1.0 - self.user.diligence)
        best_pair, best_score = None, -np.inf
        for a, b in combinations(task.values, 2):
            session.operations.append(("compare_digests",))
            sims = [
                digests[a].attribute_cosine(digests[b], attr)
                for attr in digests[a].attributes()
                if attr != task.attribute
            ]
            perceived = float(np.mean(sims)) + float(
                self.rng.normal(0.0, perception_sigma)
            )
            if perceived > best_score:
                best_score, best_pair = perceived, (a, b)
        return AgentOutcome(best_pair, session.operations)

    # -- task 3: alternative search condition ------------------------------

    def do_alternative(self, task: AlternativeTask) -> AgentOutcome:
        """Task 3 via coverage-ranked hit-and-trial with satisficing."""
        session = FacetSession(self.engine)
        for attr, value in task.given:
            session.toggle(attr, value)
        target = session.digest()
        for attr, value in task.given:
            session.toggle(attr, value)

        banned = set(task.given_attributes)
        candidates = self._coverage_candidates(target, banned, limit=10)

        # hand-comparing two 20-attribute digests is error-prone: the
        # perceived error carries noise, and users satisfice on it
        perception_sigma = 0.05 + 0.15 * (1.0 - self.user.diligence)
        satisfice_at = 0.10

        def trial(values: Sequence[Tuple[str, str]]) -> Tuple[float, float]:
            for attr, v in values:
                session.toggle(attr, v)
            d = session.digest()
            session.operations.append(("compare_digests",))
            err = target.distance(d)
            perceived = max(
                0.0, err + float(self.rng.normal(0.0, perception_sigma))
            )
            for attr, v in values:
                session.toggle(attr, v)
            return err, perceived

        single_budget = 2 + int(3 * self.user.diligence)
        best_perceived, best_values = np.inf, None
        for c in candidates[:single_budget]:
            _, perceived = trial([c])
            if perceived < best_perceived:
                best_perceived, best_values = perceived, [c]
            if best_perceived < satisfice_at:
                break

        if best_perceived >= satisfice_at:
            shortlist = [c for c in candidates[:4]]
            pair_budget = 2 + int(4 * self.user.diligence)
            pairs = [
                p for p in combinations(shortlist, 2) if p[0][0] != p[1][0]
            ]
            for pair in pairs[:pair_budget]:
                _, perceived = trial(pair)
                if perceived < best_perceived:
                    best_perceived, best_values = perceived, list(pair)
                if best_perceived < satisfice_at:
                    break
        return AgentOutcome(_selection_of(best_values), session.operations)

    def _coverage_candidates(
        self, target: Digest, banned: Set[str], limit: int
    ) -> List[Tuple[str, str]]:
        """Values covering a large share of the target result set.

        The naive heuristic a digest-only user has: values with big
        counts in the target digest "look like" the target.  It ranks
        ubiquitous values (present everywhere) first — the hit-and-trial
        dead ends the paper describes.  Scanning is imperfect, so the
        perceived coverage carries a little noise.
        """
        scored = []
        for attr in self.engine.queriable:
            if attr in banned:
                continue
            for value, count in target.values(attr).items():
                share = count / max(target.total, 1)
                if share >= 0.5:
                    perceived = share + float(self.rng.normal(0.0, 0.05))
                    scored.append((perceived, (attr, value)))
        scored.sort(key=lambda s: (-s[0], s[1]))
        return [c for _, c in scored[:limit]]


class TPFacetAgent(_Agent):
    """CAD-View-driven strategies."""

    def __init__(
        self,
        engine: FacetedEngine,
        user: UserProfile,
        rng: np.random.Generator,
        config: CADViewConfig = CADViewConfig(),
    ):
        super().__init__(engine, user, rng)
        self.config = config

    def _session(self) -> TPFacetSession:
        return TPFacetSession(self.engine, self.config)

    # -- task 1: simple classifier --------------------------------------

    def do_classifier(self, task: ClassifierTask) -> AgentOutcome:
        """Task 1: read the CAD View, shortlist, verify finalists."""
        session = self._session()
        session.set_pivot(task.attribute)
        cad = session.cadview()

        target_total = sum(
            u.size for u in cad.candidates.get(task.target_value, ())
        )
        candidates = self._discriminative_values(
            cad, task.target_value, banned={task.attribute}, top=5
        )

        # verify the finalists exactly via quick digest glances
        finalists: List[List[Tuple[str, str]]] = [[c] for c in candidates[:3]]
        finalists += [
            list(p)
            for p in combinations(candidates[:4], 2)
        ][:4]
        best_score, best_values = -1.0, [candidates[0]]
        base_total = target_total or 1
        for values in finalists:
            for attr, v in values:
                session.toggle(attr, v)
            d = self.engine.digest(session.selections)
            session.operations.append(("digest_glance",))
            score = _digest_f1(
                d, task.attribute, task.target_value, base_total
            )
            for attr, v in values:
                session.toggle(attr, v)
            if score > best_score:
                best_score, best_values = score, values
        return AgentOutcome(_selection_of(best_values), session.operations)

    def _discriminative_values(
        self,
        cad: CADView,
        target_value: str,
        banned: Set[str],
        top: int,
    ) -> List[Tuple[str, str]]:
        """Values whose selection best matches the target row's tuples.

        Works off the IUnit value-frequency distributions the CAD View
        displays — the conditional dependencies of the paper's pitch.
        For each candidate value ``X = v`` the agent can read off an F1
        estimate of "select X = v" against "pivot = target": true
        positives are v's frequency inside the target row, false
        positives its frequency in the other rows, false negatives the
        rest of the target row.
        """
        scored = []
        for attr in cad.compare_attributes:
            if attr in banned:
                continue
            in_target = self._row_distribution(cad, target_value, attr)
            out_rows = [
                self._row_distribution(cad, v, attr)
                for v in cad.pivot_values
                if v != target_value
            ]
            outside = (
                np.sum(out_rows, axis=0)
                if out_rows else np.zeros_like(in_target)
            )
            t_total = in_target.sum() or 1.0
            labels = cad.view.labels(attr)
            for code, label in enumerate(labels):
                tp = float(in_target[code])
                if tp <= 0:
                    continue
                fp = float(outside[code])
                fn = t_total - tp
                est_f1 = 2.0 * tp / (2.0 * tp + fp + fn)
                scored.append((est_f1, (attr, label)))
        scored.sort(key=lambda s: (-s[0], s[1]))
        return [c for _, c in scored[:top]]

    @staticmethod
    def _row_distribution(
        cad: CADView, pivot_value: str, attr: str
    ) -> np.ndarray:
        units = cad.candidates.get(pivot_value, ())
        if not units:
            return np.zeros(cad.view.ncodes(attr))
        return np.sum([np.asarray(u.distributions[attr]) for u in units],
                      axis=0)

    # -- task 2: most similar facet value pair ------------------------------

    @staticmethod
    def _refined_similarity(cad: CADView, a: str, b: str) -> float:
        """Mean best-match Algorithm-1 similarity between two rows.

        This is what the user perceives when the interface highlights
        similar IUnits between rows: how strongly, on average, each
        IUnit of one row lights up a counterpart in the other.
        """
        from repro.iunits.similarity import iunit_similarity

        ta, tb = cad.row(a), cad.row(b)
        if not ta or not tb:
            return 0.0
        sims = [max(iunit_similarity(x, y) for y in tb) for x in ta]
        sims += [max(iunit_similarity(y, x) for x in ta) for y in tb]
        return float(np.mean(sims))

    def do_similar_pair(self, task: SimilarPairTask) -> AgentOutcome:
        """Task 2: click pivot values, read Algorithm-2 reorderings."""
        session = self._session()
        for v in task.values:
            session.toggle(task.attribute, v)
        session.set_pivot(task.attribute)
        cad = session.cadview()

        # click each value: the reorder puts its most similar value next
        candidates: Dict[frozenset, Tuple[float, float]] = {}
        for v in task.values:
            reordered = session.click_pivot_value(v)
            nearest = next(
                (w for w in reordered.pivot_values if w != v), None
            )
            if nearest is None:
                continue
            pair = frozenset((v, nearest))
            if pair in candidates:
                continue
            distance = reordered.value_distance(v, nearest)
            session.operations.append(("cadview_glance",))
            refined = self._refined_similarity(reordered, v, nearest)
            candidates[pair] = (distance, -refined)

        ranked = sorted(candidates, key=lambda p: candidates[p])
        best_pair = tuple(sorted(ranked[0]))
        if len(ranked) > 1 and self.user.diligence >= 0.85:
            # a careful user cross-checks the top two candidates against
            # the task's own digest metric (two digest comparisons)
            runner_up = tuple(sorted(ranked[1]))
            scores = {}
            for pair in (best_pair, runner_up):
                digests = []
                for v in pair:
                    session.toggle(task.attribute, v)
                    # isolate v by removing the other three selections
                    others = [w for w in task.values if w != v]
                    for w in others:
                        if w in session.selections.get(task.attribute, set()):
                            session.toggle(task.attribute, w)
                    digests.append(session.digest())
                    for w in others:
                        session.toggle(task.attribute, w)
                    session.toggle(task.attribute, v)
                session.operations.append(("compare_digests",))
                sims = [
                    digests[0].attribute_cosine(digests[1], attr)
                    for attr in digests[0].attributes()
                    if attr != task.attribute
                ]
                scores[pair] = float(np.mean(sims))
            best_pair = max(scores, key=lambda p: scores[p])
        return AgentOutcome(best_pair, session.operations)

    # -- task 3: alternative search condition ---------------------------------

    def do_alternative(self, task: AlternativeTask) -> AgentOutcome:
        """Task 3: mine the target row's IUnits, verify few trials."""
        session = self._session()
        # see the target result set once
        for attr, value in task.given:
            session.toggle(attr, value)
        target = session.digest()
        for attr, value in task.given:
            session.toggle(attr, value)

        # pivot on the first given attribute, pinning the second as a
        # Compare Attribute: the target row's IUnits that match the
        # second condition describe the target set's other values
        (attr_a, value_a) = task.given[0]
        rest = task.given[1:]
        session.set_pivot(attr_a, pinned=tuple(a for a, _ in rest))
        cad = session.cadview()
        banned = set(task.given_attributes)
        candidates = self._conjunction_candidates(
            cad, value_a, rest, banned, top=4
        )

        trials: List[List[Tuple[str, str]]] = [[c] for c in candidates[:2]]
        trials += [
            list(p)
            for p in combinations(candidates[:3], 2)
            if p[0][0] != p[1][0]
        ][:2]
        best_err, best_values = np.inf, [candidates[0]]
        for values in trials:
            for attr, v in values:
                session.toggle(attr, v)
            d = session.digest()
            session.operations.append(("compare_digests",))
            err = target.distance(d)
            for attr, v in values:
                session.toggle(attr, v)
            if err < best_err:
                best_err, best_values = err, values
            if best_err < 0.01:
                break
        return AgentOutcome(_selection_of(best_values), session.operations)

    def _conjunction_candidates(
        self,
        cad: CADView,
        pivot_value: str,
        rest: Sequence[Tuple[str, str]],
        banned: Set[str],
        top: int,
    ) -> List[Tuple[str, str]]:
        """Values characterizing ``pivot = pivot_value AND rest``.

        Each IUnit of the target row is weighted by how much of it
        matches the remaining given conditions (read off the IUnit's
        displayed distributions); a candidate value's estimated true
        positives are its weighted frequency in the target row, its
        false positives its frequency everywhere else.
        """
        units = list(cad.candidates.get(pivot_value, ()))
        if not units:
            return []
        weights = []
        for u in units:
            w = 1.0
            for attr, value in rest:
                dist = np.asarray(u.distributions[attr], dtype=float)
                total = dist.sum()
                code = cad.view.code_of(attr, value)
                share = dist[code] / total if (total > 0 and code >= 0) else 0.0
                w *= share
            weights.append(w)
        target_est = sum(w * u.size for w, u in zip(weights, units)) or 1.0

        scored = []
        for attr in cad.compare_attributes:
            if attr in banned:
                continue
            tp_vec = np.zeros(cad.view.ncodes(attr))
            all_vec = np.zeros(cad.view.ncodes(attr))
            for value in cad.pivot_values:
                for u in cad.candidates.get(value, ()):
                    dist = np.asarray(u.distributions[attr], dtype=float)
                    all_vec += dist
                    if value == pivot_value:
                        w = weights[units.index(u)] if u in units else 0.0
                        tp_vec += w * dist
            labels = cad.view.labels(attr)
            for code, label in enumerate(labels):
                tp = float(tp_vec[code])
                if tp <= 0:
                    continue
                fp = float(all_vec[code]) - tp
                fn = target_est - tp
                est_f1 = 2.0 * tp / (2.0 * tp + fp + max(fn, 0.0))
                scored.append((est_f1, (attr, label)))
        scored.sort(key=lambda s: (-s[0], s[1]))
        return [c for _, c in scored[:top]]
