"""The study runner: crossover design, measurements, paper-style analysis.

Reproduces the design of Sec. 6.2: eight users in two groups; for each
matched task pair (A, B), group 1 does A on TPFacet and B on Solr, and
group 2 the reverse.  Every (user, task) cell yields a quality score
(task-specific) and a completion time (cost model over the agent's
operation log).  :func:`run_study` returns the full measurement table;
:meth:`StudyResults.analyze` runs the mixed-model LRT per task type,
i.e. the numbers quoted around Figures 2–7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cadview import CADViewConfig
from repro.dataset.table import Table
from repro.errors import QueryError
from repro.facets.engine import FacetedEngine
from repro.stats.analysis import DisplayEffect, display_effect
from repro.study.agents import SolrAgent, TPFacetAgent
from repro.study.costmodel import CostModel, UserProfile
from repro.study.tasks import TaskSuite, mushroom_task_suite

__all__ = ["Measurement", "StudyResults", "run_study"]

TASK_TYPES = ("classifier", "similar_pair", "alternative")


@dataclass(frozen=True)
class Measurement:
    """One (user, task, display) cell of the study."""

    user_id: str
    group: int
    task_type: str
    task_id: str
    display: str              # "Solr" | "TPFacet"
    quality: float            # task-specific score
    minutes: float            # completion time


@dataclass
class StudyResults:
    """All measurements plus convenience accessors."""

    measurements: List[Measurement]

    def of(
        self,
        task_type: Optional[str] = None,
        display: Optional[str] = None,
    ) -> List[Measurement]:
        """Measurements filtered by task type and/or display."""
        return [
            m for m in self.measurements
            if (task_type is None or m.task_type == task_type)
            and (display is None or m.display == display)
        ]

    def analyze(self, task_type: str, measure: str) -> DisplayEffect:
        """The paper's mixed-model LRT for one task type & measure.

        ``measure`` is ``"quality"`` or ``"minutes"``.
        """
        if measure not in ("quality", "minutes"):
            raise QueryError(f"measure must be quality|minutes, not {measure}")
        cells = self.of(task_type)
        if not cells:
            raise QueryError(f"no measurements for task type {task_type!r}")
        return display_effect(
            users=[m.user_id for m in cells],
            displays=[m.display for m in cells],
            values=[getattr(m, measure) for m in cells],
        )

    def speedup(self, task_type: str) -> float:
        """Mean Solr minutes / mean TPFacet minutes."""
        solr = [m.minutes for m in self.of(task_type, "Solr")]
        tp = [m.minutes for m in self.of(task_type, "TPFacet")]
        if not solr or not tp:
            raise QueryError(f"incomplete data for {task_type!r}")
        return float(np.mean(solr) / np.mean(tp))

    def table(self, task_type: str, measure: str) -> Dict[str, Dict[str, float]]:
        """user -> {display: value}; the per-user bars of Figs 2–7."""
        out: Dict[str, Dict[str, float]] = {}
        for m in self.of(task_type):
            out.setdefault(m.user_id, {})[m.display] = getattr(m, measure)
        return out


def _run_cell(
    engine: FacetedEngine,
    user: UserProfile,
    display: str,
    task_type: str,
    task,
    cost_model: CostModel,
    config: CADViewConfig,
    seed: int,
) -> Measurement:
    rng = np.random.default_rng(seed)
    if display == "Solr":
        agent = SolrAgent(engine, user, rng)
    else:
        agent = TPFacetAgent(engine, user, rng, config)
    outcome = getattr(agent, f"do_{task_type}")(task)
    if task_type == "similar_pair":
        quality = task.score(engine, outcome.answer)
    else:
        quality = task.score(engine, outcome.answer)
    minutes = cost_model.price(outcome.operations, user, rng)
    return Measurement(
        user.user_id, user.group, task_type, task.task_id, display,
        quality, minutes,
    )


def run_study(
    table: Table,
    suite: Optional[TaskSuite] = None,
    users: Optional[Sequence[UserProfile]] = None,
    cost_model: Optional[CostModel] = None,
    config: Optional[CADViewConfig] = None,
    seed: int = 2016,
) -> StudyResults:
    """Run the full crossover study on ``table`` (mushroom by default).

    Group 1 does task A of each pair on TPFacet and task B on Solr;
    group 2 the reverse — so each user contributes one Solr and one
    TPFacet measurement per task type, and each task is done by four
    users per interface.
    """
    suite = suite or mushroom_task_suite()
    users = tuple(users or UserProfile.roster(seed=seed))
    cost_model = cost_model or CostModel()
    config = config or CADViewConfig(compare_limit=5, iunits_k=3)
    engine = FacetedEngine(table)

    pairs = {
        "classifier": suite.classifier,
        "similar_pair": suite.similar_pair,
        "alternative": suite.alternative,
    }
    measurements: List[Measurement] = []
    for t_index, task_type in enumerate(TASK_TYPES):
        task_a, task_b = pairs[task_type]
        for u_index, user in enumerate(users):
            if user.group == 1:
                assignment = (("TPFacet", task_a), ("Solr", task_b))
            else:
                assignment = (("Solr", task_a), ("TPFacet", task_b))
            for d_index, (display, task) in enumerate(assignment):
                cell_seed = seed + 1000 * t_index + 10 * u_index + d_index
                measurements.append(
                    _run_cell(
                        engine, user, display, task_type, task,
                        cost_model, config, cell_seed,
                    )
                )
    return StudyResults(measurements)
