"""User-study simulation: tasks, agents, cost model, crossover runner."""

from repro.study.agents import AgentOutcome, SolrAgent, TPFacetAgent
from repro.study.costmodel import CostModel, UserProfile
from repro.study.metrics import (
    f1_score,
    pair_rank,
    pair_similarity_ranking,
    retrieval_error,
)
from repro.study.report import study_report
from repro.study.runner import Measurement, StudyResults, run_study
from repro.study.workload import (
    GeneratedQuery,
    random_conjunctive_queries,
    random_subsets,
)
from repro.study.tasks import (
    AlternativeTask,
    ClassifierTask,
    SimilarPairTask,
    TaskSuite,
    mushroom_task_suite,
)

__all__ = [
    "f1_score", "pair_similarity_ranking", "pair_rank", "retrieval_error",
    "ClassifierTask", "SimilarPairTask", "AlternativeTask",
    "TaskSuite", "mushroom_task_suite",
    "CostModel", "UserProfile",
    "SolrAgent", "TPFacetAgent", "AgentOutcome",
    "Measurement", "StudyResults", "run_study",
    "study_report",
    "GeneratedQuery", "random_subsets", "random_conjunctive_queries",
]
