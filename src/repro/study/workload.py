"""Random exploratory-query workload generation.

The paper's performance evaluation averages over "50 simulations, where
for each simulation we generate a different query result by randomly
selecting a subset of tuples and/or attributes" (Sec. 6.3).  This
module generates such workloads in two flavors:

* :func:`random_subsets` — uniformly random row subsets of target
  sizes (the paper's setup);
* :func:`random_conjunctive_queries` — realistic conjunctive facet
  selections with approximately a target selectivity, produced by
  greedily ANDing random facet values until the result is small enough.
  These model actual exploration states rather than iid samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.table import Table
from repro.discretize.discretizer import Discretizer
from repro.errors import QueryError
from repro.query.predicates import And, Predicate, TruePred

__all__ = ["GeneratedQuery", "random_subsets", "random_conjunctive_queries"]


@dataclass(frozen=True)
class GeneratedQuery:
    """One workload item: the predicate and its materialized result."""

    predicate: Predicate
    result: Table
    total_rows: int

    @property
    def selectivity(self) -> float:
        """|result| / |table|."""
        return len(self.result) / max(self.total_rows, 1)


def random_subsets(
    table: Table,
    sizes: Sequence[int],
    repeats: int = 1,
    seed: int = 0,
) -> Iterator[Tuple[int, Table]]:
    """Yield ``(target size, subset)`` pairs, ``repeats`` per size."""
    if not sizes:
        raise QueryError("sizes must be non-empty")
    rng = np.random.default_rng(seed)
    for size in sizes:
        for _ in range(repeats):
            yield size, table.sample(min(size, len(table)), rng)


def random_conjunctive_queries(
    table: Table,
    n_queries: int,
    target_selectivity: float = 0.1,
    max_conjuncts: int = 4,
    nbins: int = 6,
    seed: int = 0,
    attributes: Optional[Sequence[str]] = None,
) -> List[GeneratedQuery]:
    """Generate conjunctive selections of roughly the target selectivity.

    Each query starts empty and greedily ANDs a random facet value of a
    random attribute while the result is still larger than
    ``target_selectivity * len(table)`` (up to ``max_conjuncts``),
    skipping conjuncts that would empty the result.
    """
    if not 0.0 < target_selectivity <= 1.0:
        raise QueryError(
            f"target_selectivity must be in (0, 1], got {target_selectivity}"
        )
    if n_queries < 1:
        raise QueryError("n_queries must be >= 1")
    names = tuple(attributes) if attributes else table.schema.queriable_names
    table.schema.require(names)
    view = Discretizer(nbins=nbins).fit(table, names)
    rng = np.random.default_rng(seed)
    target_rows = max(1, int(target_selectivity * len(table)))

    queries: List[GeneratedQuery] = []
    for _ in range(n_queries):
        conjuncts: List[Predicate] = []
        mask = np.ones(len(table), dtype=bool)
        used: set = set()
        attempts = 0
        while (
            int(mask.sum()) > target_rows
            and len(conjuncts) < max_conjuncts
            and attempts < 10 * max_conjuncts
        ):
            attempts += 1
            attr = names[int(rng.integers(len(names)))]
            if attr in used or view.ncodes(attr) == 0:
                continue
            # bias toward values frequent in the current result, like a
            # user clicking visible facet counts
            codes = view.codes(attr)[mask]
            valid = codes[codes >= 0]
            if valid.size == 0:
                continue
            counts = np.bincount(valid, minlength=view.ncodes(attr))
            probs = counts / counts.sum()
            code = int(rng.choice(view.ncodes(attr), p=probs))
            pred = view.predicate_for(attr, code)
            new_mask = mask & pred.mask(table)
            if not new_mask.any():
                continue
            conjuncts.append(pred)
            used.add(attr)
            mask = new_mask
        predicate: Predicate = (
            And(conjuncts) if conjuncts else TruePred()
        )
        queries.append(
            GeneratedQuery(predicate, table.filter(mask), len(table))
        )
    return queries
