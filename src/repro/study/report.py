"""Markdown reporting of study results.

Turns a :class:`~repro.study.runner.StudyResults` into the full
evaluation write-up: one section per task type with the per-user table
(the bars of Figures 2–7), the mixed-model analysis line, and the
speedup — the exact material Sec. 6.2 reports.
"""

from __future__ import annotations

from typing import Dict, List

from repro.study.runner import StudyResults

__all__ = ["study_report"]

_SECTIONS = (
    ("classifier", "Simple Classifier (Figures 2–3)", "F1 score", "{:.3f}"),
    ("similar_pair", "Most Similar Facet Value Pair (Figures 4–5)",
     "chosen pair rank (1=best)", "{:.0f}"),
    ("alternative", "Alternative Search Condition (Figures 6–7)",
     "retrieval error", "{:.3f}"),
)


def _user_sort_key(user_id: str):
    digits = "".join(ch for ch in user_id if ch.isdigit())
    return (int(digits) if digits else 0, user_id)


def _table(
    quality: Dict[str, Dict[str, float]],
    minutes: Dict[str, Dict[str, float]],
    fmt: str,
) -> List[str]:
    lines = [
        "| user | Solr quality | TPFacet quality | Solr min | TPFacet min |",
        "|---|---|---|---|---|",
    ]
    for user in sorted(quality, key=_user_sort_key):
        q, t = quality[user], minutes[user]
        lines.append(
            f"| {user} | {fmt.format(q['Solr'])} "
            f"| {fmt.format(q['TPFacet'])} "
            f"| {t['Solr']:.1f} | {t['TPFacet']:.1f} |"
        )
    return lines


def study_report(results: StudyResults, title: str = "User study") -> str:
    """The full markdown report for one study run."""
    lines: List[str] = [f"# {title}", ""]
    n_users = len({m.user_id for m in results.measurements})
    lines.append(
        f"{n_users} simulated users, crossover design; "
        f"{len(results.measurements)} measurements."
    )
    for task_type, heading, quality_name, fmt in _SECTIONS:
        cells = results.of(task_type)
        if not cells:
            continue
        lines += ["", f"## {heading}", ""]
        lines += _table(
            results.table(task_type, "quality"),
            results.table(task_type, "minutes"),
            fmt,
        )
        q = results.analyze(task_type, "quality")
        t = results.analyze(task_type, "minutes")
        lines += [
            "",
            f"* {quality_name}: {q}",
            f"* completion time: {t}",
            f"* speedup: {results.speedup(task_type):.2f}x "
            f"(Solr mean {t.baseline_mean:.1f} min, "
            f"TPFacet mean {t.treatment_mean:.1f} min)",
        ]
    return "\n".join(lines)
