"""Startup recovery: newest snapshot + ordered WAL replay + torn tail.

:func:`recover_state` turns a ``--state-dir`` back into the supervisor
state a previous process carried in memory:

1. **Snapshot** — load the newest *valid* ``snapshot-<seq>.json``
   (an unreadable newest snapshot falls back to its predecessor with a
   warning; orphaned ``.tmp`` files from a crash mid-compaction are
   deleted).  The snapshot supplies the per-shard catalog journals,
   the view->shard routing map, and ``last_seq``.
2. **WAL replay** — scan every remaining ``wal-<n>.log`` segment in
   ordinal order and apply each record with ``seq > last_seq`` in
   strictly continuous sequence: the journal entry is appended to its
   shard, and ``CREATE``/``DROP`` statements update the routing map.
   Records a snapshot already covers (left behind when a crash landed
   between the snapshot rename and the segment deletion) are skipped.
3. **Torn tail** — the first unreadable record *at the end of the
   newest data-bearing segment* is the expected signature of a crash
   mid-append: it is truncated (with a loud warning), never replayed.
   An unreadable record with intact records *after* it — in the same
   scan or a later segment — is corruption of acknowledged history,
   and recovery refuses with :class:`~repro.errors.RecoveryError`
   rather than silently dropping acked mutations.  A sequence gap
   (``seq`` jumps) is refused the same way.

:func:`compact_journal` is the semantic compaction both the snapshot
path and the torture harness use: ``DROP v`` annihilates every earlier
entry targeting ``v`` (and itself); a re-``CREATE`` supersedes the
view's earlier entries.  Replaying a compacted journal produces a
catalog identical to replaying the full history — which is precisely
what makes snapshot truncation safe.
"""

from __future__ import annotations

import io
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RecoveryError
from repro.query.ast import (
    CreateCadViewStatement,
    DropCadViewStatement,
    ReorderRowsStatement,
)
from repro.query.parser import parse
from repro.serve.durability.records import (
    WAL_MAGIC,
    WalRecord,
    scan_segment,
)
from repro.serve.durability.wal import (
    SEGMENT_PREFIX,
    SNAPSHOT_PREFIX,
    _segment_ordinal,
)

__all__ = ["RecoveredState", "recover_state", "compact_journal"]

_TMP_RE = re.compile(r"^\..*\.tmp\.\d+$")


@dataclass
class RecoveredState:
    """Everything a supervisor needs to resume where a crash left off."""

    journals: Dict[int, List[Tuple[str, str]]] = field(
        default_factory=dict
    )
    view_shard: Dict[str, int] = field(default_factory=dict)
    last_seq: int = 0
    snapshot_seq: int = 0
    snapshot_path: Optional[str] = None
    shards: Optional[int] = None       # shard count the state was written with
    segments: int = 0                  # segment files scanned
    records_replayed: int = 0          # WAL records applied past the snapshot
    records_skipped: int = 0           # records a snapshot already covered
    next_ordinal: int = 0              # where a resuming writer starts
    torn_tail: Optional[Dict[str, object]] = None
    warnings: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the ``repro recover --json`` payload)."""
        return {
            "last_seq": self.last_seq,
            "snapshot_seq": self.snapshot_seq,
            "snapshot": self.snapshot_path,
            "shards": self.shards,
            "segments": self.segments,
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "torn_tail": self.torn_tail,
            "views": {
                name: shard
                for name, shard in sorted(self.view_shard.items())
            },
            "journal_lengths": {
                str(shard): len(entries)
                for shard, entries in sorted(self.journals.items())
            },
            "warnings": list(self.warnings),
        }


def recover_state(
    state_dir: str,
    shards: Optional[int] = None,
    truncate: bool = True,
) -> RecoveredState:
    """Rebuild catalog state from a ``--state-dir``.

    ``shards`` (when given) is validated against the shard count the
    state was written with — journal entries are routed by shard
    index, so resuming under a different ``--procs`` would scatter the
    catalog; recovery refuses instead of guessing a re-route.

    ``truncate=False`` makes the pass read-only (the ``repro recover``
    inspector): a torn tail is *reported* but the segment file is left
    byte-for-byte as found, and orphaned temp files stay.
    """
    state = RecoveredState()
    if not os.path.isdir(state_dir):
        raise RecoveryError(f"state dir {state_dir!r} does not exist")
    _clean_tmp_files(state_dir, state, truncate)
    _load_snapshot(state_dir, state, shards)
    segments = _list_segments(state_dir)
    state.segments = len(segments)
    if segments:
        # a resuming writer starts a *fresh* segment: never append
        # after a (possibly just-truncated) tail
        last = _segment_ordinal(os.path.basename(segments[-1]))
        state.next_ordinal = (last if last is not None else -1) + 1

    scanned = []
    for path in segments:
        with open(path, "rb") as fh:
            records, bad_offset, reason = scan_segment(fh)
        scanned.append((path, records, bad_offset, reason))

    # an unreadable record is a *tail* only if nothing intact follows
    # it; intact records after damage mean acked history is gone, and
    # that is not recoverable-by-truncation
    last_data = max(
        (i for i, (_, recs, _, _) in enumerate(scanned) if recs),
        default=-1,
    )
    for i, (path, records, bad_offset, reason) in enumerate(scanned):
        if bad_offset is None:
            continue
        if i < last_data or (i == last_data and _has_later_data(
            scanned, i, bad_offset
        )):
            raise RecoveryError(
                f"unreadable WAL record mid-history in "
                f"{os.path.basename(path)} at offset {bad_offset} "
                f"({reason}); acknowledged mutations after it would "
                f"be lost — refusing to recover"
            )
        state.torn_tail = {
            "segment": os.path.basename(path),
            "offset": bad_offset,
            "reason": reason,
            "truncated": bool(truncate),
        }
        state.warnings.append(
            f"torn WAL tail in {os.path.basename(path)} at offset "
            f"{bad_offset} ({reason}): the unacknowledged tail is "
            + ("truncated" if truncate else "ignored (read-only pass)")
        )
        if truncate:
            _truncate_segment(path, bad_offset)

    applied = state.snapshot_seq
    for path, records, _, _ in scanned:
        for record in records:
            if record.seq <= state.snapshot_seq:
                state.records_skipped += 1
                continue
            if record.seq != applied + 1:
                raise RecoveryError(
                    f"WAL sequence gap: expected seq {applied + 1}, "
                    f"found {record.seq} in {os.path.basename(path)} "
                    f"at offset {record.offset}"
                )
            _apply_record(state, record)
            applied = record.seq
            state.records_replayed += 1
    state.last_seq = applied
    return state


def compact_journal(
    entries: List[Tuple[str, str]],
) -> List[Tuple[str, str]]:
    """Semantically compact one shard's catalog journal.

    The result replays to the identical catalog: a ``DROP`` removes
    every earlier entry targeting its view and contributes nothing
    itself; a re-``CREATE`` supersedes the view's earlier entries.
    Statements that do not parse (they were acked, so this would take
    a grammar change mid-flight) are conservatively kept.
    """
    compacted: List[Tuple[str, str]] = []
    for sql, session in entries:
        target = _statement_view(sql)
        if target is None:
            compacted.append((sql, session))
            continue
        kind, view = target
        if kind in ("create", "drop"):
            compacted = [
                entry for entry in compacted
                if _statement_view(entry[0]) is None
                or _statement_view(entry[0])[1] != view
            ]
        if kind != "drop":
            compacted.append((sql, session))
    return compacted


# -- internals -------------------------------------------------------------


def _statement_view(sql: str) -> Optional[Tuple[str, str]]:
    """``("create"|"drop"|"reorder", view)`` for catalog mutations."""
    try:
        stmt = parse(sql)
    # the None return *is* the record of the fault: the caller
    # conservatively keeps the statement verbatim
    # repro-lint: ignore[RL004]
    except Exception:
        return None
    if isinstance(stmt, CreateCadViewStatement):
        return ("create", stmt.name)
    if isinstance(stmt, DropCadViewStatement):
        return ("drop", stmt.name)
    if isinstance(stmt, ReorderRowsStatement):
        return ("reorder", stmt.view)
    return None


def _clean_tmp_files(
    state_dir: str, state: RecoveredState, truncate: bool
) -> None:
    for name in sorted(os.listdir(state_dir)):
        if _TMP_RE.match(name):
            state.warnings.append(
                f"orphaned temp file {name} (crash mid-compaction): "
                + ("removed" if truncate else "ignored")
            )
            if truncate:
                os.unlink(os.path.join(state_dir, name))


def _load_snapshot(
    state_dir: str, state: RecoveredState, shards: Optional[int]
) -> None:
    candidates = sorted(
        (
            name for name in os.listdir(state_dir)
            if name.startswith(SNAPSHOT_PREFIX) and name.endswith(".json")
        ),
        reverse=True,
    )
    snap = None
    for name in candidates:
        path = os.path.join(state_dir, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            if (
                not isinstance(loaded, dict)
                or loaded.get("kind") != "repro-wal-snapshot"
            ):
                raise ValueError("not a repro WAL snapshot")
        except (OSError, ValueError) as exc:
            state.warnings.append(
                f"snapshot {name} is unreadable ({exc}); falling back "
                f"to an older snapshot plus the WAL"
            )
            continue
        snap = loaded
        state.snapshot_path = path
        break
    if snap is None:
        if candidates:
            raise RecoveryError(
                f"no readable snapshot among {len(candidates)} "
                f"candidate(s) in {state_dir!r}"
            )
        return
    state.snapshot_seq = int(snap.get("last_seq") or 0)
    state.shards = int(snap.get("shards") or 0) or None
    if (
        shards is not None
        and state.shards is not None
        and state.shards != shards
    ):
        raise RecoveryError(
            f"state dir was written with {state.shards} shard(s); "
            f"restart with --procs {state.shards} (journal entries "
            f"are routed by shard index)"
        )
    for key, entries in (snap.get("journals") or {}).items():
        state.journals[int(key)] = [
            (str(e[0]), str(e[1])) for e in entries
        ]
    for name, shard in (snap.get("view_shard") or {}).items():
        state.view_shard[str(name)] = int(shard)


def _list_segments(state_dir: str) -> List[str]:
    pairs = []
    for name in os.listdir(state_dir):
        if name.startswith(SEGMENT_PREFIX) and name.endswith(".log"):
            ordinal = _segment_ordinal(name)
            if ordinal is not None:
                pairs.append((ordinal, os.path.join(state_dir, name)))
    return [path for _, path in sorted(pairs)]


def _has_later_data(scanned, index: int, bad_offset: int) -> bool:
    """Intact records after the damage point? (same or later segment)"""
    for _, records, _, _ in scanned[index + 1:]:
        if records:
            return True
    # the sequential scan stopped at the damage; resync by looking for
    # a decodable record anywhere in the remaining bytes — a crash can
    # only tear the *end* of an append-only log, so an intact record
    # after damaged bytes means the damage is mid-history corruption
    path = scanned[index][0]
    with open(path, "rb") as fh:
        fh.seek(bad_offset)
        blob = fh.read()
    pos = 1  # skip the damaged record's own magic
    while True:
        idx = blob.find(WAL_MAGIC, pos)
        if idx < 0:
            return False
        records, _, _ = scan_segment(io.BytesIO(blob[idx:]))
        if records:
            return True
        pos = idx + 1


def _truncate_segment(path: str, offset: int) -> None:
    with open(path, "r+b") as fh:
        fh.truncate(offset)
        fh.flush()
        os.fsync(fh.fileno())


def _apply_record(state: RecoveredState, record: WalRecord) -> None:
    state.journals.setdefault(record.shard, []).append(
        (record.sql, record.session)
    )
    target = _statement_view(record.sql)
    if target is None:
        return
    kind, view = target
    if kind == "create":
        state.view_shard[view] = record.shard
    elif kind == "drop":
        state.view_shard.pop(view, None)
