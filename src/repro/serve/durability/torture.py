"""kill -9 torture: prove acked == durable at adversarial crash points.

The WAL's contract is simple to state and easy to get subtly wrong:
*every acknowledged catalog mutation survives a crash, and no
unacknowledged one resurrects*.  This module proves it the only way
that counts — by actually killing the process.

Each torture iteration:

1. launches a **fresh serving process** (``repro serve --stress`` with
   ``--state-dir``) over a mutation-rich workload, with one planned
   fault (``--faults "wal.<site>:<seq>=crash*1"``) that makes the WAL
   writer ``SIGKILL`` its own process — the whole supervisor, not a
   worker — at a deterministic point in the durability path;
2. reads the **ack log** the child wrote (``REPRO_WAL_ACK_LOG``): one
   fsync'd JSON line per mutation, appended *after* the WAL fsync and
   *before* the client's response is released.  The ack log is the
   ground truth of what the client was promised;
3. runs :func:`~repro.serve.durability.recovery.recover_state` over the
   state dir and asserts the recovered catalog is **identical to the
   acked prefix**: same last seq, and per shard the compacted recovered
   journal equals the compacted acked journal (byte-compared as
   canonical JSON).  A torn tail is fine — it must be *truncated with a
   warning*, never replayed and never fatal;
4. periodically restarts the server over the recovered state dir with
   no faults and requires a clean exit — recovery must not merely
   parse, it must *serve*.

The four crash sites cover the interesting windows:

``wal.pre_fsync``
    Before the batch is durable.  The harness additionally writes a
    *torn prefix* of the batch's first record before dying, so recovery
    must truncate a half-written tail.  Nothing was acked; nothing may
    survive.
``wal.post_fsync_pre_ack``
    After fsync, after the ack-log line, before the in-process waiter
    is released.  The mutation is durable and (per the ack log) was
    promised; it must survive.
``wal.segment_rotate``
    Just after a new segment was opened.  Recovery must stitch records
    across the segment boundary and tolerate an empty newest segment.
``wal.mid_compaction``
    Between the snapshot temp file's fsync and its atomic rename.
    Recovery must ignore the orphan temp file and fall back to the
    previous snapshot plus the WAL.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RecoveryError
from repro.serve.durability.recovery import compact_journal, recover_state
from repro.serve.durability.wal import ACK_LOG_ENV

__all__ = [
    "SITES",
    "run_torture",
    "torture_schedule",
    "write_torture_workload",
]

SITES = (
    "wal.pre_fsync",
    "wal.post_fsync_pre_ack",
    "wal.segment_rotate",
    "wal.mid_compaction",
)

# The torture workload: six catalog mutations (seq 1..6 in the WAL)
# interleaved with reads, exercising create / reorder / re-create /
# drop so snapshot compaction has real work to do.
_TORTURE_STATEMENTS = (
    "SELECT Make FROM data",
    "CREATE CADVIEW torture_a AS SET pivot = Make "
    "SELECT Price FROM data LIMIT COLUMNS 3 IUNITS 2",
    "CREATE CADVIEW torture_b AS SET pivot = BodyType "
    "SELECT Price FROM data LIMIT COLUMNS 3 IUNITS 2",
    "REORDER ROWS IN torture_a ORDER BY SIMILARITY(Ford) DESC",
    "SHOW CADVIEWS",
    "DROP CADVIEW torture_b",
    "CREATE CADVIEW torture_b AS SET pivot = Make "
    "SELECT Mileage FROM data LIMIT COLUMNS 3 IUNITS 2",
    "SHOW CADVIEWS",
    "DROP CADVIEW torture_a",
)
TORTURE_MUTATIONS = 6  # CREATE x3, REORDER x1, DROP x2


def write_torture_workload(
    path: str, rows: int = 120, seed: int = 7
) -> str:
    """Write the standard mutation-rich torture workload (JSONL)."""
    # repro-lint: ignore[RL010] — harness input, not the durable state
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({
            "kind": "session", "dataset": "usedcars",
            "rows": int(rows), "seed": int(seed),
        }, sort_keys=True) + "\n")
        for sql in _TORTURE_STATEMENTS:
            fh.write(json.dumps(
                {"kind": "statement", "statement": sql}, sort_keys=True,
            ) + "\n")
    return path


def torture_schedule(
    iterations: int, mutations: int = TORTURE_MUTATIONS
) -> List[Tuple[str, int]]:
    """``iterations`` deterministic ``(site, seq)`` crash points.

    Sites rotate so any prefix of >= 4 iterations covers all four; seqs
    walk the mutation range so crashes land early, mid, and late in the
    log.  Rotation and compaction targets use only *even* seqs: under
    the torture config (``--wal-segment-bytes 1 --wal-snapshot-every
    2``) the segment is freshly emptied by each snapshot, so rotation
    and snapshotting both fire on every second mutation.
    """
    if mutations < 2:
        raise ValueError("torture needs a workload with >= 2 mutations")
    schedule: List[Tuple[str, int]] = []
    evens = max(1, mutations // 2)
    for i in range(iterations):
        site = SITES[i % len(SITES)]
        k = i // len(SITES)
        if site == "wal.pre_fsync":
            seq = 1 + (k % mutations)
        elif site == "wal.post_fsync_pre_ack":
            seq = 1 + ((k + 1) % mutations)
        else:  # rotate / mid_compaction: even seqs only (see above)
            seq = 2 * (1 + (k % evens))
        schedule.append((site, seq))
    return schedule


def run_torture(
    workload: str,
    state_root: str,
    iterations: int = 20,
    rows: int = 120,
    procs: int = 1,
    verify_restart_every: int = 5,
    timeout_s: float = 180.0,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the kill -9 torture loop; return a machine-readable report.

    ``report["ok"]`` is the verdict; ``report["failures"]`` lists every
    violated invariant with enough context to reproduce (site, seq,
    acked entries, recovered journals).  On failure the full diff is
    also written to ``<state_root>/torture-failure-<i>.json`` — the
    artifact CI uploads.
    """
    emit = log or (lambda line: print(line, file=sys.stderr))
    os.makedirs(state_root, exist_ok=True)
    workload, mutations = _ensure_mutations(
        workload, state_root, rows, emit
    )
    schedule = torture_schedule(iterations, mutations)
    report: Dict[str, object] = {
        "iterations": iterations,
        "workload": workload,
        "schedule": [list(point) for point in schedule],
        "killed": 0,
        "torn_tails": 0,
        "restarts_verified": 0,
        "site_counts": {site: 0 for site in SITES},
        "failures": [],
    }
    failures: List[Dict[str, object]] = report["failures"]  # type: ignore[assignment]

    for i, (site, seq) in enumerate(schedule):
        state_dir = os.path.join(state_root, f"iter-{i:03d}")
        ack_path = os.path.join(state_root, f"iter-{i:03d}.acks.jsonl")
        emit(f"torture[{i + 1}/{iterations}] {site}:{seq} "
             f"-> {state_dir}")
        proc = _launch(
            workload, state_dir, rows, procs, timeout_s,
            faults=f"{site}:{seq}=crash*1", ack_path=ack_path,
        )
        report["site_counts"][site] += 1  # type: ignore[index]
        failure = _check_iteration(
            i, site, seq, proc, state_dir, ack_path, report,
        )
        if failure is not None:
            failures.append(failure)
            _write_artifact(state_root, i, failure)
            emit(f"torture[{i + 1}/{iterations}] FAILED: "
                 f"{failure['problem']}")
            continue
        if verify_restart_every and (i + 1) % verify_restart_every == 0:
            restart = _launch(
                workload, state_dir, rows, procs, timeout_s,
                faults=None, ack_path=None,
            )
            if restart.returncode != 0:
                failure = {
                    "iteration": i, "site": site, "seq": seq,
                    "problem": (
                        f"faultless restart over the recovered state "
                        f"dir exited {restart.returncode}"
                    ),
                    "stderr": restart.stderr[-4000:],
                }
                failures.append(failure)
                _write_artifact(state_root, i, failure)
                emit(f"torture[{i + 1}/{iterations}] FAILED: "
                     f"{failure['problem']}")
            else:
                report["restarts_verified"] += 1  # type: ignore[operator]

    report["ok"] = not failures
    return report


# -- internals -------------------------------------------------------------


def _launch(
    workload: str,
    state_dir: str,
    rows: int,
    procs: int,
    timeout_s: float,
    faults: Optional[str],
    ack_path: Optional[str],
) -> "subprocess.CompletedProcess[str]":
    argv = [
        sys.executable, "-m", "repro", "serve", workload,
        "--stress", "--procs", str(procs), "--rows", str(rows),
        "--state-dir", state_dir,
        "--fsync-interval-ms", "0",      # batch-of-1: seq == crash pivot
        "--wal-segment-bytes", "1",      # rotate on every second record
        "--wal-snapshot-every", "2",     # compact on every second record
        "--drain-grace-ms", "2000",
    ]
    if faults:
        argv += ["--faults", faults]
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if ack_path is not None:
        env[ACK_LOG_ENV] = ack_path
    else:
        env.pop(ACK_LOG_ENV, None)
    return subprocess.run(
        argv, env=env, capture_output=True, text=True,
        timeout=timeout_s,
    )


def _read_acks(ack_path: str) -> List[Dict[str, object]]:
    """Parse the ack log; a torn *final* line (the writer died inside
    ``os.write``) is ignored, torn earlier lines are an error."""
    if not os.path.exists(ack_path):
        return []
    with open(ack_path, "r", encoding="utf-8") as fh:
        raw = fh.read()
    lines = raw.split("\n")
    acks: List[Dict[str, object]] = []
    for j, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            acks.append(json.loads(line))
        except ValueError:
            if j == len(lines) - 1:
                break  # torn final line: never completed, not promised
            raise
    return acks


def _check_iteration(
    i: int,
    site: str,
    seq: int,
    proc: "subprocess.CompletedProcess[str]",
    state_dir: str,
    ack_path: str,
    report: Dict[str, object],
) -> Optional[Dict[str, object]]:
    """One iteration's invariants; a dict describes the violation."""
    context: Dict[str, object] = {
        "iteration": i, "site": site, "seq": seq,
        "returncode": proc.returncode,
        "stderr": proc.stderr[-4000:],
    }
    if proc.returncode != -signal.SIGKILL:
        context["problem"] = (
            f"crash point never fired: child exited "
            f"{proc.returncode}, expected -SIGKILL"
        )
        return context
    report["killed"] += 1  # type: ignore[operator]

    acks = _read_acks(ack_path)
    acked_last = max((int(a["seq"]) for a in acks), default=0)
    context["acked_last_seq"] = acked_last
    try:
        rec = recover_state(state_dir, truncate=True)
    except RecoveryError as exc:
        context["problem"] = f"recovery refused: {exc}"
        return context
    context["recovered_last_seq"] = rec.last_seq
    if rec.torn_tail is not None:
        report["torn_tails"] += 1  # type: ignore[operator]
        if not rec.warnings:
            context["problem"] = "torn tail truncated without a warning"
            return context

    if rec.last_seq < acked_last:
        context["problem"] = (
            f"LOST ACKED MUTATIONS: acked through seq {acked_last}, "
            f"recovered only through {rec.last_seq}"
        )
        return context
    if rec.last_seq > acked_last and site != "wal.post_fsync_pre_ack":
        # post_fsync_pre_ack can die between the ack-log fsync and the
        # fault consultation of a *later* record in the same batch;
        # with --fsync-interval-ms 0 batches are singletons, so any
        # other site recovering *more* than was promised means an
        # unacked record was resurrected.
        context["problem"] = (
            f"RESURRECTED UNACKED MUTATIONS: acked through seq "
            f"{acked_last}, recovered through {rec.last_seq}"
        )
        return context

    expected: Dict[int, List[Tuple[str, str]]] = {}
    for ack in acks:
        expected.setdefault(int(ack["shard"]), []).append(
            (str(ack["sql"]), str(ack["session"]))
        )
    shards = set(expected) | set(rec.journals)
    for shard in sorted(shards):
        want = json.dumps(
            compact_journal(expected.get(shard, [])), sort_keys=True,
        )
        got = json.dumps(
            compact_journal(rec.journals.get(shard, [])),
            sort_keys=True,
        )
        if want != got:
            context["problem"] = (
                f"catalog mismatch on shard {shard}: compacted "
                f"recovered journal differs from compacted acked "
                f"journal"
            )
            context["expected_journal"] = json.loads(want)
            context["recovered_journal"] = json.loads(got)
            return context
    return None


def _ensure_mutations(
    workload: str,
    state_root: str,
    rows: int,
    emit: Callable[[str], None],
) -> Tuple[str, int]:
    """Use the given workload only if it mutates the catalog enough."""
    mutations = 0
    try:
        with open(workload, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("kind") != "statement":
                    continue
                sql = str(record.get("statement", "")).lstrip().upper()
                if sql.startswith(("CREATE", "DROP", "REORDER")):
                    mutations += 1
    except (OSError, ValueError):
        mutations = 0
    if mutations >= 4:
        return workload, mutations
    synthesized = os.path.join(state_root, "torture.worklog.jsonl")
    write_torture_workload(synthesized, rows=rows)
    emit(
        f"workload {workload} has only {mutations} catalog "
        f"mutation(s); torturing the synthesized workload "
        f"{synthesized} instead"
    )
    return synthesized, TORTURE_MUTATIONS


def _write_artifact(
    state_root: str, iteration: int, failure: Dict[str, object]
) -> None:
    path = os.path.join(
        state_root, f"torture-failure-{iteration:03d}.json"
    )
    # repro-lint: ignore[RL010] — failure report, not the durable state
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(failure, fh, indent=2, sort_keys=True)
        fh.write("\n")
