"""The WAL record format: length-prefixed, checksummed, append-only.

One catalog mutation is one *record* on disk: a fixed 20-byte header —
two magic bytes, a format version byte, the owning shard, the global
sequence number, the payload length, and a CRC32 — followed by a UTF-8
JSON payload ``{"sql": ..., "session": ...}``.  The CRC covers the
header prefix *and* the payload, so a bit flipped anywhere in a record
(not just its body) fails verification.

Framing mirrors the pipe protocol (:mod:`repro.serve.proc.protocol`)
deliberately: an explicit declared length is what turns a crash
mid-``write`` into a *detectable* torn tail instead of a silently
half-parsed statement.  The scanner (:func:`scan_segment`) reads
records until the bytes stop cooperating and reports exactly where —
the recovery layer decides whether that offset is a legal torn tail
(end of the newest segment) or corruption of acknowledged history.

Records are append-only and never rewritten in place; compaction
happens by writing a whole-catalog snapshot and deleting superseded
segments (:mod:`repro.serve.durability.wal`), never by editing a log.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, List, Optional, Tuple

from repro.errors import DurabilityError

__all__ = [
    "WAL_MAGIC", "WAL_VERSION", "HEADER", "WalRecord",
    "encode_record", "scan_segment",
]

WAL_MAGIC = b"RW"  # "repro WAL" (the pipe protocol owns b"RP")
WAL_VERSION = 1

# magic, version, shard, seq (64-bit: a long-lived catalog outlives
# 2**32 mutations in theory, and 8 bytes are cheap), payload length,
# crc32 over header-prefix + payload
HEADER = struct.Struct(">2sBBQII")


@dataclass(frozen=True)
class WalRecord:
    """One decoded record plus where it sits in its segment file."""

    seq: int
    shard: int
    sql: str
    session: str
    offset: int      # byte offset of the header within the segment
    length: int      # total on-disk size, header included


def encode_record(seq: int, shard: int, sql: str, session: str) -> bytes:
    """One catalog mutation as its on-disk bytes."""
    if not 0 <= shard <= 0xFF:
        raise DurabilityError(f"shard {shard} does not fit the format")
    if seq < 0:
        raise DurabilityError(f"negative WAL seq {seq}")
    payload = json.dumps(
        {"sql": sql, "session": session}, sort_keys=True,
    ).encode("utf-8")
    prefix = struct.pack(">2sBBQI", WAL_MAGIC, WAL_VERSION, shard, seq,
                         len(payload))
    crc = zlib.crc32(prefix + payload) & 0xFFFFFFFF
    return prefix + struct.pack(">I", crc) + payload


def scan_segment(
    fh: BinaryIO,
) -> Tuple[List[WalRecord], Optional[int], Optional[str]]:
    """Read every intact record; stop at the first one that is not.

    Returns ``(records, bad_offset, reason)``.  ``bad_offset`` is
    ``None`` when the segment ends exactly on a record boundary (clean
    EOF); otherwise it is the byte offset of the first unreadable
    record and ``reason`` says what went wrong (short header, short
    payload, bad magic/version, CRC mismatch, unparsable payload).

    The scanner never raises on damaged bytes — *whether* damage is
    tolerable (a torn tail) or fatal (mid-history corruption) is the
    recovery layer's call, made with cross-segment context this
    function does not have.
    """
    records: List[WalRecord] = []
    offset = fh.tell()
    while True:
        header = fh.read(HEADER.size)
        if not header:
            return records, None, None
        if len(header) < HEADER.size:
            return records, offset, (
                f"short header: {len(header)} byte(s), "
                f"need {HEADER.size}"
            )
        magic, version, shard, seq, length, crc = HEADER.unpack(header)
        if magic != WAL_MAGIC:
            return records, offset, f"bad record magic {magic!r}"
        if version != WAL_VERSION:
            return records, offset, (
                f"record format version {version}, this build "
                f"speaks {WAL_VERSION}"
            )
        payload = fh.read(length)
        if len(payload) < length:
            return records, offset, (
                f"short payload: header declares {length} byte(s), "
                f"got {len(payload)}"
            )
        expect = zlib.crc32(header[:-4] + payload) & 0xFFFFFFFF
        if crc != expect:
            return records, offset, (
                f"CRC mismatch: stored {crc:#010x}, "
                f"computed {expect:#010x}"
            )
        try:
            body = json.loads(payload.decode("utf-8"))
            sql = body["sql"]
            session = body["session"]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) \
                as exc:
            # a payload that checksummed but does not parse means the
            # *writer* was broken, not the disk; still not scannable
            return records, offset, f"unparsable payload: {exc}"
        records.append(WalRecord(
            seq=int(seq), shard=int(shard), sql=str(sql),
            session=str(session), offset=offset,
            length=HEADER.size + length,
        ))
        offset += HEADER.size + length
