"""The write-ahead log: group commit, segment rotation, compaction.

:class:`WalWriter` is the durability half of the catalog contract: a
catalog-mutating statement's response is *released to the client only
after* its WAL record is fsync'd.  :meth:`commit` blocks until that
has happened and returns the record's global sequence number.

Two commit modes share one flush path:

* ``fsync_interval_ms == 0`` (the default) — every commit appends and
  fsyncs inline: one mutation, one fsync, maximal determinism.
* ``fsync_interval_ms > 0`` — **group commit**: commits queue their
  records and block on an event; a flusher thread wakes every
  interval, writes the whole pending batch, issues *one* fsync, and
  releases every waiter at once.  Catalog mutations are rare relative
  to reads, but a burst (a session replay, a migration script) pays
  one disk flush per interval instead of one per statement.

The log is a sequence of *segments* (``wal-<n>.log``); when the active
segment passes ``segment_max_bytes`` it is sealed (flushed, fsync'd,
closed) and a fresh one opened.  Every ``snapshot_every`` records the
writer asks its ``snapshot_cb`` for a full catalog image (the
supervisor compacts its in-memory journals and hands them over), seals
the active segment, writes ``snapshot-<seq>.json`` via the atomic
tmp + fsync + ``os.replace`` dance, and deletes the snapshots and
sealed segments the new image supersedes — bounding recovery time and
disk growth without ever rewriting a log in place.

Crash points, for the torture harness (all four consult the
:class:`~repro.robustness.faults.FaultInjector` narrowed by the
triggering sequence number, e.g. ``wal.pre_fsync:5=crash*1``; a
planned error at any of them SIGKILLs *this whole process*, because
the property under test is whole-supervisor death, not a tidy
exception):

``wal.pre_fsync``
    Before the batch is written.  The injected death first writes a
    *torn prefix* of the batch's first record — simulating the kernel
    having pushed half a ``write`` to disk — so recovery must truncate
    a checksum-failing tail, and the whole unacknowledged batch must
    vanish.
``wal.post_fsync_pre_ack``
    After fsync (and after the torture ack-log append — see below),
    before waiters are released.  The batch is durable but no client
    saw an acknowledgment: recovery must resurrect it, byte-identical.
``wal.segment_rotate``
    After the old segment is sealed and the new one opened, before the
    batch lands in it.  Recovery must stitch segments in order and
    tolerate a trailing empty segment.
``wal.mid_compaction``
    Between the snapshot temp file's fsync and its ``os.replace``.
    Recovery must ignore the temp file and rebuild from the previous
    snapshot plus the not-yet-deleted segments.

The commit point is the **fsync**, not the response: when the
``REPRO_WAL_ACK_LOG`` environment variable names a file, every record
is appended there (``os.write`` + ``os.fsync`` on an ``O_APPEND`` fd)
*after* the WAL fsync and *before* ``wal.post_fsync_pre_ack`` can
fire.  That file is the torture harness's ground truth: at every
injected crash point the set of acked mutations equals the set of
durable ones, so "recovered == acked prefix" is assertable exactly.

A WAL failure (``OSError`` from a write or fsync) raises
:class:`~repro.errors.DurabilityError` out of :meth:`commit` and is
never absorbed: a server that cannot persist an ack must stop acking
(fail-stop), not hand out promises a crash would revoke.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from typing import Callable, Dict, List, Optional

from repro.errors import DurabilityError
from repro.obs.metrics import MetricsRegistry, registry
from repro.robustness.faults import FaultInjector
from repro.serve.durability.records import encode_record

__all__ = ["WalWriter", "SEGMENT_PREFIX", "SNAPSHOT_PREFIX",
           "ACK_LOG_ENV", "segment_path", "snapshot_path"]

SEGMENT_PREFIX = "wal-"
SNAPSHOT_PREFIX = "snapshot-"
ACK_LOG_ENV = "REPRO_WAL_ACK_LOG"


def segment_path(state_dir: str, ordinal: int) -> str:
    """Path of WAL segment ``ordinal`` inside ``state_dir``."""
    return os.path.join(state_dir, f"{SEGMENT_PREFIX}{ordinal:08d}.log")


def snapshot_path(state_dir: str, seq: int) -> str:
    """Path of the snapshot covering everything up to ``seq``."""
    return os.path.join(state_dir, f"{SNAPSHOT_PREFIX}{seq:012d}.json")


def _fsync_dir(path: str) -> None:
    """Make a create/rename in ``path`` itself durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class _Pending:
    """One committed-but-not-yet-durable record awaiting its fsync."""

    __slots__ = ("seq", "shard", "sql", "session", "data", "event",
                 "error", "on_durable")

    def __init__(
        self,
        seq: int,
        shard: int,
        sql: str,
        session: str,
        on_durable: Optional[Callable[[], None]] = None,
    ):
        self.seq = seq
        self.shard = shard
        self.sql = sql
        self.session = session
        self.data = encode_record(seq, shard, sql, session)
        self.event = threading.Event()
        self.error: Optional[BaseException] = None
        self.on_durable = on_durable


class WalWriter:
    """Appends checksummed records; blocks acks until they are durable.

    ``snapshot_cb`` (when given) must return the full catalog image as
    ``{"shards": int, "view_shard": {name: shard}, "journals":
    {shard: [[sql, session], ...]}}`` — the supervisor compacts its
    journals inside the callback, under its own lock.  The writer
    never takes the supervisor's lock while the supervisor holds the
    writer's: commits are issued *outside* the supervisor lock, so the
    only cross-lock edge is writer -> supervisor (inside the snapshot
    callback), which cannot deadlock.
    """

    def __init__(
        self,
        state_dir: str,
        *,
        start_seq: int = 0,
        start_ordinal: int = 0,
        fsync_interval_ms: float = 0.0,
        segment_max_bytes: int = 1 << 20,
        snapshot_every: int = 64,
        snapshot_cb: Optional[Callable[[], Dict[str, object]]] = None,
        faults: Optional[FaultInjector] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if fsync_interval_ms < 0:
            raise ValueError(
                f"fsync_interval_ms must be >= 0, got {fsync_interval_ms}"
            )
        if segment_max_bytes < 1:
            raise ValueError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        if snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self.state_dir = state_dir
        self.fsync_interval_s = fsync_interval_ms / 1e3
        self.segment_max_bytes = segment_max_bytes
        self.snapshot_every = snapshot_every
        self._snapshot_cb = snapshot_cb
        self._faults = faults
        self._metrics = metrics if metrics is not None else registry()
        self._lock = threading.Lock()
        self._last_seq = start_seq
        self._last_snapshot_seq = start_seq
        self._records_since_snapshot = 0
        self._pending: List[_Pending] = []
        self._closed = False
        os.makedirs(state_dir, exist_ok=True)
        self._ordinal = start_ordinal
        self._fh = open(segment_path(state_dir, start_ordinal), "ab")
        self._segment_bytes = self._fh.tell()
        _fsync_dir(state_dir)
        ack_path = os.environ.get(ACK_LOG_ENV)
        self._ack_fd = (
            os.open(ack_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                    0o644)
            if ack_path else None
        )
        self._flusher: Optional[threading.Thread] = None
        self._wake = threading.Event()
        if self.fsync_interval_s > 0:
            self._flusher = threading.Thread(
                target=self._flush_loop, name="repro-wal-flusher",
                daemon=True,
            )
            self._flusher.start()

    # -- the commit path ---------------------------------------------------

    def commit(
        self,
        shard: int,
        sql: str,
        session: str,
        on_durable: Optional[Callable[[], None]] = None,
    ) -> int:
        """Append one mutation and block until it is fsync-durable.

        Returns the record's sequence number.  Raises
        :class:`~repro.errors.DurabilityError` if the append or fsync
        failed — in which case the caller must not release an ack.

        ``on_durable`` (when given) runs under the WAL lock right after
        the record's fsync and *before* any snapshot compaction this
        commit triggers — it is the one window where the caller can
        fold the now-durable mutation into the state ``snapshot_cb``
        images, so a snapshot whose ``last_seq`` covers this record
        always contains it.  It must be cheap and must not call back
        into the WAL.
        """
        with self._lock:
            if self._closed:
                raise DurabilityError("WAL is closed")
            entry = _Pending(
                self._last_seq + 1, shard, sql, session,
                on_durable=on_durable,
            )
            self._last_seq = entry.seq
            if self.fsync_interval_s <= 0:
                self._flush_locked([entry])
                return entry.seq
            self._pending.append(entry)
        self._wake.set()
        entry.event.wait()
        if entry.error is not None:
            raise DurabilityError(
                f"WAL append failed for seq {entry.seq}: {entry.error}"
            ) from entry.error
        return entry.seq

    def _flush_loop(self) -> None:
        while True:
            self._wake.wait(timeout=self.fsync_interval_s)
            self._wake.clear()
            with self._lock:
                batch = self._pending
                self._pending = []
                closed = self._closed
                if batch:
                    try:
                        self._flush_locked(batch)
                    # a failed flush is recorded on every waiter (each
                    # re-raises DurabilityError from commit()); the
                    # flusher survives so later commits fail loudly
                    # too instead of hanging
                    # repro-lint: ignore[RL004]
                    except Exception as exc:
                        for entry in batch:
                            entry.error = exc
                            entry.event.set()
            if closed:
                return

    def _flush_locked(self, batch: List[_Pending]) -> None:
        """Write + fsync one batch; call with ``self._lock`` held."""
        if self._segment_bytes >= self.segment_max_bytes:
            self._rotate_locked(batch[0].seq)
        for entry in batch:
            self._fire("wal.pre_fsync", entry.seq, torn_prefix_of=batch[0])
        try:
            for entry in batch:
                self._fh.write(entry.data)
                # repro-lint: ignore[RL007] — caller holds self._lock
                self._segment_bytes += len(entry.data)
                self._metrics.counter("wal.appends").inc()
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            raise DurabilityError(f"WAL write failed: {exc}") from exc
        self._metrics.counter("wal.fsyncs").inc()
        self._metrics.counter("wal.batched_acks").inc(len(batch))
        self._ack_log_locked(batch)
        for entry in batch:
            self._fire("wal.post_fsync_pre_ack", entry.seq)
        for entry in batch:
            # the durable hook runs before the waiter is released AND
            # before the snapshot check below: whatever state the
            # snapshot images has absorbed every record it claims
            if entry.on_durable is not None:
                entry.on_durable()
        for entry in batch:
            entry.event.set()
        # repro-lint: ignore[RL007] — caller holds self._lock
        self._records_since_snapshot += len(batch)
        if (
            self.snapshot_every
            and self._snapshot_cb is not None
            and self._records_since_snapshot >= self.snapshot_every
        ):
            self._snapshot_locked()

    def _ack_log_locked(self, batch: List[_Pending]) -> None:
        """Durably record the batch as *acknowledged* (torture only).

        Written after the WAL fsync and before
        ``wal.post_fsync_pre_ack`` can fire, so the ack log and the
        durable WAL agree at every injected crash point — the file is
        the harness's definition of "the client was promised this".
        """
        if self._ack_fd is None:
            return
        lines = "".join(
            json.dumps(
                {"seq": e.seq, "shard": e.shard, "sql": e.sql,
                 "session": e.session},
                sort_keys=True,
            ) + "\n"
            for e in batch
        )
        os.write(self._ack_fd, lines.encode("utf-8"))
        os.fsync(self._ack_fd)

    # -- rotation and compaction -------------------------------------------

    def _rotate_locked(self, seq: int) -> None:
        """Seal the active segment, open the next one (lock held)."""
        self._seal_locked()
        # repro-lint: ignore[RL007] — caller holds self._lock
        self._ordinal += 1
        # repro-lint: ignore[RL007] — caller holds self._lock
        self._fh = open(segment_path(self.state_dir, self._ordinal), "ab")
        # repro-lint: ignore[RL007] — caller holds self._lock
        self._segment_bytes = 0
        _fsync_dir(self.state_dir)
        self._metrics.counter("wal.segments_rotated").inc()
        self._fire("wal.segment_rotate", seq)

    def _seal_locked(self) -> None:
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
        except OSError as exc:
            raise DurabilityError(
                f"WAL segment seal failed: {exc}"
            ) from exc

    def _snapshot_locked(self) -> None:
        """Write a catalog snapshot; truncate superseded history."""
        image = self._snapshot_cb()  # takes the supervisor lock
        seq = self._last_seq
        # seal + rotate first: every sealed segment now holds only
        # records the snapshot covers, so deleting them cannot lose a
        # record the snapshot missed
        self._rotate_locked(seq)
        payload = {
            "kind": "repro-wal-snapshot",
            "version": 1,
            "last_seq": seq,
            "shards": int(image.get("shards") or 0),
            "view_shard": image.get("view_shard") or {},
            "journals": {
                str(k): [list(e) for e in v]
                for k, v in (image.get("journals") or {}).items()
            },
        }
        final = snapshot_path(self.state_dir, seq)
        tmp = os.path.join(
            self.state_dir,
            f".{os.path.basename(final)}.tmp.{os.getpid()}",
        )
        # the tmp+fsync+replace dance is inlined (not atomic_write_text)
        # because the mid-compaction crash point must fire *between*
        # the tmp fsync and the rename — exactly the window the atomic
        # helper exists to make unobservable
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._fire("wal.mid_compaction", seq)
            os.replace(tmp, final)
            _fsync_dir(self.state_dir)
        except OSError as exc:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise DurabilityError(
                f"snapshot write failed: {exc}"
            ) from exc
        self._metrics.counter("wal.snapshots").inc()
        # repro-lint: ignore[RL007] — caller holds self._lock
        self._last_snapshot_seq = seq
        # repro-lint: ignore[RL007] — caller holds self._lock
        self._records_since_snapshot = 0
        self._truncate_superseded_locked(seq)

    def _truncate_superseded_locked(self, snap_seq: int) -> None:
        """Delete snapshots and sealed segments the new image covers."""
        for name in sorted(os.listdir(self.state_dir)):
            path = os.path.join(self.state_dir, name)
            if name.startswith(SNAPSHOT_PREFIX) and name.endswith(".json"):
                if path != snapshot_path(self.state_dir, snap_seq):
                    os.unlink(path)
            elif name.startswith(SEGMENT_PREFIX) and name.endswith(".log"):
                ordinal = _segment_ordinal(name)
                if ordinal is not None and ordinal < self._ordinal:
                    os.unlink(path)
        _fsync_dir(self.state_dir)

    # -- crash points ------------------------------------------------------

    def _fire(
        self,
        site: str,
        seq: int,
        torn_prefix_of: Optional[_Pending] = None,
    ) -> None:
        """Consult one ``wal.*`` fault site; a planned fault is death.

        The sites exist to *kill this process mid-dance* — the torture
        harness's whole-supervisor SIGKILL — so any planned error here
        becomes ``SIGKILL`` to our own pid: no handlers, no cleanup,
        no flushes, exactly like ``kill -9`` from outside.  For
        ``wal.pre_fsync``, a torn prefix of the batch's first record
        is written (and pushed to the OS) first, simulating the
        half-a-``write`` the page cache would have kept from a real
        mid-append crash.
        """
        if self._faults is None:
            return
        try:
            self._faults.fire(site, str(seq))
        # any planned exception at a wal.* site means "die here";
        # converting it to SIGKILL *is* the handling (and the process
        # ends, so nothing is swallowed)
        # repro-lint: ignore[RL004]
        except Exception:
            if torn_prefix_of is not None:
                try:
                    self._fh.write(
                        torn_prefix_of.data[:len(torn_prefix_of.data) // 2]
                    )
                    self._fh.flush()
                except OSError:
                    pass  # dying anyway; the torn write is best-effort
            os.kill(os.getpid(), signal.SIGKILL)

    # -- lifecycle / introspection -----------------------------------------

    def close(self, final_snapshot: bool = True) -> None:
        """Flush everything, optionally snapshot, seal the segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batch = self._pending
            self._pending = []
            if batch:
                try:
                    self._flush_locked(batch)
                # record-and-release on every waiter; see _flush_loop
                # repro-lint: ignore[RL004]
                except Exception as exc:
                    for entry in batch:
                        entry.error = exc
                        entry.event.set()
            if (
                final_snapshot
                and self._snapshot_cb is not None
                and self._records_since_snapshot > 0
            ):
                self._snapshot_locked()
            self._seal_locked()
            if self._ack_fd is not None:
                os.close(self._ack_fd)
                self._ack_fd = None
        self._wake.set()
        if (
            self._flusher is not None
            and self._flusher is not threading.current_thread()
        ):
            self._flusher.join(timeout=2.0)

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest *assigned* record."""
        with self._lock:
            return self._last_seq

    def stats(self) -> Dict[str, object]:
        """A point-in-time WAL summary for the ops surface."""
        with self._lock:
            return {
                "last_seq": self._last_seq,
                "segment": self._ordinal,
                "segment_bytes": self._segment_bytes,
                "snapshot_seq": self._last_snapshot_seq,
                "records_since_snapshot": self._records_since_snapshot,
                "fsync_interval_ms": self.fsync_interval_s * 1e3,
            }


def _segment_ordinal(name: str) -> Optional[int]:
    """``wal-00000003.log`` -> 3 (``None`` for foreign file names)."""
    stem = name[len(SEGMENT_PREFIX):-len(".log")]
    try:
        return int(stem)
    except ValueError:
        return None
