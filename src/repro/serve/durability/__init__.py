"""Durable catalog state: WAL, snapshots, recovery, and torture.

The multi-process serving layer (:mod:`repro.serve.proc`) survives
*worker* death by replaying per-shard catalog journals into fresh
incarnations — but until this package, those journals lived only in
supervisor memory.  A supervisor crash lost every view a session had
built.

This package closes that hole with a classic three-piece design:

* :mod:`~repro.serve.durability.records` — the on-disk record format:
  length-prefixed, CRC32-checksummed frames, one per catalog mutation.
* :mod:`~repro.serve.durability.wal` — :class:`WalWriter`: group-commit
  append + fsync *before* a mutation's response is released, segment
  rotation, and periodic snapshot compaction (atomic tmp+fsync+replace
  of a full catalog image, then truncation of superseded segments).
* :mod:`~repro.serve.durability.recovery` — :func:`recover_state`:
  newest valid snapshot + ordered WAL replay + torn-tail truncation,
  yielding the journals and routing map the supervisor seeds itself
  from at startup.

The contract — **acked iff durable** — is proven, not assumed:
:mod:`~repro.serve.durability.torture` SIGKILLs the whole serving
process at deterministic crash points inside the WAL and asserts the
recovered catalog is byte-identical to the acknowledged prefix.
"""

from __future__ import annotations

from repro.serve.durability.records import (
    HEADER,
    WAL_MAGIC,
    WAL_VERSION,
    WalRecord,
    encode_record,
    scan_segment,
)
from repro.serve.durability.recovery import (
    RecoveredState,
    compact_journal,
    recover_state,
)
from repro.serve.durability.wal import (
    ACK_LOG_ENV,
    SEGMENT_PREFIX,
    SNAPSHOT_PREFIX,
    WalWriter,
    segment_path,
    snapshot_path,
)

__all__ = [
    "ACK_LOG_ENV",
    "HEADER",
    "SEGMENT_PREFIX",
    "SNAPSHOT_PREFIX",
    "WAL_MAGIC",
    "WAL_VERSION",
    "RecoveredState",
    "WalRecord",
    "WalWriter",
    "compact_journal",
    "encode_record",
    "recover_state",
    "scan_segment",
    "segment_path",
    "snapshot_path",
]
