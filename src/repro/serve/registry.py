"""The named CAD View catalog as copy-on-write snapshots.

Concurrency invariant (checked by repro-lint RL007): readers never take
a lock and never observe a half-applied mutation.  ``_views`` always
points at an *immutable* dict; every mutation copies the current dict
under ``_lock``, applies the change to the copy, and swaps the
reference in one assignment.  A reader that grabbed the old reference
keeps a consistent catalog for as long as it holds it — exactly what an
in-flight ``HIGHLIGHT SIMILAR`` needs while another session drops or
rebuilds the view it is reading.

The registry implements the read-only ``Mapping`` protocol so existing
callers (the semantic analyzer's view-existence checks, ``SHOW
CADVIEWS`` sorting) keep working unchanged against a snapshot.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Mapping, Optional

from repro.errors import CADViewError

__all__ = ["ViewRegistry"]


class ViewRegistry(Mapping):
    """A thread-safe, copy-on-write mapping of view name -> CAD View."""

    def __init__(self, initial: Optional[Mapping[str, object]] = None):
        self._lock = threading.Lock()
        self._views: Dict[str, object] = dict(initial or {})

    # -- reading (lock-free: one volatile reference read) -----------------

    def snapshot(self) -> Dict[str, object]:
        """The current immutable catalog; safe to iterate at leisure."""
        return self._views

    def __getitem__(self, name: str) -> object:
        return self._views[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._views)

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: object) -> bool:
        return name in self._views

    def get_view(self, name: str) -> object:
        """Look up a view, raising the explorer's usual error shape."""
        views = self._views
        try:
            return views[name]
        except KeyError:
            raise CADViewError(
                f"unknown CAD View {name!r}; have {sorted(views)}"
            ) from None

    # -- mutation (copy under the lock, swap one reference) ---------------

    def set(self, name: str, view: object) -> None:
        """Create or replace a named view atomically."""
        with self._lock:
            views = dict(self._views)
            views[name] = view
            self._views = views

    def drop(self, name: str) -> None:
        """Remove a named view; raises when it does not exist."""
        with self._lock:
            if name not in self._views:
                raise CADViewError(f"unknown CAD View {name!r}")
            views = dict(self._views)
            del views[name]
            self._views = views

    def __repr__(self) -> str:
        return f"ViewRegistry({sorted(self._views)})"
