"""Per-dataset circuit breakers for CAD View builds.

A breaker guards one dataset (one FROM table).  While *closed* it just
counts consecutive failures and deadline blowouts; once the trip
threshold is reached it *opens*: for ``cooldown_s`` every new build
against that dataset is short-circuited to the PR-1 degradation ladder
(a tight budget that forces sampled selection and whole-partition
IUnits) instead of burning a pool thread on the full pipeline.  After
the cooldown one *half-open* probe build runs at full budget; success
closes the breaker, failure re-opens it for another cooldown.

The state machine is deliberately small and fully synchronous — every
transition happens under one lock inside :meth:`on_success` /
:meth:`on_failure` / :meth:`allow` — so its behavior is exhaustively
unit-testable with an injected clock (``now``).

Success for breaker purposes means "the build produced an answer": a
*degraded* build still counts as success (the ladder did its job); a
rejection never reaches the breaker (admission control is upstream).
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, registry

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker", "BreakerBoard"]


class BreakerState(enum.Enum):
    """The three positions of the breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip and recovery policy of one breaker.

    trip_after:
        Consecutive failures (or deadline blowouts) that open the
        breaker.
    cooldown_s:
        How long an open breaker short-circuits builds before allowing
        a half-open probe.
    probe_successes:
        Probe builds that must succeed in half-open before the breaker
        closes again.
    """

    trip_after: int = 3
    cooldown_s: float = 5.0
    probe_successes: int = 1

    def __post_init__(self) -> None:
        if self.trip_after < 1:
            raise ValueError(
                f"trip_after must be >= 1, got {self.trip_after}"
            )
        if self.cooldown_s <= 0:
            raise ValueError(
                f"cooldown_s must be > 0, got {self.cooldown_s}"
            )
        if self.probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )


class CircuitBreaker:
    """Closed -> open -> half-open state machine for one dataset."""

    def __init__(
        self,
        key: str,
        config: BreakerConfig = BreakerConfig(),
        now: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.key = key
        self.config = config
        self._now = now
        self._metrics = metrics if metrics is not None else registry()
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0          # consecutive, while closed
        self._probes_ok = 0         # successful probes, while half-open
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> BreakerState:
        """The current position (open may lazily report half-open)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    # -- the executor-facing protocol --------------------------------------

    def allow(self) -> Tuple[bool, bool]:
        """Gate one incoming build: ``(full_pipeline, is_probe)``.

        CLOSED -> ``(True, False)``: run the full pipeline.
        OPEN   -> ``(False, False)``: short-circuit to degraded mode.
        HALF_OPEN -> ``(True, True)`` for the single in-flight probe,
        ``(False, False)`` for everyone else while the probe runs.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True, False
            if self._state is BreakerState.HALF_OPEN \
                    and not self._probe_in_flight:
                self._probe_in_flight = True
                return True, True
            return False, False

    def on_success(self, probe: bool = False) -> None:
        """Record a completed build (ok or degraded — both count)."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN and probe:
                self._probe_in_flight = False
                self._probes_ok += 1
                if self._probes_ok >= self.config.probe_successes:
                    self._transition(BreakerState.CLOSED)
                    self._failures = 0
            elif self._state is BreakerState.CLOSED:
                self._failures = 0

    def on_cancelled(self, probe: bool = False) -> None:
        """Record a build cancelled for reasons unrelated to its health.

        A client disconnect or a drain cancels the build before it can
        prove anything, so the breaker must treat the attempt as
        *inconclusive*: no failure is counted, and — the half-open race
        this fixes — a cancelled probe releases the probe slot and the
        breaker **stays half-open** instead of latching back to open
        with a fresh cooldown.  The next arrival becomes the new probe.
        (Deadline-triggered cancellations do not come here; the
        executor routes them to :meth:`on_failure` — blowing the
        serving deadline is precisely the unhealth the breaker exists
        to detect.)
        """
        with self._lock:
            if self._state is BreakerState.HALF_OPEN and probe:
                self._probe_in_flight = False

    def on_failure(self, probe: bool = False) -> None:
        """Record a failed or deadline-blown build."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN and probe:
                # the probe failed: straight back to open, fresh cooldown
                self._probe_in_flight = False
                self._transition(BreakerState.OPEN)
                self._opened_at = self._now()
            elif self._state is BreakerState.CLOSED:
                self._failures += 1
                if self._failures >= self.config.trip_after:
                    self._transition(BreakerState.OPEN)
                    self._opened_at = self._now()

    # -- internals (call with self._lock held) -----------------------------

    def _maybe_half_open(self) -> None:
        # lock held by every caller (allow/state/on_*, see the section
        # header); the lexical check cannot see through the call boundary
        if self._state is BreakerState.OPEN and (
            self._now() - self._opened_at >= self.config.cooldown_s
        ):
            self._transition(BreakerState.HALF_OPEN)
            # repro-lint: ignore[RL007]
            self._probes_ok = 0
            # repro-lint: ignore[RL007]
            self._probe_in_flight = False

    def _transition(self, to: BreakerState) -> None:
        if to is self._state:
            return
        self._metrics.counter(
            f"serve.breaker.{self.key}."
            f"{self._state.value}_to_{to.value}"
        ).inc()
        # lock held by the caller (see the section header)
        # repro-lint: ignore[RL007]
        self._state = to
        self._metrics.gauge(f"serve.breaker.{self.key}.open").set(
            0.0 if to is BreakerState.CLOSED else 1.0
        )

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.key!r}, {self._state.value}, "
            f"failures={self._failures})"
        )


class BreakerBoard:
    """Get-or-create registry of per-dataset breakers."""

    def __init__(
        self,
        config: BreakerConfig = BreakerConfig(),
        now: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config
        self._now = now
        self._metrics = metrics
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, key: str) -> CircuitBreaker:
        """The breaker guarding ``key`` (a dataset/table name)."""
        with self._lock:
            brk = self._breakers.get(key)
            if brk is None:
                brk = self._breakers[key] = CircuitBreaker(
                    key, self.config, now=self._now,
                    metrics=self._metrics,
                )
            return brk

    def states(self) -> Dict[str, str]:
        """Key -> state name, for reports and the stress driver."""
        with self._lock:
            breakers = dict(self._breakers)
        return {k: b.state.value for k, b in sorted(breakers.items())}
