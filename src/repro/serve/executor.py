"""The session executor: a bounded thread pool around DBExplorer.

One :class:`SessionExecutor` turns a single :class:`~repro.core.explorer.
DBExplorer` into a multi-session server.  Statements are *submitted*,
not called: :meth:`SessionExecutor.submit` either admits the statement
into a **bounded** queue and returns a :class:`StatementTicket`, or
rejects it right away with :class:`~repro.errors.OverloadedError`
carrying a Retry-After estimate.  The serving core never queues
unboundedly — under overload it says so, cheaply, at the door.

What happens to an admitted statement:

1. The **analyzer gate** runs on the caller thread at submit, so a
   statement the semantic analyzer rejects never costs a queue slot or
   a pool thread (plain worker-side execution re-checks it — the gate
   is an admission optimization, not the source of truth).
2. A **worker thread** picks the ticket up.  If a per-dataset
   :class:`~repro.serve.breaker.CircuitBreaker` is open, the build is
   short-circuited onto the PR-1 degradation ladder: it runs under the
   tight ``open_budget`` instead of the full pipeline budget.
3. The **watchdog thread** enforces the per-query wall-clock deadline
   by tripping the ticket's :class:`~repro.robustness.CancelToken`;
   the build notices at its next budget checkpoint and raises
   :class:`~repro.errors.QueryCancelledError` — cancellation is
   cooperative, there is no thread killing.
4. **Transient faults** (injected worker crashes, clustering
   convergence failures) are retried with exponential backoff and
   deterministic jitter; everything else fails the ticket immediately.

Every admitted statement ends in exactly one terminal *outcome* —
``ok``, ``degraded``, ``rejected`` or ``failed`` — and leaves a
workload-log record behind (``dbx.execute`` writes it for statements
that ran; the executor writes it for statements that never reached the
explorer: admission rejections, gate failures, cancellations while
still queued).

Fault sites consulted here (see :mod:`repro.robustness.faults`):
``serve.queue_full`` forces an admission rejection even when the queue
has room; ``serve.slow_worker`` stalls (``sleep``) or crashes
(``crash``) the worker just before a statement executes.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Union,
)

from repro.errors import (
    AnalysisError,
    ConvergenceError,
    OverloadedError,
    ParseError,
    QueryCancelledError,
    ReproError,
    ServeError,
)
from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.worklog import statement_kind
from repro.query.ast import CreateCadViewStatement, ExplainStatement
from repro.query.parser import parse
from repro.robustness.budget import Budget
from repro.robustness.cancel import CancelToken
from repro.robustness.faults import NO_FAULTS, FaultInjector
from repro.serve.breaker import BreakerBoard, BreakerConfig

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids serve<->core cycle
    from repro.core.explorer import DBExplorer

__all__ = ["ServeConfig", "SessionExecutor", "StatementTicket", "OUTCOMES"]

OUTCOMES = ("ok", "degraded", "rejected", "failed")
"""Every ticket ends in exactly one of these terminal outcomes."""

# Exceptions the retry machinery treats as transient: injected worker
# crashes (RuntimeError from the fault plan's ``crash`` kind), clustering
# that failed to converge, and I/O hiccups.  Semantic failures (parse /
# analysis / build errors) are deterministic and never retried.
_TRANSIENT_ERRORS = (ConvergenceError, RuntimeError, OSError)


def _default_open_budget() -> Budget:
    # what a short-circuited build runs under while its breaker is open:
    # tight enough to force the sampling/greedy rungs of the degradation
    # ladder, generous enough that a degraded answer usually completes
    return Budget(deadline_s=0.25, max_rows=2000, retries=0)


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one :class:`SessionExecutor`.

    workers:
        Pool threads executing statements.
    queue_limit:
        Statements allowed to *wait* beyond the ones executing: once
        ``queued + active >= workers + queue_limit``, submits are
        rejected with :class:`~repro.errors.OverloadedError`.
    deadline_s:
        Per-query wall-clock deadline, measured from admission (queue
        wait counts); ``None`` disables the watchdog.
    max_retries:
        Extra attempts for transient failures (injected crashes,
        convergence errors) before the ticket fails.
    backoff_base_s / backoff_cap_s / retry_jitter_seed:
        Exponential backoff between retries: attempt ``n`` sleeps
        ``min(cap, base * 2**n)`` scaled by a deterministic jitter in
        ``[0.5, 1.0)`` seeded from ``(retry_jitter_seed, statement
        index, attempt)`` — reruns back off identically.
    breaker:
        Per-dataset circuit-breaker policy; ``None`` disables breakers
        entirely (deterministic replay does this — breaker state would
        otherwise depend on cross-statement completion order).
    open_budget:
        The tight budget a build runs under while its dataset's breaker
        is open (the short-circuit to the degradation ladder).
    watchdog_interval_s:
        How often the watchdog scans outstanding deadlines.
    """

    workers: int = 4
    queue_limit: int = 8
    deadline_s: Optional[float] = None
    max_retries: int = 2
    backoff_base_s: float = 0.02
    backoff_cap_s: float = 0.5
    retry_jitter_seed: int = 0
    breaker: Optional[BreakerConfig] = field(default_factory=BreakerConfig)
    open_budget: Budget = field(default_factory=_default_open_budget)
    watchdog_interval_s: float = 0.005

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 0:
            raise ValueError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.watchdog_interval_s <= 0:
            raise ValueError(
                f"watchdog_interval_s must be > 0, "
                f"got {self.watchdog_interval_s}"
            )


class StatementTicket:
    """One admitted statement: a future plus its serving metadata.

    Tickets are created by :meth:`SessionExecutor.submit` and completed
    by a worker thread; :meth:`wait` blocks until then.  After
    completion, ``outcome`` is one of :data:`OUTCOMES`, ``status`` is
    the workload-log status string, and exactly one of ``result`` /
    ``error`` is set (both ``None`` only for statements whose result is
    ``None`` itself).
    """

    def __init__(
        self,
        index: int,
        sql: str,
        session: str,
        faults: FaultInjector,
        deadline_at: Optional[float] = None,
    ):
        self.index = index
        self.sql = sql
        self.session = session
        self.faults = faults
        self.deadline_at = deadline_at
        self.cancel = CancelToken()
        self.kind: Optional[str] = None       # statement_kind, once parsed
        self.dataset: Optional[str] = None    # breaker key, builds only
        self.attempts = 0
        self.short_circuited = False          # ran under open_budget
        self.probe = False                    # was the half-open probe
        self.result: Optional[object] = None
        self.error: Optional[BaseException] = None
        self.status: Optional[str] = None
        self.outcome: Optional[str] = None
        # set by the multi-process supervisor, whose workers reduce
        # results to JSON digest payloads before they cross the pipe
        # (the thread executor leaves these unset and callers fall back
        # to ``result`` / the session's last report)
        self.degradations: Optional[List[str]] = None
        self.result_payload: object = None
        self.has_result_payload = False
        # deterministic work counters of the execution (proc mode: the
        # worker ships them with the response; thread mode leaves this
        # None and callers read the session's last_work)
        self.work: Optional[Dict[str, int]] = None
        self.proc_attempts = 0                # resubmits after worker deaths
        self._done = threading.Event()
        self._callbacks: List[Callable[["StatementTicket"], None]] = []

    @property
    def done(self) -> bool:
        """True once the ticket reached a terminal outcome."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticket completes; False on timeout."""
        return self._done.wait(timeout)

    def add_done_callback(
        self, fn: Callable[["StatementTicket"], None]
    ) -> None:
        """Run ``fn(ticket)`` on completion (immediately if done)."""
        if self._done.is_set():
            fn(self)
            return
        self._callbacks.append(fn)
        # close the register-vs-finish race: _finish may have run
        # between the check above and the append
        if self._done.is_set() and fn in self._callbacks:
            self._callbacks.remove(fn)
            fn(self)

    def _finish(
        self,
        outcome: str,
        status: str,
        result: Optional[object] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        if outcome not in OUTCOMES:
            raise ServeError(f"unknown ticket outcome {outcome!r}")
        self.outcome = outcome
        self.status = status
        self.result = result
        self.error = error
        self._done.set()
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:
        state = self.outcome if self.done else "pending"
        return (
            f"StatementTicket(#{self.index}, {state}, "
            f"session={self.session!r})"
        )


class SessionExecutor:
    """Bounded-admission thread pool executing statements through ``dbx``.

    >>> dbx = DBExplorer()
    >>> dbx.register("data", table)
    >>> with SessionExecutor(dbx, ServeConfig(workers=4)) as ex:
    ...     ticket = ex.submit("SELECT Price FROM data", session="u1")
    ...     ticket.wait()
    ...     assert ticket.outcome in ("ok", "degraded")

    ``now`` and ``sleep`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        dbx: "DBExplorer",
        config: Optional[ServeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        now: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.dbx = dbx
        self.config = config if config is not None else ServeConfig()
        self._metrics = metrics if metrics is not None else registry()
        self._now = now
        self._sleep = sleep
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[StatementTicket]]" = queue.Queue()
        self._queued = 0       # tickets waiting for a worker
        self._active = 0       # tickets executing right now
        self._submitted = 0    # monotonically increasing ticket index
        self._latency_ewma_s = 0.0
        self._outstanding: Dict[int, StatementTicket] = {}
        self._closed = False
        self._breakers: Optional[BreakerBoard] = (
            BreakerBoard(self.config.breaker, now=now, metrics=metrics)
            if self.config.breaker is not None else None
        )
        self._stop = threading.Event()
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for thread in self._workers:
            thread.start()
        self._watchdog: Optional[threading.Thread] = None
        if self.config.deadline_s is not None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="repro-serve-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    # -- admission ---------------------------------------------------------

    def submit(
        self,
        sql: str,
        session: str = "default",
        faults: Optional[FaultInjector] = None,
        fault_index: Optional[int] = None,
    ) -> StatementTicket:
        """Admit one statement, or raise :class:`OverloadedError`.

        ``session`` names the logical session whose state the statement
        updates; ``faults`` overrides the per-statement injector
        (default: the explorer's injector forked by ``fault_index``,
        falling back to the ticket index, so counting faults never race
        across worker threads).  ``fault_index`` exists for replay
        harnesses that submit out of submission order but need fault
        forking keyed to the *statement's* position in its log — the
        multi-process supervisor honors the same parameter.

        Raises :class:`OverloadedError` on a full queue (with a
        Retry-After estimate) and :class:`ServeError` after
        :meth:`close`.  Statements the parser or analyzer reject are
        *admitted then failed immediately* on the caller thread — they
        get a ticket and a worklog record but never cost a pool thread.
        """
        with self._lock:
            if self._closed:
                raise ServeError("executor is closed")
            index = self._submitted
            self._submitted += 1
        if faults is not None:
            injector = faults
        elif self.dbx.faults is not None:
            injector = self.dbx.faults.fork(
                fault_index if fault_index is not None else index
            )
        else:
            injector = NO_FAULTS
        deadline_at = (
            self._now() + self.config.deadline_s
            if self.config.deadline_s is not None else None
        )
        ticket = StatementTicket(index, sql, session, injector, deadline_at)

        # the serve.queue_full fault site: a planned error here forces
        # the rejection path even with a roomy queue
        try:
            injector.fire("serve.queue_full")
        # _reject always raises OverloadedError (with this fault as
        # context), so nothing is swallowed here
        # repro-lint: ignore[RL004]
        except Exception as exc:
            self._reject(ticket, f"injected overload: {exc}")

        with self._lock:
            capacity = self.config.workers + self.config.queue_limit
            if self._queued + self._active >= capacity:
                retry_after = self._retry_after_locked()
                rejected = True
            else:
                self._queued += 1
                self._outstanding[index] = ticket
                rejected = False
                depth = self._queued
        if rejected:
            self._reject(
                ticket,
                f"admission queue full "
                f"({self.config.queue_limit} waiting)",
                retry_after,
            )
        self._metrics.gauge("serve.queue_depth").set(float(depth))
        self._metrics.counter("serve.admitted").inc()

        # the analyzer gate, on the caller thread: a statement that can
        # never execute fails here without consuming a pool thread
        try:
            stmt = parse(sql)
            ticket.kind = statement_kind(stmt)
            ticket.dataset = _breaker_key(stmt)
            report = self.dbx.analyze(stmt, text=sql)
            if not report.ok:
                raise AnalysisError(report)
        except (ParseError, AnalysisError) as exc:
            with self._lock:
                self._queued -= 1
                self._outstanding.pop(index, None)
            status = (
                "parse_error" if isinstance(exc, ParseError)
                else "analysis_error"
            )
            self._log_unexecuted(ticket, status, exc, 0.0)
            self._metrics.counter("serve.outcome.failed").inc()
            ticket._finish("failed", status, error=exc)
            return ticket

        self._queue.put(ticket)
        return ticket

    def run(
        self,
        sql: str,
        session: str = "default",
        timeout: Optional[float] = None,
    ) -> StatementTicket:
        """Submit and wait: the one-call convenience wrapper."""
        ticket = self.submit(sql, session=session)
        ticket.wait(timeout)
        return ticket

    def _reject(
        self,
        ticket: StatementTicket,
        reason: str,
        retry_after_s: Optional[float] = None,
    ) -> None:
        if retry_after_s is None:
            with self._lock:
                retry_after_s = self._retry_after_locked()
        error = OverloadedError(reason, retry_after_s=retry_after_s)
        self._metrics.counter("serve.rejected").inc()
        try:
            ticket.kind = statement_kind(parse(ticket.sql))
        except ReproError:
            ticket.kind = "invalid"
        self._log_unexecuted(ticket, "rejected", error, 0.0)
        ticket._finish("rejected", "rejected", error=error)
        raise error

    def _retry_after_locked(self) -> float:
        # a Retry-After guess: how long until a slot frees up, assuming
        # recent latency holds — the hint a transport maps to HTTP 503
        avg = self._latency_ewma_s if self._latency_ewma_s > 0 else 0.1
        backlog = self._queued + self._active
        return max(
            0.05, avg * max(1.0, backlog / float(self.config.workers))
        )

    # -- worker side -------------------------------------------------------

    def _worker(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is None:
                return
            with self._lock:
                self._queued -= 1
                self._active += 1
                depth, active = self._queued, self._active
            self._metrics.gauge("serve.queue_depth").set(float(depth))
            self._metrics.gauge("serve.active_workers").set(float(active))
            try:
                self._run_ticket(ticket)
            finally:
                with self._lock:
                    self._active -= 1
                    self._outstanding.pop(ticket.index, None)
                    active = self._active
                self._metrics.gauge("serve.active_workers").set(
                    float(active)
                )

    def _run_ticket(self, ticket: StatementTicket) -> None:
        config = self.config
        breaker = None
        probe = False
        budget_override: Optional[Budget] = None
        if self._breakers is not None and ticket.dataset is not None:
            breaker = self._breakers.breaker(ticket.dataset)
            full_pipeline, probe = breaker.allow()
            ticket.probe = probe
            if not full_pipeline:
                # breaker open: short-circuit onto the degradation
                # ladder instead of burning this thread on a dataset
                # that keeps failing
                ticket.short_circuited = True
                budget_override = config.open_budget
                self._metrics.counter("serve.breaker.short_circuit").inc()

        session = self.dbx.session(ticket.session)
        report_before = session.last_report
        start = self._now()
        attempts = config.max_retries + 1
        error: Optional[BaseException] = None
        result: Optional[object] = None
        executed = False  # did dbx.execute run (and hence write the log)?
        for attempt in range(attempts):
            ticket.attempts = attempt + 1
            executed = False
            try:
                if ticket.cancel.cancelled:
                    ticket.cancel.raise_if_cancelled()
                # the serve.slow_worker site: sleep stalls this worker
                # (the watchdog then trips the deadline), an error kind
                # simulates a worker crash the retries must absorb
                ticket.faults.fire("serve.slow_worker")
                if ticket.cancel.cancelled:
                    ticket.cancel.raise_if_cancelled()
                executed = True
                result = self.dbx.execute(
                    ticket.sql,
                    session=session,
                    cancel=ticket.cancel,
                    budget=budget_override,
                    faults=ticket.faults,
                )
                error = None
                break
            except QueryCancelledError as exc:
                error = exc
                break
            except _TRANSIENT_ERRORS as exc:
                error = exc
                if attempt + 1 >= attempts or ticket.cancel.cancelled:
                    break
                self._metrics.counter("serve.retries").inc()
                self._sleep(self._backoff_s(ticket.index, attempt))
            # not swallowed: the error becomes the ticket's terminal
            # state (status/outcome/worklog record) a few lines down
            # repro-lint: ignore[RL004]
            except BaseException as exc:
                error = exc
                break
        elapsed = self._now() - start
        with self._lock:
            self._latency_ewma_s = (
                elapsed if self._latency_ewma_s == 0.0
                else 0.8 * self._latency_ewma_s + 0.2 * elapsed
            )

        if breaker is not None:
            # a degraded answer still counts as success — the ladder did
            # its job; deadline blowouts and other failures count
            # against the dataset; a cancellation for any *other* reason
            # (client went away, drain) says nothing about the build's
            # health, so it must not latch a half-open breaker back open
            if error is None:
                breaker.on_success(probe=probe)
            elif isinstance(error, QueryCancelledError) and \
                    "deadline" not in (ticket.cancel.reason or ""):
                breaker.on_cancelled(probe=probe)
            else:
                breaker.on_failure(probe=probe)

        report = session.last_report
        # stamp the final attempt's work counters on the ticket *now*:
        # session.last_work is per-session mutable state and a later
        # statement on the same session would overwrite it before the
        # caller gets around to reading this ticket
        ticket.work = (
            dict(session.last_work)
            if executed and session.last_work else None
        )
        degraded = (
            error is None
            and (
                ticket.short_circuited
                or (
                    report is not None
                    and report is not report_before
                    and report.degraded
                )
            )
        )
        if error is None:
            status, outcome = "ok", ("degraded" if degraded else "ok")
        else:
            status = _status_of(error)
            outcome = "failed"
            if isinstance(error, QueryCancelledError):
                self._metrics.counter("serve.cancelled").inc()
        self._metrics.counter(f"serve.outcome.{outcome}").inc()
        # the SLO layer's raw material: per-kind latency and per-status
        # statement counts, same names in thread and proc serving modes
        self._metrics.histogram(
            f"serve.latency.{ticket.kind or 'invalid'}"
        ).observe(elapsed)
        self._metrics.counter(f"serve.statements.{status}").inc()
        if error is not None and not executed:
            # the failure happened before dbx.execute could write the
            # worklog record (queued past the deadline, slow_worker
            # fault) — the no-silent-drops property is ours to keep
            self._log_unexecuted(ticket, status, error, elapsed * 1e3)
        ticket._finish(outcome, status, result=result, error=error)

    def _backoff_s(self, index: int, attempt: int) -> float:
        base = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2.0 ** attempt),
        )
        rng = random.Random(
            self.config.retry_jitter_seed * 1_000_003
            + index * 1_009 + attempt
        )
        return base * (0.5 + rng.random() / 2.0)

    def _log_unexecuted(
        self,
        ticket: StatementTicket,
        status: str,
        error: BaseException,
        elapsed_ms: float,
    ) -> None:
        if not self.dbx.worklog.enabled:
            return
        self.dbx.worklog.statement(
            ticket.sql,
            ticket.kind or "invalid",
            status,
            elapsed_ms,
            error=f"{type(error).__name__}: {error}",
            session=ticket.session,
        )

    # -- watchdog ----------------------------------------------------------

    def _watchdog_loop(self) -> None:
        interval = self.config.watchdog_interval_s
        while not self._stop.wait(interval):
            now = self._now()
            with self._lock:
                expired = [
                    t for t in self._outstanding.values()
                    if t.deadline_at is not None and now >= t.deadline_at
                ]
            for ticket in expired:
                if ticket.cancel.cancel(
                    f"deadline of {self.config.deadline_s:.3f}s exceeded"
                ):
                    self._metrics.counter("serve.deadline_tripped").inc()

    # -- introspection / shutdown ------------------------------------------

    def breaker_states(self) -> Dict[str, str]:
        """Dataset -> breaker state name (empty when disabled)."""
        if self._breakers is None:
            return {}
        return self._breakers.states()

    def stats(self) -> Dict[str, Union[int, float]]:
        """A point-in-time snapshot of the executor's load."""
        with self._lock:
            return {
                "submitted": self._submitted,
                "queued": self._queued,
                "active": self._active,
                "latency_ewma_s": self._latency_ewma_s,
            }

    def close(self, wait: bool = True) -> None:
        """Stop accepting work, drain the queue, join the threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        if wait:
            for thread in self._workers:
                thread.join()
        self._stop.set()
        if self._watchdog is not None and wait:
            self._watchdog.join()

    def __enter__(self) -> "SessionExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _breaker_key(stmt: object) -> Optional[str]:
    """The dataset a statement builds against, if it builds at all.

    Only pipeline builds are breaker-guarded; reads against the view
    catalog never trip or consult a breaker.
    """
    if isinstance(stmt, ExplainStatement):
        return _breaker_key(stmt.inner) if stmt.analyze else None
    if isinstance(stmt, CreateCadViewStatement):
        return stmt.table
    return None


def _status_of(error: BaseException) -> str:
    # lazy import: repro.core.explorer imports repro.serve at module
    # load; the reverse edge must stay runtime-only
    from repro.core.explorer import _statement_status

    return _statement_status(error)
