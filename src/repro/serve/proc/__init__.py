"""Supervised multi-process serving: worker shards behind the ticket API.

``repro.serve.proc`` moves fault isolation from the thread to the
process boundary.  A :class:`~repro.serve.proc.supervisor.ProcSupervisor`
runs one worker subprocess per dataset shard (spawn context), speaks
the length-prefixed JSON frame protocol of
:mod:`~repro.serve.proc.protocol` with them, and presents the exact
:class:`~repro.serve.executor.SessionExecutor` ticket surface to
callers — so the replay harness, the stress driver and the CLI use
either serving mode interchangeably.

The three pieces:

:mod:`~repro.serve.proc.protocol`
    The wire format: framed JSON over a ``multiprocessing`` pipe, with
    torn-frame detection.
:mod:`~repro.serve.proc.worker`
    The subprocess entry point: builds its shard, replays the catalog
    journal, heartbeats, executes statements with thread-executor-
    identical retry semantics, and hosts the ``proc.*`` fault sites.
:mod:`~repro.serve.proc.supervisor`
    The parent: shard routing, heartbeat monitoring, crash/hang/
    pipe-drop recovery with exponential restart backoff,
    incarnation-keyed circuit breakers, and graceful drain.

With ``state_dir`` set on :class:`ProcServeConfig`, the supervisor
additionally writes every catalog mutation through the durable WAL of
:mod:`repro.serve.durability` before its response is released, and
recovers the catalog from disk at startup — surviving supervisor
death, not just worker death.

This package is the only place in the repository allowed to construct
``multiprocessing.Process`` directly (repro-lint rule RL008).
"""

from repro.serve.proc.protocol import (
    FRAME_TELEMETRY,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.serve.proc.supervisor import (
    ProcServeConfig,
    ProcSupervisor,
    RemoteStatementError,
)
from repro.serve.proc.worker import (
    PIPE_DROP_EXIT,
    WORKER_CRASH_EXIT,
    WorkerSpec,
)

__all__ = [
    "PROTOCOL_VERSION",
    "FRAME_TELEMETRY",
    "ProtocolError",
    "ProcServeConfig",
    "ProcSupervisor",
    "RemoteStatementError",
    "WorkerSpec",
    "WORKER_CRASH_EXIT",
    "PIPE_DROP_EXIT",
]
