"""The supervisor <-> worker wire protocol: length-prefixed JSON frames.

Workers are separate processes, so every message between the
:class:`~repro.serve.proc.supervisor.ProcSupervisor` and a worker
crosses a pipe as one *frame*: a fixed six-byte header — two magic
bytes, a protocol version byte, a one-byte frame-kind tag — followed by
a four-byte big-endian payload length and a UTF-8 JSON payload.  The
explicit length prefix is what makes torn writes *detectable*: a frame
whose payload is shorter than its declared length (a worker died
mid-send, the ``proc.pipe_drop`` fault fired) raises
:class:`ProtocolError` instead of silently yielding half a message,
and the supervisor treats that exactly like a worker death.

Payloads are JSON, not pickle, on purpose: results cross the pipe as
the same JSON-able *digest payloads* the replay harness hashes
(:func:`repro.serve.stress._result_payload`), so nothing that crosses
the process boundary can smuggle unpicklable state, and a captured
frame stream is inspectable with ``jq``.

Frame kinds (the ``FRAME_*`` constants):

========== ============ ===================================================
kind       direction    payload
========== ============ ===================================================
request    sup -> wkr   ``{id, sql, session, attempt, proc_attempt,
                        fault_index, budget, replay}``
cancel     sup -> wkr   ``{id, reason}`` — trip the request's CancelToken
drain      sup -> wkr   ``{}`` — finish the current request, then exit 0
ready      wkr -> sup   ``{pid, incarnation}`` — table loaded, journal
                        replayed, accepting requests
heartbeat  wkr -> sup   ``{seq}`` — liveness beacon, every interval
response   wkr -> sup   ``{id, status, outcome-ish fields, degradations,
                        result_payload, error, attempts, elapsed_ms}``
bye        wkr -> sup   ``{}`` — drain acknowledged, exiting 0
telemetry  wkr -> sup   ``{shard, incarnation, pid, seq, dropped,
                        metrics, spans, events}`` — batched span trees,
                        a cumulative metrics snapshot, and lifecycle
                        events; bounded and best-effort (never blocks
                        execution, drops are counted in ``dropped``)
========== ============ ===================================================

Transport is a :class:`multiprocessing.connection.Connection` pair
(they survive the spawn-context pickling of ``Process`` args); frames
travel through ``send_bytes``/``recv_bytes`` so one frame is always one
OS-level message.
"""

from __future__ import annotations

import json
import struct
from typing import Dict

from repro.errors import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "FRAME_REQUEST", "FRAME_CANCEL", "FRAME_DRAIN",
    "FRAME_READY", "FRAME_HEARTBEAT", "FRAME_RESPONSE", "FRAME_BYE",
    "FRAME_TELEMETRY",
    "encode_frame", "decode_frame", "send_frame", "recv_frame",
]

PROTOCOL_VERSION = 1

_MAGIC = b"RP"  # "repro proc"
_HEADER = struct.Struct(">2sBBI")  # magic, version, kind, payload length

FRAME_REQUEST = 1
FRAME_CANCEL = 2
FRAME_DRAIN = 3
FRAME_READY = 16
FRAME_HEARTBEAT = 17
FRAME_RESPONSE = 18
FRAME_BYE = 19
FRAME_TELEMETRY = 20

_KNOWN_KINDS = frozenset({
    FRAME_REQUEST, FRAME_CANCEL, FRAME_DRAIN,
    FRAME_READY, FRAME_HEARTBEAT, FRAME_RESPONSE, FRAME_BYE,
    FRAME_TELEMETRY,
})


class ProtocolError(ServeError):
    """A frame that cannot be trusted: bad magic, version, or length."""


def encode_frame(kind: int, payload: Dict[str, object]) -> bytes:
    """One frame as bytes: header + length-prefixed JSON payload."""
    if kind not in _KNOWN_KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return _HEADER.pack(_MAGIC, PROTOCOL_VERSION, kind, len(body)) + body


def decode_frame(data: bytes) -> "tuple[int, Dict[str, object]]":
    """``(kind, payload)`` from one frame, validating every header field.

    A truncated or over-long payload (the frame's length prefix
    disagrees with the bytes that actually arrived) is a
    :class:`ProtocolError` — the supervisor maps it onto the same
    kill-and-restart path as a worker crash.
    """
    if len(data) < _HEADER.size:
        raise ProtocolError(
            f"short frame: {len(data)} byte(s), need {_HEADER.size}+"
        )
    magic, version, kind, length = _HEADER.unpack(data[:_HEADER.size])
    if magic != _MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version}, this end speaks "
            f"{PROTOCOL_VERSION}"
        )
    if kind not in _KNOWN_KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    body = data[_HEADER.size:]
    if len(body) != length:
        raise ProtocolError(
            f"torn frame: header declares {length} payload byte(s), "
            f"got {len(body)}"
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") \
            from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return kind, payload


def send_frame(conn, kind: int, payload: Dict[str, object]) -> None:
    """Encode and write one frame to a Connection."""
    conn.send_bytes(encode_frame(kind, payload))


def recv_frame(conn) -> "tuple[int, Dict[str, object]]":
    """Read and decode one frame from a Connection.

    Raises ``EOFError`` when the peer closed the pipe (worker death,
    ``proc.pipe_drop``) and :class:`ProtocolError` on a torn or
    malformed frame; callers treat both as the peer being gone.
    """
    return decode_frame(conn.recv_bytes())
