"""The supervisor: sharded worker subprocesses behind the ticket API.

:class:`ProcSupervisor` is the process-model sibling of
:class:`~repro.serve.executor.SessionExecutor`: same ``submit() ->
StatementTicket`` surface, same terminal outcomes, same workload-log
records — but statements execute in dataset-sharded **worker
subprocesses** (stdlib ``multiprocessing``, spawn context), so a
segfault, OOM kill, or hung build takes down one worker incarnation,
never the serving process.

The supervision tree::

    ProcSupervisor (parent process)
      ├── monitor thread      heartbeat staleness, restart backoff,
      │                       deadline watchdog
      ├── reader thread ×N    one per live worker, consuming frames
      └── worker process ×N   one per shard (repro.serve.proc.worker)

Failure handling, per cause:

* **crash** — the process exits nonzero (or is SIGKILLed from
  outside).  The reader sees EOF, the monitor sees ``is_alive() ==
  False``; whichever notices first runs the one-shot death path.
* **hang** — the process is alive but its heartbeat went stale (an
  injected ``proc.worker_hang``, a native-code spin).  The monitor
  SIGKILLs it: cancellation is cooperative and a hung worker by
  definition no longer cooperates.
* **pipe_drop** — the connection tears mid-frame
  (:class:`~repro.serve.proc.protocol.ProtocolError`) or closes
  without a bye.  Indistinguishable from a crash for recovery
  purposes; tracked separately for the chaos stats.

In every case the dead worker's in-flight requests become *retryable
failures*: each is resubmitted to the next incarnation with
``proc_attempt + 1`` (the worker advances the ``proc.*`` fault sites by
that count, keeping chaos deterministic) until ``proc_retries`` is
exhausted, at which point the ticket fails with
:class:`~repro.errors.WorkerCrashError`.  The shard restarts under
exponential backoff (``restart_backoff_base_s`` doubling up to
``restart_backoff_cap_s``), and each new incarnation first replays the
shard's **catalog journal** — the ordered catalog-mutating statements
previous incarnations completed — so the rebuilt view catalog is
bit-identical (builds are seeded) before traffic resumes.

Circuit breakers are keyed on ``dataset@s<shard>.g<incarnation>``: a
restarted worker starts with a fresh breaker, because the failure
history of a dead incarnation says nothing about its replacement.

Graceful drain: :meth:`begin_drain` (safe to call from a SIGTERM
handler) stops admission; :meth:`drain` then waits out a grace period,
cancels what is left via the normal CancelToken path, sends each worker
a drain frame (finish current statement, exit 0), and reaps every
child — no orphans, every ticket terminal.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import get_context
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    DurabilityError,
    OverloadedError,
    ParseError,
    QueryCancelledError,
    RecoveryError,
    ReproError,
    ServeError,
    WorkerCrashError,
)
from repro.obs.hub import TelemetryHub
from repro.obs.metrics import MetricsRegistry, hist_quantile, registry
from repro.obs.tracer import Span, Tracer
from repro.obs.worklog import NO_WORKLOG, WorkLogWriter, statement_kind
from repro.query.ast import (
    CreateCadViewStatement,
    DescribeStatement,
    DropCadViewStatement,
    ExplainStatement,
    HighlightSimilarStatement,
    ReorderRowsStatement,
    SelectStatement,
    ShowCadViewsStatement,
)
from repro.query.parser import parse
from repro.robustness.budget import Budget
from repro.robustness.faults import NO_FAULTS, FaultInjector
from repro.serve.breaker import BreakerBoard, BreakerConfig
from repro.serve.durability.recovery import compact_journal, recover_state
from repro.serve.durability.wal import WalWriter
from repro.serve.executor import (
    StatementTicket,
    _breaker_key,
    _default_open_budget,
)
from repro.serve.proc.protocol import (
    FRAME_BYE,
    FRAME_CANCEL,
    FRAME_DRAIN,
    FRAME_HEARTBEAT,
    FRAME_READY,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    FRAME_TELEMETRY,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.serve.proc.worker import (
    PIPE_DROP_EXIT,
    WORKER_CRASH_EXIT,
    WorkerSpec,
    worker_main,
)

__all__ = ["ProcServeConfig", "ProcSupervisor", "RemoteStatementError"]


class RemoteStatementError(ServeError):
    """A statement failed inside a worker; this is the wire-level echo.

    Exceptions cannot cross the JSON pipe as live objects, so the
    worker sends ``"TypeName: message"`` and the supervisor wraps it in
    this class.  ``remote`` preserves the original rendering (it is
    what the worklog record carries, keeping parity with thread mode).
    """

    def __init__(self, remote: str, status: str = "error"):
        self.remote = remote
        self.status = status
        super().__init__(remote)


@dataclass(frozen=True)
class ProcServeConfig:
    """Tuning knobs of one :class:`ProcSupervisor`.

    shards:
        Worker subprocesses (the unit of fault isolation).
    queue_limit:
        Tickets allowed to wait beyond one-per-shard in flight; past
        that, submits are rejected with
        :class:`~repro.errors.OverloadedError`.
    deadline_s:
        Per-statement wall-clock deadline from admission; the monitor
        trips the ticket's CancelToken and forwards a cancel frame.
    max_retries / backoff_base_s / backoff_cap_s / retry_jitter_seed:
        The **in-band** transient-retry policy, executed *inside* the
        worker with semantics identical to the thread executor (same
        jitter formula), so fault plans expire the same way in either
        serving mode.
    proc_retries:
        How many times a statement is resubmitted after its worker
        died mid-execution before the ticket fails with
        :class:`~repro.errors.WorkerCrashError`.
    restart_backoff_base_s / restart_backoff_cap_s:
        Exponential backoff between worker restarts: consecutive death
        ``n`` waits ``min(cap, base * 2**(n-1))``; any completed
        response resets the count.
    heartbeat_interval_s / heartbeat_timeout_s:
        Worker beat cadence, and how stale a beat may go before the
        monitor declares the worker hung and SIGKILLs it.
    ready_timeout_s:
        How long a fresh incarnation may spend building its table and
        replaying the journal before it counts as hung.
    monitor_interval_s:
        Monitor scan cadence (heartbeats, restarts, deadlines).
    breaker / open_budget:
        Per-``dataset@shard.incarnation`` circuit-breaker policy and
        the short-circuit budget; ``None`` disables breakers
        (deterministic replay does).
    drain_grace_s:
        How long :meth:`ProcSupervisor.drain` lets in-flight work
        finish before cancelling it.
    state_dir:
        Directory for the durable catalog WAL + snapshots
        (:mod:`repro.serve.durability`).  ``None`` (the default) keeps
        catalog journals in memory only — exactly the pre-durability
        behavior.  When set, startup *recovers* the directory first and
        every catalog mutation is fsync'd before its response is
        released.
    fsync_interval_ms:
        Group-commit window: mutations acknowledged within the same
        window share one fsync.  ``0`` fsyncs inline per mutation
        (slowest, simplest to reason about; the torture harness uses it
        so batch == record).
    wal_segment_max_bytes / wal_snapshot_every:
        Segment rotation threshold and how many records may accumulate
        before a snapshot compaction.
    journal_warn_len:
        One-time warning threshold for a shard's in-memory journal
        length (compaction resets the count); growth past it means
        snapshots are not keeping up.
    """

    shards: int = 1
    queue_limit: int = 16
    deadline_s: Optional[float] = None
    max_retries: int = 2
    backoff_base_s: float = 0.02
    backoff_cap_s: float = 0.5
    retry_jitter_seed: int = 0
    proc_retries: int = 3
    restart_backoff_base_s: float = 0.05
    restart_backoff_cap_s: float = 2.0
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 2.0
    ready_timeout_s: float = 60.0
    monitor_interval_s: float = 0.02
    breaker: Optional[BreakerConfig] = field(default_factory=BreakerConfig)
    open_budget: Budget = field(default_factory=_default_open_budget)
    drain_grace_s: float = 5.0
    state_dir: Optional[str] = None
    fsync_interval_ms: float = 0.0
    wal_segment_max_bytes: int = 1 << 20
    wal_snapshot_every: int = 64
    journal_warn_len: int = 256

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.queue_limit < 0:
            raise ValueError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )
        if self.max_retries < 0 or self.proc_retries < 0:
            raise ValueError("retry counts must be >= 0")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s"
            )
        if self.monitor_interval_s <= 0:
            raise ValueError(
                f"monitor_interval_s must be > 0, "
                f"got {self.monitor_interval_s}"
            )
        if self.fsync_interval_ms < 0:
            raise ValueError(
                f"fsync_interval_ms must be >= 0, "
                f"got {self.fsync_interval_ms}"
            )
        if self.wal_segment_max_bytes < 1 or self.wal_snapshot_every < 1:
            raise ValueError(
                "wal_segment_max_bytes and wal_snapshot_every "
                "must be >= 1"
            )
        if self.journal_warn_len < 1:
            raise ValueError(
                f"journal_warn_len must be >= 1, "
                f"got {self.journal_warn_len}"
            )


class _Request:
    """One unit of work bound for one shard (a ticket part)."""

    __slots__ = (
        "state", "shard", "sql", "session", "part", "req_id",
        "fault_index", "proc_attempt", "probe", "short_circuited",
        "breaker", "journal", "primary", "incarnation", "span",
    )

    def __init__(self, state, shard, sql, session, part, req_id,
                 fault_index, journal, primary):
        self.state = state
        self.shard = shard
        self.sql = sql
        self.session = session
        self.part = part
        self.req_id = req_id
        self.fault_index = fault_index
        self.proc_attempt = 0
        self.probe = False
        self.short_circuited = False
        self.breaker = None
        self.journal = journal
        self.primary = primary
        self.incarnation = -1
        self.span: Optional[Span] = None

    def reset_dispatch(self) -> None:
        """Clear per-dispatch state before a resubmission."""
        self.probe = False
        self.short_circuited = False
        self.breaker = None
        self.incarnation = -1
        self.span = None


class _TicketState:
    """A ticket plus its (possibly fanned-out) shard requests."""

    __slots__ = ("ticket", "requests", "responses", "parts",
                 "primary_part", "wal_pending", "finalized")

    def __init__(self, ticket: StatementTicket):
        self.ticket = ticket
        self.requests: List[_Request] = []
        self.responses: Dict[int, Dict[str, object]] = {}
        self.parts = 0
        self.primary_part = 0
        self.wal_pending = 0   # WAL commits in flight; gates finalize
        self.finalized = False


class _Shard:
    """Everything the supervisor tracks about one shard slot."""

    __slots__ = ("index", "handle", "pending", "journal", "failures",
                 "restart_at", "next_incarnation", "journal_warned")

    def __init__(self, index: int):
        self.index = index
        self.handle: Optional[_WorkerHandle] = None
        self.pending: Deque[_Request] = deque()
        self.journal: List[Tuple[str, str]] = []
        self.failures = 0          # consecutive deaths since last response
        self.restart_at = 0.0
        self.next_incarnation = 0
        self.journal_warned = False  # one-time growth warning latch


class _WorkerHandle:
    """One live (or dying) worker incarnation."""

    __slots__ = ("shard", "incarnation", "process", "conn", "spawned_at",
                 "last_beat", "ready", "down", "saw_bye", "inflight")

    def __init__(self, shard, incarnation, process, conn, spawned_at):
        self.shard = shard
        self.incarnation = incarnation
        self.process = process
        self.conn = conn
        self.spawned_at = spawned_at
        self.last_beat = spawned_at
        self.ready = False
        self.down = False
        self.saw_bye = False
        self.inflight: Dict[str, _Request] = {}


class ProcSupervisor:
    """Dataset-sharded worker subprocesses behind the SessionExecutor API.

    >>> spec = WorkerSpec(dataset="usedcars", rows=2000, seed=7)
    >>> with ProcSupervisor(spec, ProcServeConfig(shards=2)) as sup:
    ...     ticket = sup.submit(
    ...         "CREATE CADVIEW v AS SELECT * FROM data PIVOT ON Make"
    ...     )
    ...     ticket.wait()

    ``now`` is injectable for deterministic tests of the backoff and
    deadline machinery (the workers themselves always run on the real
    clock — they are separate processes).
    """

    def __init__(
        self,
        spec: WorkerSpec,
        config: Optional[ProcServeConfig] = None,
        worklog: Optional[WorkLogWriter] = None,
        metrics: Optional[MetricsRegistry] = None,
        now: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
    ):
        self.spec = spec
        self.config = config if config is not None else ProcServeConfig()
        self._worklog = worklog if worklog is not None else NO_WORKLOG
        self._metrics = metrics if metrics is not None else registry()
        self._now = now
        self._tracer = tracer
        if tracer is not None and not spec.ship_spans:
            # a tracer means someone wants the stitched trace: have
            # workers build and ship per-request span trees
            self.spec = spec = replace(spec, ship_spans=True)
        self.telemetry = TelemetryHub(metrics=self._metrics)
        self._ctx = get_context("spawn")
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._shards = [_Shard(i) for i in range(self.config.shards)]
        self._tickets: Dict[int, _TicketState] = {}
        self._view_shard: Dict[str, int] = {}
        self._submitted = 0
        self._requests_made = 0
        self._resubmits = 0
        self._deaths: Dict[str, int] = {}
        self._restart_delays: List[float] = []
        self._closed = False
        self._draining = False
        self._drain_report: Optional[Dict[str, object]] = None
        self._faults = (
            FaultInjector.parse(spec.faults_spec, seed=spec.fault_seed)
            if spec.faults_spec else None
        )
        self._breakers: Optional[BreakerBoard] = (
            BreakerBoard(self.config.breaker, now=now, metrics=metrics)
            if self.config.breaker is not None else None
        )
        self._stop = threading.Event()
        self._wal: Optional[WalWriter] = None
        self._wal_failed = False
        self._recovery_info: Optional[Dict[str, object]] = None
        # recover + open the WAL *before* the first spawn, so fresh
        # workers are born with the recovered journals to replay
        self._init_durability()
        for shard in self._shards:
            self._spawn(shard.index)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-proc-monitor",
            daemon=True,
        )
        self._monitor.start()

    # -- durability --------------------------------------------------------

    def _init_durability(self) -> None:
        """Recover ``--state-dir`` (if any) and open the WAL writer."""
        state_dir = self.config.state_dir
        if state_dir is None:
            return
        rec = None
        span = Span("wal.recovery", state_dir=state_dir)
        try:
            if os.path.isdir(state_dir):
                rec = recover_state(
                    state_dir, shards=self.config.shards, truncate=True,
                )
        finally:
            span.set_attr("status", "ok" if rec is not None or not
                          os.path.isdir(state_dir) else "error")
            if rec is not None:
                span.set_attr("last_seq", rec.last_seq)
                span.set_attr("records_replayed", rec.records_replayed)
                span.set_attr("torn_tail", rec.torn_tail is not None)
            span.close()
            if self._tracer is not None:
                self._tracer.root.children.append(span)
        start_seq = 0
        start_ordinal = 0
        if rec is not None:
            bad = [s for s in rec.journals if s >= self.config.shards]
            if bad:
                raise RecoveryError(
                    f"recovered journal entries for shard(s) {bad} "
                    f"but only {self.config.shards} shard(s) are "
                    f"configured; restart with a matching --procs"
                )
            for shard_idx, entries in rec.journals.items():
                self._shards[shard_idx].journal = list(entries)
            self._view_shard.update(rec.view_shard)
            # repro-lint: ignore[RL007] — startup, pre-thread (no racers)
            self._recovery_info = rec.as_dict()
            start_seq = rec.last_seq
            start_ordinal = rec.next_ordinal
            self._metrics.counter("wal.recoveries").inc()
            self._metrics.counter("wal.recovered_records").inc(
                rec.records_replayed
            )
            if rec.torn_tail is not None:
                self._metrics.counter("wal.torn_tail_truncations").inc()
            for warning in rec.warnings:
                print(f"[repro.serve] WAL recovery: {warning}",
                      file=sys.stderr)
            with self._lock:
                for s in self._shards:
                    self._note_journal_len_locked(s)
        # repro-lint: ignore[RL007] — startup, pre-thread (no racers)
        self._wal = WalWriter(
            state_dir,
            start_seq=start_seq,
            start_ordinal=start_ordinal,
            fsync_interval_ms=self.config.fsync_interval_ms,
            segment_max_bytes=self.config.wal_segment_max_bytes,
            snapshot_every=self.config.wal_snapshot_every,
            snapshot_cb=self._wal_snapshot_image,
            faults=self._faults,
            metrics=self._metrics,
        )

    def _wal_snapshot_image(self) -> Dict[str, object]:
        """The full catalog image for one snapshot compaction.

        Called by the WAL writer *holding the WAL lock*; the lock order
        WAL -> supervisor is the only one used anywhere (the supervisor
        always calls into the WAL with its own lock released).
        Compacting the in-memory journals here is satellite work:
        replaying a compacted journal builds the identical catalog, and
        the ``journal_len`` gauges (plus their one-time warning
        latches) reset with it.
        """
        with self._lock:
            journals: Dict[int, List[Tuple[str, str]]] = {}
            for shard in self._shards:
                shard.journal = compact_journal(shard.journal)
                # re-arm the growth warning only once compaction has
                # actually caught up — a journal still over threshold
                # would otherwise re-warn at every snapshot interval
                if len(shard.journal) <= self.config.journal_warn_len:
                    shard.journal_warned = False
                self._note_journal_len_locked(shard)
                journals[shard.index] = list(shard.journal)
            return {
                "shards": self.config.shards,
                "view_shard": dict(self._view_shard),
                "journals": journals,
            }

    def _note_journal_len_locked(self, shard: _Shard) -> None:
        length = len(shard.journal)
        self._metrics.gauge(
            f"proc.s{shard.index}.journal_len"
        ).set(float(length))
        if length > self.config.journal_warn_len and not shard.journal_warned:
            shard.journal_warned = True
            print(
                f"[repro.serve] shard {shard.index} catalog journal "
                f"grew to {length} entries (warn threshold "
                f"{self.config.journal_warn_len}); snapshot compaction "
                f"is falling behind",
                file=sys.stderr,
            )

    def _wal_commit(self, req: _Request, state: _TicketState) -> None:
        """Make one acked mutation durable, then release its ticket.

        Runs with the supervisor lock *released* (the fsync can take
        milliseconds and must not stall readers).  Failure is
        fail-stop: the response the client sees becomes an error (an
        ack the WAL cannot back must never be released) and the
        supervisor refuses further statements.
        """
        assert self._wal is not None

        def on_durable() -> None:
            # runs under the WAL lock, *before* any snapshot this
            # commit triggers: the journal entry is in the image of
            # every snapshot whose last_seq covers it
            with self._lock:
                shard = self._shards[req.shard]
                shard.journal.append((req.sql, req.session))
                self._note_journal_len_locked(shard)

        failure: Optional[DurabilityError] = None
        try:
            self._wal.commit(
                req.shard, req.sql, req.session, on_durable=on_durable,
            )
        except DurabilityError as exc:
            failure = exc
        finalize = False
        with self._lock:
            if failure is not None:
                self._wal_failed = True
                state.responses[req.part] = {
                    "status": "error",
                    "error": f"durability failure: {failure}",
                }
            state.wal_pending -= 1
            if (
                len(state.responses) == state.parts
                and state.wal_pending == 0
                and not state.finalized
            ):
                state.finalized = True
                self._tickets.pop(state.ticket.index, None)
                finalize = True
                self._idle.notify_all()
        if failure is not None:
            print(
                f"[repro.serve] DURABILITY FAILURE: {failure}; "
                f"refusing further statements (fail-stop)",
                file=sys.stderr,
            )
        if finalize:
            self._finalize(state)

    # -- admission ---------------------------------------------------------

    def submit(
        self,
        sql: str,
        session: str = "default",
        faults: Optional[FaultInjector] = None,
        fault_index: Optional[int] = None,
    ) -> StatementTicket:
        """Admit one statement, or raise :class:`OverloadedError`.

        ``faults`` only drives the *parent-side* sites
        (``serve.queue_full``); worker-side sites run off the spec's
        fault plan, forked by ``fault_index`` (default: the ticket
        index) inside the worker — the plan cannot cross the process
        boundary as a live object, but forking by the same index from
        the same spec makes it behave as if it had.
        """
        with self._lock:
            if self._closed:
                raise ServeError("supervisor is closed")
            if self._draining:
                raise ServeError("supervisor is draining")
            if self._wal_failed:
                raise DurabilityError(
                    "the write-ahead log failed; this supervisor is "
                    "fail-stopped (restart with a healthy --state-dir)"
                )
            index = self._submitted
            self._submitted += 1
        fidx = fault_index if fault_index is not None else index
        if faults is not None:
            injector = faults
        elif self._faults is not None:
            injector = self._faults.fork(fidx)
        else:
            injector = NO_FAULTS
        deadline_at = (
            self._now() + self.config.deadline_s
            if self.config.deadline_s is not None else None
        )
        ticket = StatementTicket(index, sql, session, injector, deadline_at)

        # parent-side parity with the thread executor's admission sites
        try:
            injector.fire("serve.queue_full")
        # _reject always raises OverloadedError (with this fault as
        # context), so nothing is swallowed here
        # repro-lint: ignore[RL004]
        except Exception as exc:
            self._reject(ticket, f"injected overload: {exc}")

        with self._lock:
            capacity = len(self._shards) + self.config.queue_limit
            rejected = len(self._tickets) >= capacity
            outstanding = len(self._tickets)
        if rejected:
            self._reject(
                ticket,
                f"admission queue full "
                f"({self.config.queue_limit} waiting)",
                max(0.05, 0.1 * outstanding / len(self._shards)),
            )
        self._metrics.counter("serve.admitted").inc()

        # parse on the caller thread: a statement that cannot parse
        # fails here without ever crossing a pipe (the analyzer gate
        # itself lives worker-side — only workers hold the tables)
        try:
            stmt = parse(sql)
        except ParseError as exc:
            ticket.kind = "invalid"
            self._log_ticket_record(
                ticket, "parse_error", 0.0,
                error=f"{type(exc).__name__}: {exc}",
            )
            self._metrics.counter("serve.outcome.failed").inc()
            # conservation: never crossed a pipe, still counted once
            self._metrics.counter("proc.unrouted.completed").inc()
            self._metrics.counter("serve.statements.parse_error").inc()
            ticket._finish("failed", "parse_error", error=exc)
            return ticket
        ticket.kind = statement_kind(stmt)
        ticket.dataset = _breaker_key(stmt)

        state = _TicketState(ticket)
        parts = self._route(stmt, sql, session)
        with self._lock:
            for part, (shard_idx, part_sql, primary, journal) in \
                    enumerate(parts):
                req = _Request(
                    state, shard_idx, part_sql, session, part,
                    f"r{index}.{part}", fidx, journal, primary,
                )
                if primary:
                    state.primary_part = part
                state.requests.append(req)
                self._shards[shard_idx].pending.append(req)
            state.parts = len(state.requests)
            self._tickets[index] = state
            self._metrics.gauge("serve.queue_depth").set(
                float(sum(len(s.pending) for s in self._shards))
            )
        self._pump()
        return ticket

    def run(
        self,
        sql: str,
        session: str = "default",
        timeout: Optional[float] = None,
    ) -> StatementTicket:
        """Submit and wait: the one-call convenience wrapper."""
        ticket = self.submit(sql, session=session)
        ticket.wait(timeout)
        return ticket

    def _reject(
        self,
        ticket: StatementTicket,
        reason: str,
        retry_after_s: float = 0.1,
    ) -> None:
        error = OverloadedError(reason, retry_after_s=retry_after_s)
        self._metrics.counter("serve.rejected").inc()
        self._metrics.counter("proc.unrouted.completed").inc()
        self._metrics.counter("serve.statements.rejected").inc()
        try:
            ticket.kind = statement_kind(parse(ticket.sql))
        except ReproError:
            ticket.kind = "invalid"
        self._log_ticket_record(
            ticket, "rejected", 0.0,
            error=f"{type(error).__name__}: {error}",
        )
        ticket._finish("rejected", "rejected", error=error)
        raise error

    # -- routing -----------------------------------------------------------

    def _shard_of(self, name: str) -> int:
        # crc32, not hash(): python hashes are salted per process and
        # the same view must land on the same shard across runs
        return zlib.crc32(str(name).encode("utf-8")) % len(self._shards)

    def _route(
        self, stmt: object, sql: str, session: str
    ) -> List[Tuple[int, str, bool, bool]]:
        """``[(shard, sql, primary, journal)]`` for one statement.

        Most statements are one part routed by the table (builds,
        selects) or the owning view (highlight/reorder).  Catalog
        listings fan out: ``SHOW CADVIEWS`` runs on every shard and the
        sorted union of the per-shard catalogs is the answer; ``DROP``
        runs on the owner (primary) while the other shards contribute
        their catalog via a synthetic ``SHOW`` part.
        """
        nshards = len(self._shards)
        inner = stmt.inner if isinstance(stmt, ExplainStatement) else stmt
        writes = isinstance(
            inner,
            (CreateCadViewStatement, DropCadViewStatement,
             ReorderRowsStatement),
        )
        if isinstance(inner, CreateCadViewStatement):
            shard = self._shard_of(inner.table)
            with self._lock:
                self._view_shard[inner.name] = shard
            return [(shard, sql, True, True)]
        if isinstance(inner, (SelectStatement, DescribeStatement)):
            return [(self._shard_of(inner.table), sql, True, False)]
        if isinstance(inner, (HighlightSimilarStatement,
                              ReorderRowsStatement)):
            view = inner.view
            with self._lock:
                shard = self._view_shard.get(view, self._shard_of(view))
            return [(shard, sql, True, writes)]
        if isinstance(inner, DropCadViewStatement):
            with self._lock:
                owner = self._view_shard.pop(
                    inner.name, self._shard_of(inner.name)
                )
            parts = [(owner, sql, True, True)]
            parts += [
                (s, "SHOW CADVIEWS", False, False)
                for s in range(nshards) if s != owner
            ]
            return parts
        if isinstance(inner, ShowCadViewsStatement) and not isinstance(
            stmt, ExplainStatement
        ):
            return [(s, sql, s == 0, False) for s in range(nshards)]
        # EXPLAIN SHOW CADVIEWS (rendered text cannot merge) and any
        # future statement kind: one part on shard 0
        return [(0, sql, True, False)]

    # -- dispatch ----------------------------------------------------------

    def _pump(self) -> None:
        """Push pending requests onto idle ready workers."""
        while True:
            sends: List[Tuple[_WorkerHandle, _Request]] = []
            synth: List[_Request] = []
            with self._lock:
                for shard in self._shards:
                    handle = shard.handle
                    if handle is None or handle.down or not handle.ready:
                        # even with no worker, cancelled pending parts
                        # must still resolve (drain depends on it)
                        for req in [r for r in shard.pending
                                    if r.state.ticket.cancel.cancelled]:
                            shard.pending.remove(req)
                            synth.append(req)
                        continue
                    while shard.pending and not handle.inflight:
                        req = shard.pending.popleft()
                        if req.state.ticket.cancel.cancelled:
                            synth.append(req)
                            continue
                        self._gate_request(req, shard, handle)
                        if self._tracer is not None:
                            span = Span(
                                "serve.request",
                                request_id=req.req_id,
                                shard=shard.index,
                                incarnation=handle.incarnation,
                                proc_attempt=req.proc_attempt,
                            )
                            req.span = span
                            self._tracer.root.children.append(span)
                        handle.inflight[req.req_id] = req
                        sends.append((handle, req))
            if not sends and not synth:
                return
            for handle, req in sends:
                payload: Dict[str, object] = {
                    "id": req.req_id,
                    "sql": req.sql,
                    "session": req.session,
                    "fault_index": req.fault_index,
                    "proc_attempt": req.proc_attempt,
                    "budget": (
                        _budget_dict(self.config.open_budget)
                        if req.short_circuited else None
                    ),
                }
                try:
                    send_frame(handle.conn, FRAME_REQUEST, payload)
                except (OSError, ValueError):
                    self._worker_down(handle, "pipe_drop")
            for req in synth:
                reason = req.state.ticket.cancel.reason or "cancelled"
                self._finish_part(req, _cancelled_response(reason))

    def _gate_request(
        self, req: _Request, shard: _Shard, handle: _WorkerHandle
    ) -> None:
        """Breaker-gate one dispatch (call with ``self._lock`` held)."""
        req.incarnation = handle.incarnation
        if (
            self._breakers is None
            or req.state.ticket.dataset is None
            or not req.primary
        ):
            return
        key = (
            f"{req.state.ticket.dataset}"
            f"@s{shard.index}.g{handle.incarnation}"
        )
        breaker = self._breakers.breaker(key)
        full_pipeline, probe = breaker.allow()
        req.breaker = breaker
        req.probe = probe
        req.state.ticket.probe = probe
        if not full_pipeline:
            req.short_circuited = True
            self._metrics.counter("serve.breaker.short_circuit").inc()

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self, shard_idx: int) -> None:
        with self._lock:
            shard = self._shards[shard_idx]
            if shard.handle is not None or self._closed:
                return
            incarnation = shard.next_incarnation
            shard.next_incarnation += 1
            journal = list(shard.journal)
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                self.spec.as_dict(), child_conn, shard_idx, incarnation,
                journal, self.config.heartbeat_interval_s,
            ),
            name=f"repro-worker-s{shard_idx}g{incarnation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(
            shard_idx, incarnation, process, parent_conn, self._now()
        )
        with self._lock:
            shard.handle = handle
        self._metrics.counter("proc.spawns").inc()
        if incarnation > 0:
            self._metrics.counter("proc.restarts").inc()
        self.telemetry.record_event(
            "worker.spawn", shard=shard_idx, incarnation=incarnation,
            pid=process.pid, ts=time.time(),
        )
        threading.Thread(
            target=self._reader_loop, args=(handle,),
            name=f"repro-proc-reader-s{shard_idx}g{incarnation}",
            daemon=True,
        ).start()

    def _reader_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                kind, payload = recv_frame(handle.conn)
            except ProtocolError:
                self._worker_down(handle, "pipe_drop")
                return
            except (EOFError, OSError):
                self._worker_down(handle, self._infer_cause(handle))
                return
            with self._lock:
                handle.last_beat = self._now()
                if kind == FRAME_READY:
                    handle.ready = True
                elif kind == FRAME_BYE:
                    handle.saw_bye = True
            if kind == FRAME_READY:
                self._metrics.gauge(
                    f"proc.s{handle.shard}.journal_replayed"
                ).set(float(payload.get("journal_replayed") or 0))
                self._pump()
            elif kind == FRAME_RESPONSE:
                self._on_response(handle, payload)
            elif kind == FRAME_HEARTBEAT:
                self._metrics.counter("proc.heartbeats").inc()
            elif kind == FRAME_TELEMETRY:
                self._metrics.counter("proc.telemetry.frames").inc()
                self.telemetry.ingest(
                    int(payload.get("shard", handle.shard)),
                    int(payload.get("incarnation", handle.incarnation)),
                    payload,
                )

    def _infer_cause(self, handle: _WorkerHandle) -> str:
        handle.process.join(timeout=0.5)
        code = handle.process.exitcode
        if code == PIPE_DROP_EXIT:
            return "pipe_drop"
        if code == 0 and handle.saw_bye:
            return "drain"
        return "crash"

    def _worker_down(self, handle: _WorkerHandle, cause: str) -> None:
        """The one-shot death path for a worker incarnation."""
        with self._lock:
            if handle.down:
                return
            handle.down = True
            shard = self._shards[handle.shard]
            if shard.handle is handle:
                shard.handle = None
            inflight = list(handle.inflight.values())
            handle.inflight.clear()
            draining = self._draining or self._closed
            if cause != "drain":
                shard.failures += 1
                delay = min(
                    self.config.restart_backoff_cap_s,
                    self.config.restart_backoff_base_s
                    * (2.0 ** (shard.failures - 1)),
                )
                shard.restart_at = self._now() + delay
                self._restart_delays.append(delay)
                self._deaths[cause] = self._deaths.get(cause, 0) + 1
        if cause != "drain":
            self._metrics.counter("proc.deaths").inc()
            self._metrics.counter(f"proc.deaths.{cause}").inc()
        self.telemetry.record_event(
            "worker.death" if cause != "drain" else "worker.drained",
            shard=handle.shard, incarnation=handle.incarnation,
            cause=cause, ts=time.time(),
        )
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=2.0)
        try:
            handle.conn.close()
        except OSError:
            pass  # already closed by the tear that got us here
        for req in inflight:
            if req.span is not None:
                # one span per dispatch attempt: the resubmission (if
                # any) opens a fresh one against the next incarnation
                req.span.set_attr("status", "worker_died")
                req.span.set_attr("cause", cause)
                req.span.status = "error"
                req.span.close()
            if req.breaker is not None:
                # a worker death counts against its (dead) incarnation's
                # breaker; the restarted incarnation starts fresh
                req.breaker.on_failure(probe=req.probe)
            if not draining and req.proc_attempt < self.config.proc_retries:
                req.proc_attempt += 1
                req.reset_dispatch()
                with self._lock:
                    self._shards[req.shard].pending.appendleft(req)
                    self._resubmits += 1
                    req.state.ticket.proc_attempts = max(
                        getattr(req.state.ticket, "proc_attempts", 0),
                        req.proc_attempt,
                    )
                self._metrics.counter("proc.resubmits").inc()
            else:
                error = WorkerCrashError(
                    f"worker died executing {req.req_id}",
                    shard=handle.shard, incarnation=handle.incarnation,
                    cause=cause,
                )
                self._finish_part(req, {
                    "status": "error",
                    "degradations": [],
                    "result_payload": None,
                    "attempts": req.proc_attempt + 1,
                    "elapsed_ms": 0.0,
                    "error": f"{type(error).__name__}: {error}",
                    "proc_cause": cause,
                    "_exception": error,
                })
        self._pump()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.monitor_interval_s):
            self._tick()

    def _tick(self) -> None:
        now = self._now()
        kills: List[Tuple[_WorkerHandle, str]] = []
        spawns: List[int] = []
        expired: List[_TicketState] = []
        with self._lock:
            for shard in self._shards:
                handle = shard.handle
                if handle is not None and not handle.down:
                    if not handle.process.is_alive():
                        kills.append((handle, ""))  # cause from exitcode
                    elif handle.ready and (
                        now - handle.last_beat
                        > self.config.heartbeat_timeout_s
                    ):
                        kills.append((handle, "hang"))
                    elif not handle.ready and (
                        now - handle.spawned_at
                        > self.config.ready_timeout_s
                    ):
                        kills.append((handle, "hang"))
                elif (
                    handle is None
                    and not self._draining
                    and not self._closed
                    and now >= shard.restart_at
                ):
                    spawns.append(shard.index)
            if self.config.deadline_s is not None:
                expired = [
                    ts for ts in self._tickets.values()
                    if ts.ticket.deadline_at is not None
                    and now >= ts.ticket.deadline_at
                    and not ts.ticket.cancel.cancelled
                ]
        for handle, cause in kills:
            self._worker_down(handle, cause or self._infer_cause(handle))
        for shard_idx in spawns:
            self._spawn(shard_idx)
        for ts in expired:
            self._metrics.counter("serve.deadline_tripped").inc()
            self._cancel_ticket(
                ts,
                f"deadline of {self.config.deadline_s:.3f}s exceeded",
            )

    # -- completion --------------------------------------------------------

    def _on_response(
        self, handle: _WorkerHandle, payload: Dict[str, object]
    ) -> None:
        req_id = str(payload.get("id"))
        with self._lock:
            req = handle.inflight.pop(req_id, None)
            if req is not None:
                # a completed statement is proof of health: restart
                # backoff starts over
                self._shards[handle.shard].failures = 0
        if req is None:
            return  # late echo of a request already resolved elsewhere
        self._metrics.histogram(
            f"proc.s{handle.shard}.latency"
        ).observe(float(payload.get("elapsed_ms") or 0.0) / 1e3)
        if req.breaker is not None:
            status = str(payload.get("status") or "error")
            if status == "ok":
                req.breaker.on_success(probe=req.probe)
            elif status == "cancelled":
                reason = str(payload.get("cancel_reason") or "")
                if "deadline" in reason:
                    req.breaker.on_failure(probe=req.probe)
                else:
                    # cancelled-not-failed: the build's health is
                    # unknown, so the probe slot frees without latching
                    # the breaker open (the half-open race fix)
                    req.breaker.on_cancelled(probe=req.probe)
            else:
                req.breaker.on_failure(probe=req.probe)
        self._finish_part(req, payload)
        self._pump()

    def _finish_part(
        self, req: _Request, response: Dict[str, object]
    ) -> None:
        state = req.state
        finalize = False
        if req.span is not None and not req.span.closed:
            req.span.set_attr(
                "status", str(response.get("status") or "error")
            )
            req.span.close()
        wal_commit = False
        with self._lock:
            if req.part in state.responses:
                return  # already resolved (cancel raced a response)
            state.responses[req.part] = response
            if (
                req.journal
                and response.get("status") == "ok"
            ):
                if self._wal is not None:
                    # the ack is not releasable until the mutation is
                    # durable: journal append + finalize wait for the
                    # WAL commit (made with the lock released below)
                    state.wal_pending += 1
                    wal_commit = True
                else:
                    shard = self._shards[req.shard]
                    shard.journal.append((req.sql, req.session))
                    self._note_journal_len_locked(shard)
            if (
                len(state.responses) == state.parts
                and state.wal_pending == 0
                and not state.finalized
            ):
                state.finalized = True
                self._tickets.pop(state.ticket.index, None)
                finalize = True
                self._idle.notify_all()
        if wal_commit:
            self._wal_commit(req, state)
        elif finalize:
            self._finalize(state)

    def _finalize(self, state: _TicketState) -> None:
        ticket = state.ticket
        primary = state.responses.get(state.primary_part)
        if primary is None:  # defensive: primary part always responds
            primary = next(iter(state.responses.values()))
        status = str(primary.get("status") or "error")
        explain_text = primary.get("explain_text")
        if (
            ticket.kind == "explain"
            and status == "ok"
            and not isinstance(explain_text, str)
        ):
            # the profile lives worker-side; a worker that did not ship
            # its rendered EXPLAIN text leaves the parent with nothing
            # but zeros — failing loudly beats reporting fake timings
            status = "error"
            primary = dict(primary)
            primary["error"] = (
                "worker returned no EXPLAIN text; EXPLAIN ANALYZE "
                "under --procs requires telemetry-capable workers"
            )
        payload, rows_out = self._merge_payload(state, primary)
        degradations = [
            str(d) for d in (primary.get("degradations") or [])
        ]
        short_circuited = any(r.short_circuited for r in state.requests)
        ticket.short_circuited = short_circuited
        ticket.attempts = int(primary.get("attempts") or 1)
        if ticket.attempts > 1:
            self._metrics.counter("serve.retries").inc(
                ticket.attempts - 1
            )
        ticket.degradations = degradations
        ticket.result_payload = payload
        ticket.has_result_payload = True
        raw_work = primary.get("work")
        ticket.work = (
            {str(k): int(v) for k, v in raw_work.items()}
            if isinstance(raw_work, dict) else None
        )
        if status == "ok":
            degraded = short_circuited or bool(primary.get("degraded"))
            outcome = "degraded" if degraded else "ok"
            error: Optional[BaseException] = None
        else:
            outcome = "failed"
            exc = primary.get("_exception")
            if isinstance(exc, BaseException):
                error = exc
            elif status == "cancelled":
                error = QueryCancelledError(
                    str(
                        primary.get("cancel_reason")
                        or ticket.cancel.reason or "cancelled"
                    )
                )
                self._metrics.counter("serve.cancelled").inc()
            else:
                error = RemoteStatementError(
                    str(primary.get("error") or status), status=status
                )
        self._metrics.counter(f"serve.outcome.{outcome}").inc()
        # conservation counters: every admitted statement is finalized
        # exactly once, attributed to its primary part's shard — these
        # are parent-side, so they survive any number of worker deaths
        # (the unrouted leg is parse errors/rejections, in submit())
        shard_idx = state.requests[state.primary_part].shard
        self._metrics.counter(f"proc.s{shard_idx}.completed").inc()
        self._metrics.histogram(
            f"serve.latency.{ticket.kind or 'invalid'}"
        ).observe(float(primary.get("elapsed_ms") or 0.0) / 1e3)
        self._metrics.counter(f"serve.statements.{status}").inc()
        self._log_ticket_record(
            ticket, status, float(primary.get("elapsed_ms") or 0.0),
            rows_out=rows_out,
            pivot=primary.get("pivot"),
            phases_ms=primary.get("phases_ms"),
            degradations=degradations,
            error=primary.get("error"),
            work=ticket.work,
            proc={
                "shard": state.requests[state.primary_part].shard,
                "incarnation": state.requests[
                    state.primary_part
                ].incarnation,
                "proc_attempts": getattr(ticket, "proc_attempts", 0),
                "cause": primary.get("proc_cause"),
            },
        )
        ticket._finish(
            outcome, status,
            result=explain_text if isinstance(explain_text, str) else None,
            error=error,
        )

    def _merge_payload(
        self, state: _TicketState, primary: Dict[str, object]
    ) -> Tuple[object, Optional[int]]:
        if state.parts == 1:
            rows = primary.get("rows_out")
            return (
                primary.get("result_payload"),
                int(rows) if rows is not None else None,
            )
        payloads = [
            state.responses[p].get("result_payload")
            for p in sorted(state.responses)
        ]
        if all(isinstance(p, list) for p in payloads):
            merged = sorted({str(x) for p in payloads for x in p})
            return merged, len(merged)
        rows = primary.get("rows_out")
        return (
            primary.get("result_payload"),
            int(rows) if rows is not None else None,
        )

    def _log_ticket_record(
        self,
        ticket: StatementTicket,
        status: str,
        elapsed_ms: float,
        rows_out: Optional[int] = None,
        pivot: Optional[object] = None,
        phases_ms: Optional[object] = None,
        degradations: Optional[List[str]] = None,
        error: Optional[object] = None,
        work: Optional[Dict[str, int]] = None,
        proc: Optional[Dict[str, object]] = None,
    ) -> None:
        if not self._worklog.enabled:
            return
        self._worklog.statement(
            ticket.sql,
            ticket.kind or "invalid",
            status,
            elapsed_ms,
            rows_out=rows_out,
            pivot=str(pivot) if pivot is not None else None,
            phases_ms=phases_ms if isinstance(phases_ms, dict) else None,
            degradations=degradations,
            error=str(error) if error is not None else None,
            session=ticket.session,
            work=work,
            proc=proc,
        )

    # -- cancellation ------------------------------------------------------

    def _cancel_ticket(self, state: _TicketState, reason: str) -> None:
        state.ticket.cancel.cancel(reason)
        synth: List[_Request] = []
        sends: List[Tuple[_WorkerHandle, str]] = []
        with self._lock:
            for shard in self._shards:
                if shard.pending:
                    mine = [r for r in shard.pending if r.state is state]
                    for req in mine:
                        shard.pending.remove(req)
                    synth.extend(mine)
                handle = shard.handle
                if handle is not None and not handle.down:
                    sends.extend(
                        (handle, rid)
                        for rid, r in handle.inflight.items()
                        if r.state is state
                    )
        for handle, rid in sends:
            try:
                send_frame(
                    handle.conn, FRAME_CANCEL,
                    {"id": rid, "reason": reason},
                )
            except (OSError, ValueError):
                self._worker_down(handle, "pipe_drop")
        for req in synth:
            self._finish_part(req, _cancelled_response(reason))
        self._pump()

    # -- drain / shutdown --------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admission.  Safe to call from a SIGTERM handler."""
        with self._lock:
            self._draining = True

    def drain(self, grace_s: Optional[float] = None) -> Dict[str, object]:
        """Graceful shutdown: finish or cancel in-flight, reap workers.

        Waits up to ``grace_s`` (default: the config's) for in-flight
        tickets to finish, cancels the rest through the normal
        CancelToken path, sends every worker a drain frame (finish the
        current statement, exit 0), and joins every child process —
        SIGKILLing stragglers so nothing is orphaned.  Returns a report
        with per-shard exit codes; idempotent.
        """
        with self._lock:
            if self._closed:
                return dict(self._drain_report or {})
            self._draining = True
        grace = (
            self.config.drain_grace_s if grace_s is None
            else max(0.0, grace_s)
        )
        deadline = self._now() + grace
        with self._idle:
            while self._tickets and self._now() < deadline:
                self._idle.wait(0.05)
            leftovers = list(self._tickets.values())
        for ts in leftovers:
            self._cancel_ticket(ts, "drain")
        # cancelled builds stop at their next budget checkpoint; give
        # them a bounded window to come back with status=cancelled
        settle = self._now() + 2.0
        with self._idle:
            while self._tickets and self._now() < settle:
                self._idle.wait(0.05)
        with self._lock:
            stuck = [
                s.handle for s in self._shards
                if s.handle is not None and not s.handle.down
                and s.handle.inflight
            ]
        for handle in stuck:
            # a worker that ignores cancellation for this long is hung;
            # killing it resolves its tickets (no resubmit while
            # draining), which is what "every ticket terminal" needs
            self._worker_down(handle, "hang")
        with self._lock:
            handles = [
                s.handle for s in self._shards
                if s.handle is not None and not s.handle.down
            ]
        for handle in handles:
            try:
                send_frame(handle.conn, FRAME_DRAIN, {})
            except (OSError, ValueError):
                self._worker_down(handle, "pipe_drop")
        exitcodes: Dict[str, Optional[int]] = {}
        for handle in handles:
            handle.process.join(timeout=3.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=3.0)
            exitcodes[f"s{handle.shard}"] = handle.process.exitcode
            try:
                handle.conn.close()
            except OSError:
                pass  # peer already tore it down
        self._stop.set()
        if threading.current_thread() is not self._monitor:
            self._monitor.join(timeout=2.0)
        report: Dict[str, object] = {
            "cancelled": len(leftovers),
            "exitcodes": exitcodes,
            "clean": all(code == 0 for code in exitcodes.values()),
        }
        if self._wal is not None:
            try:
                self._wal.close()
                report["wal"] = self._wal.stats()
            except DurabilityError as exc:
                # shutdown path: the failure is *recorded*, not
                # swallowed — the drain report carries it and the next
                # startup recovers from whatever did reach the disk
                report["wal_close_error"] = str(exc)
                report["clean"] = False
        with self._lock:
            self._closed = True
            self._drain_report = report
        return dict(report)

    def close(self, wait: bool = True) -> None:
        """Shut down promptly (a short-grace :meth:`drain`)."""
        self.drain(grace_s=1.0 if wait else 0.0)

    def __enter__(self) -> "ProcSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until every shard has a ready worker (False on timeout)."""
        deadline = self._now() + timeout
        while self._now() < deadline:
            with self._lock:
                ready = all(
                    s.handle is not None and s.handle.ready
                    and not s.handle.down
                    for s in self._shards
                )
            if ready:
                return True
            time.sleep(0.01)
        return False

    def breaker_states(self) -> Dict[str, str]:
        """Breaker key -> state name (empty when disabled)."""
        if self._breakers is None:
            return {}
        return self._breakers.states()

    def stats(self) -> Dict[str, object]:
        """A point-in-time snapshot of the supervision tree."""
        # WAL stats are read before taking the supervisor lock: the
        # only sanctioned lock order is WAL -> supervisor (snapshot_cb)
        wal = self._wal.stats() if self._wal is not None else None
        with self._lock:
            return {
                "wal": wal,
                "submitted": self._submitted,
                "outstanding": len(self._tickets),
                "pending": sum(len(s.pending) for s in self._shards),
                "resubmits": self._resubmits,
                "deaths": dict(sorted(self._deaths.items())),
                "restart_delays": list(self._restart_delays),
                "shards": [
                    {
                        "shard": s.index,
                        "incarnation": (
                            s.handle.incarnation
                            if s.handle is not None else None
                        ),
                        "ready": (
                            bool(s.handle.ready)
                            if s.handle is not None else False
                        ),
                        "failures": s.failures,
                        "journal": len(s.journal),
                    }
                    for s in self._shards
                ],
            }

    def stats_snapshot(self) -> Dict[str, object]:
        """The full ops snapshot: the ``repro stats`` / SIGUSR1 payload.

        Embeds the complete cluster metrics snapshot, so a dumped file
        is self-contained — ``repro stats FILE --slo SPEC`` can gate on
        it offline (the CI warn-only check does exactly that).
        """
        wal = self._wal.stats() if self._wal is not None else None
        with self._lock:
            shards = []
            for s in self._shards:
                handle = s.handle
                shards.append({
                    "shard": s.index,
                    "incarnation": (
                        handle.incarnation if handle is not None else None
                    ),
                    "ready": (
                        bool(handle.ready) if handle is not None else False
                    ),
                    "restarts": max(0, s.next_incarnation - 1),
                    "failures": s.failures,
                    "pending": len(s.pending),
                    "inflight": (
                        len(handle.inflight) if handle is not None else 0
                    ),
                    "journal": len(s.journal),
                })
            snap = {
                "submitted": self._submitted,
                "outstanding": len(self._tickets),
                "queue_depth": sum(len(s.pending) for s in self._shards),
                "inflight": sum(s["inflight"] for s in shards),
                "resubmits": self._resubmits,
                "deaths": dict(sorted(self._deaths.items())),
                "shards": shards,
            }
        snap["wal"] = wal
        snap["recovery"] = self._recovery_info
        snap["breakers"] = self.breaker_states()
        snap["telemetry"] = self.telemetry.stats()
        cluster = self.telemetry.cluster_registry().snapshot()
        snap["metrics"] = cluster
        hists = cluster.get("histograms", {})
        for entry in snap["shards"]:
            dump = hists.get(f"proc.s{entry['shard']}.latency")
            if dump:
                entry["latency_ms"] = {
                    "p50": hist_quantile(dump, 0.50) * 1e3,
                    "p95": hist_quantile(dump, 0.95) * 1e3,
                    "p99": hist_quantile(dump, 0.99) * 1e3,
                    "count": int(dump.get("count") or 0),
                }
        return snap

    def chaos_stats(self) -> Dict[str, object]:
        """What the chaos harness asserts on after a run."""
        with self._lock:
            delays = list(self._restart_delays)
            return {
                "deaths": dict(sorted(self._deaths.items())),
                "total_deaths": sum(self._deaths.values()),
                "resubmits": self._resubmits,
                "restart_delays": delays,
                "max_restart_delay_s": max(delays, default=0.0),
                "backoff_cap_s": self.config.restart_backoff_cap_s,
                "wedged": len(self._tickets),
            }


def _cancelled_response(reason: str) -> Dict[str, object]:
    return {
        "status": "cancelled",
        "degradations": [],
        "result_payload": None,
        "attempts": 0,
        "elapsed_ms": 0.0,
        "error": f"QueryCancelledError: query cancelled: {reason}",
        "cancel_reason": reason,
    }


def _budget_dict(budget: Budget) -> Dict[str, object]:
    return {
        "deadline_s": budget.deadline_s,
        "max_rows": budget.max_rows,
        "max_cells": budget.max_cells,
        "retries": budget.retries,
        "degrade_at": budget.degrade_at,
    }
