"""The worker subprocess: one dataset shard behind a frame pipe.

``worker_main`` is the spawn-context entry point the
:class:`~repro.serve.proc.supervisor.ProcSupervisor` launches one
process per shard with.  A worker:

1. rebuilds its world from a :class:`WorkerSpec` (generate or load the
   table, construct a :class:`~repro.core.explorer.DBExplorer` with the
   workload log and environment fault plan explicitly *disabled* — the
   supervisor owns both), then **replays the catalog journal**: the
   ordered catalog-mutating statements previous incarnations executed
   successfully, so a restarted worker serves ``HIGHLIGHT``/``REORDER``
   against views a dead predecessor built (builds are seeded, so the
   replayed catalog is bit-identical);
2. sends a ``ready`` frame and starts a **heartbeat thread** beating
   every ``heartbeat_interval_s`` — the supervisor's missed-heartbeat
   detector is the only way a *hung* (not dead) worker is caught;
3. executes requests **serially** on the main thread with the same
   in-band retry semantics as the thread executor (transient errors
   retried with deterministic backoff jitter, one forked fault injector
   persisting across attempts), while a **reader thread** keeps
   consuming frames so ``cancel`` can trip an in-flight statement's
   :class:`~repro.robustness.CancelToken` mid-build.

Results never cross the pipe as live objects: the worker reduces them
to the JSON-able digest payload (:func:`repro.serve.stress.
result_payload`) before responding, so the parent hashes exactly what
a thread-mode replay would have hashed.

The three ``proc.*`` fault sites are consulted here, narrowed by the
statement's index (``proc.worker_crash:3`` targets statement #3):

* ``proc.worker_crash`` — ``os._exit`` with :data:`WORKER_CRASH_EXIT`;
* ``proc.worker_hang``  — a planned ``sleep`` runs with the heartbeat
  *suppressed*, so the supervisor sees silence, not a slow build;
* ``proc.pipe_drop``    — close the pipe, then exit, so the supervisor
  sees EOF/torn frames instead of a clean response.

Each request carries its ``proc_attempt`` (how many incarnations
already died trying it); the worker advances the ``proc.*`` sites by
that count so a counting fault fires once per *statement*, not once per
incarnation — which is what makes chaos runs deterministic.
"""

from __future__ import annotations

import os
import queue
import random
import signal
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ConvergenceError,
    QueryCancelledError,
    ReproError,
)
from repro.robustness.budget import Budget
from repro.robustness.cancel import CancelToken
from repro.robustness.faults import NO_FAULTS, FaultInjector
from repro.obs.metrics import registry
from repro.obs.tracer import Span, Tracer, epoch_anchor, span_to_wire
from repro.serve.proc.protocol import (
    FRAME_BYE,
    FRAME_CANCEL,
    FRAME_DRAIN,
    FRAME_HEARTBEAT,
    FRAME_READY,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    FRAME_TELEMETRY,
    ProtocolError,
    recv_frame,
    send_frame,
)

__all__ = [
    "WorkerSpec",
    "worker_main",
    "WORKER_CRASH_EXIT",
    "PIPE_DROP_EXIT",
    "PROC_FAULT_SITES",
]

WORKER_CRASH_EXIT = 13
"""Exit code of an injected ``proc.worker_crash`` (a segfault stand-in)."""

PIPE_DROP_EXIT = 14
"""Exit code after an injected ``proc.pipe_drop`` closed the pipe."""

PROC_FAULT_SITES = (
    "proc.worker_crash", "proc.worker_hang", "proc.pipe_drop",
)

_DEFAULT_ROWS = {"usedcars": 40_000, "mushroom": 8_124}

# Telemetry buffer bounds: overflow is *dropped and counted*, never
# queued unboundedly and never allowed to block request execution.
_TEL_MAX_SPANS = 128
_TEL_MAX_EVENTS = 256

# Mirrors the thread executor's transient set: injected crashes
# (RuntimeError), convergence failures, I/O hiccups.
_TRANSIENT_ERRORS = (ConvergenceError, RuntimeError, OSError)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild its world after spawn.

    The spec crosses the process boundary as a plain dict (spawn
    pickles the ``Process`` args), so every field is a JSON-able
    scalar; the fault plan travels as its *spec string*, not as a live
    injector.

    dataset / rows / seed / csv:
        The table to serve — same vocabulary as the CLI data flags.
    faults_spec / fault_seed:
        The fault plan (``site=kind[*times]`` syntax) and base seed;
        the worker forks one injector per statement index, exactly like
        the thread executor, so chaos fires identically no matter which
        process executes the statement.
    budget:
        The explorer-level :class:`Budget` as a field dict (``None``
        for unbudgeted); per-request overrides (a breaker's open
        budget) arrive on the request frame instead.
    max_retries / backoff_base_s / backoff_cap_s / retry_jitter_seed:
        The in-band transient-retry policy, mirroring
        :class:`~repro.serve.executor.ServeConfig`.
    """

    dataset: str = "usedcars"
    rows: Optional[int] = None
    seed: int = 7
    csv: Optional[str] = None
    faults_spec: Optional[str] = None
    fault_seed: int = 0
    budget: Optional[Dict[str, object]] = None
    max_retries: int = 2
    backoff_base_s: float = 0.02
    backoff_cap_s: float = 0.5
    retry_jitter_seed: int = 0
    ship_spans: bool = False
    """When True (the supervisor was given a tracer), the worker builds
    a span tree per request and ships it over ``TELEMETRY`` frames;
    metrics and lifecycle events ship regardless."""

    def as_dict(self) -> Dict[str, object]:
        """The spawn-safe plain-dict form."""
        return asdict(self)


def _build_table(spec: WorkerSpec):
    """Generate or load the shard's table (the CLI's loading rules)."""
    from repro.dataset.generators import (
        generate_mushroom,
        generate_usedcars,
        mushroom_schema,
        usedcars_schema,
    )
    from repro.dataset.table import Table

    if spec.csv:
        schema = (
            usedcars_schema() if spec.dataset == "usedcars"
            else mushroom_schema()
        )
        return Table.from_csv(spec.csv, schema)
    rows = spec.rows or _DEFAULT_ROWS.get(spec.dataset, 1000)
    if spec.dataset == "mushroom":
        return generate_mushroom(rows, seed=spec.seed)
    return generate_usedcars(rows, seed=spec.seed)


def _build_explorer(spec: WorkerSpec):
    """A DBExplorer with env-driven worklog/faults explicitly off."""
    from repro.core.cadview import CADViewConfig
    from repro.core.explorer import DBExplorer
    from repro.obs.worklog import NO_WORKLOG

    budget = Budget(**spec.budget) if spec.budget else None
    dbx = DBExplorer(
        CADViewConfig(seed=spec.seed),
        budget=budget,
        faults=NO_FAULTS,      # the supervisor forwards faults per request
        worklog=NO_WORKLOG,    # the supervisor writes the parent-side log
    )
    dbx.register("data", _build_table(spec))
    return dbx


class _Worker:
    """The in-process state of one worker incarnation."""

    def __init__(
        self,
        spec: WorkerSpec,
        conn,
        shard: int,
        incarnation: int,
        journal: List[Tuple[str, str]],
        heartbeat_interval_s: float,
    ):
        self.spec = spec
        self.conn = conn
        self.shard = shard
        self.incarnation = incarnation
        self.journal = journal
        self.heartbeat_interval_s = heartbeat_interval_s
        self._send_lock = threading.Lock()
        self._hang = threading.Event()      # heartbeat suppressed while set
        self._stop = threading.Event()
        self._requests: "queue.Queue[Optional[Dict[str, object]]]" = (
            queue.Queue()
        )
        self._tokens_lock = threading.Lock()
        self._tokens: Dict[str, CancelToken] = {}
        self._base_faults = (
            FaultInjector.parse(spec.faults_spec, seed=spec.fault_seed)
            if spec.faults_spec else None
        )
        # telemetry buffers: bounded, drop-counted, flushed best-effort
        self._anchor = epoch_anchor()
        self._tel_lock = threading.Lock()
        self._tel_spans: List[Dict[str, object]] = []
        self._tel_events: List[Dict[str, object]] = []
        self._tel_dropped = 0
        self._tel_seq = 0
        # the startup span covers table build + journal replay — every
        # incarnation that reaches READY ships at least this one span
        self._startup_span = Span(
            "worker.startup", shard=shard, incarnation=incarnation,
            pid=os.getpid(),
        )
        self.dbx = _build_explorer(spec)

    # -- plumbing ----------------------------------------------------------

    def send(self, kind: int, payload: Dict[str, object]) -> None:
        """Write one frame (heartbeat and executor threads share the pipe)."""
        with self._send_lock:
            send_frame(self.conn, kind, payload)

    def _heartbeat_loop(self) -> None:
        seq = 0
        while not self._stop.wait(self.heartbeat_interval_s):
            if self._hang.is_set():
                # an injected hang: go silent, stay alive — telemetry
                # rides the same suppression so a hung worker looks
                # hung end to end
                continue
            seq += 1
            try:
                self.send(FRAME_HEARTBEAT, {"seq": seq})
            except (OSError, ValueError):
                return  # pipe gone: the parent died or we are exiting
            self._flush_telemetry()

    # -- telemetry ---------------------------------------------------------

    def _queue_span(self, span: Span) -> None:
        """Buffer one completed span tree for shipping; drop on overflow."""
        tree = span_to_wire(span, self._anchor)
        with self._tel_lock:
            if len(self._tel_spans) >= _TEL_MAX_SPANS:
                self._tel_dropped += 1
                return
            self._tel_spans.append(tree)

    def _queue_event(self, kind: str, **attrs) -> None:
        """Buffer one lifecycle event; drop on overflow."""
        entry: Dict[str, object] = {
            "kind": kind, "source": "worker",
            "ts": self._anchor + time.perf_counter(),
        }
        entry.update(attrs)
        with self._tel_lock:
            if len(self._tel_events) >= _TEL_MAX_EVENTS:
                self._tel_dropped += 1
                return
            self._tel_events.append(entry)

    def _flush_telemetry(self) -> None:
        """Ship buffered telemetry; best-effort, never raises.

        The buffers are swapped out under ``_tel_lock`` and the frame
        is sent *after* the lock is released (RL009: no pipe I/O while
        holding an obs lock) — a slow or blocked pipe can delay this
        flush but can never wedge a thread that is merely queueing.
        """
        with self._tel_lock:
            spans = self._tel_spans
            events = self._tel_events
            self._tel_spans = []
            self._tel_events = []
            self._tel_seq += 1
            seq = self._tel_seq
            dropped = self._tel_dropped
        payload = {
            "shard": self.shard,
            "incarnation": self.incarnation,
            "pid": os.getpid(),
            "seq": seq,
            "dropped": dropped,
            "metrics": registry().snapshot(),  # cumulative, self-healing
            "spans": spans,
            "events": events,
        }
        try:
            self.send(FRAME_TELEMETRY, payload)
        except (OSError, ValueError):
            pass  # pipe gone; the run loop will notice separately

    def _reader_loop(self) -> None:
        while True:
            try:
                kind, payload = recv_frame(self.conn)
            except (EOFError, OSError, ProtocolError):
                # parent gone (or pipe torn): stop executing and exit —
                # never linger as an orphan serving nobody
                self._requests.put(None)
                return
            if kind == FRAME_REQUEST:
                self._requests.put(payload)
            elif kind == FRAME_CANCEL:
                with self._tokens_lock:
                    token = self._tokens.get(str(payload.get("id")))
                if token is not None:
                    token.cancel(
                        str(payload.get("reason") or "cancelled")
                    )
            elif kind == FRAME_DRAIN:
                self._requests.put(None)

    # -- startup -----------------------------------------------------------

    def replay_journal(self) -> int:
        """Re-execute the catalog journal; returns statements replayed.

        Journal statements already succeeded in a previous incarnation
        and builds are seeded, so failures here mean the world changed
        under us (a CSV disappeared); they are skipped — the affected
        view simply stays missing and later statements against it fail
        with the normal unknown-view error.
        """
        replayed = 0
        for sql, session in self.journal:
            try:
                self.dbx.execute(sql, session=session)
                replayed += 1
            except ReproError:
                continue
        return replayed

    # -- the executor loop -------------------------------------------------

    def run(self) -> int:
        """Serve requests until drained; returns the exit code."""
        threading.Thread(
            target=self._reader_loop,
            name=f"proc-worker-{self.shard}-reader", daemon=True,
        ).start()
        replayed = self.replay_journal()
        threading.Thread(
            target=self._heartbeat_loop,
            name=f"proc-worker-{self.shard}-heartbeat", daemon=True,
        ).start()
        self.send(FRAME_READY, {
            "pid": os.getpid(),
            "shard": self.shard,
            "incarnation": self.incarnation,
            "journal_replayed": replayed,
        })
        self._startup_span.set_attr("journal_replayed", replayed)
        self._startup_span.close()
        self._queue_span(self._startup_span)
        self._queue_event(
            "worker.ready", pid=os.getpid(), journal_replayed=replayed,
        )
        self._flush_telemetry()
        while True:
            request = self._requests.get()
            if request is None:
                break
            self._serve_request(request)
        self._stop.set()
        self._queue_event("worker.drain", pid=os.getpid())
        self._flush_telemetry()
        try:
            self.send(FRAME_BYE, {"shard": self.shard})
        except (OSError, ValueError):
            pass  # parent already gone; exiting is all that is left
        return 0

    def _serve_request(self, request: Dict[str, object]) -> None:
        req_id = str(request["id"])
        sql = str(request["sql"])
        session = str(request.get("session") or "default")
        fault_index = int(request.get("fault_index") or 0)
        proc_attempt = int(request.get("proc_attempt") or 0)
        injector = (
            self._base_faults.fork(fault_index)
            if self._base_faults is not None else NO_FAULTS
        )
        self._fire_proc_faults(injector, fault_index, proc_attempt)
        budget_override: Optional[Budget] = None
        raw_budget = request.get("budget")
        if isinstance(raw_budget, dict):
            budget_override = Budget(**raw_budget)
        token = CancelToken()
        with self._tokens_lock:
            self._tokens[req_id] = token
        req_tracer: Optional[Tracer] = None
        prev_tracer = None
        if self.spec.ship_spans:
            # the build pipeline traces into the explorer's tracer; a
            # per-request root carrying the request id is what lets the
            # hub stitch this tree under the supervisor's request span
            req_tracer = Tracer(
                "worker.request", request_id=req_id,
                shard=self.shard, incarnation=self.incarnation,
            )
            prev_tracer = self.dbx.tracer
            self.dbx.tracer = req_tracer
        try:
            response = self._execute(
                sql, session, injector, token, budget_override,
                fault_index,
            )
        finally:
            if req_tracer is not None:
                self.dbx.tracer = prev_tracer
            with self._tokens_lock:
                self._tokens.pop(req_id, None)
        response["id"] = req_id
        response["incarnation"] = self.incarnation
        if req_tracer is not None:
            root = req_tracer.finish()
            root.set_attr("status", response.get("status"))
            self._queue_span(root)
        self.send(FRAME_RESPONSE, response)
        self._flush_telemetry()

    def _fire_proc_faults(
        self, injector: FaultInjector, index: int, proc_attempt: int
    ) -> None:
        """Consult the three proc sites, honoring prior incarnations."""
        key = str(index)
        if proc_attempt:
            for site in PROC_FAULT_SITES:
                injector.advance(site, proc_attempt, key)
        try:
            injector.fire("proc.worker_crash", key)
        # this handler IS the fault: an injected worker crash must look
        # like a segfault (hard nonzero exit), not a Python traceback
        # repro-lint: ignore[RL004]
        except Exception:
            self.conn.close()
            os._exit(WORKER_CRASH_EXIT)
        # a planned sleep here is a *hang*: the heartbeat goes silent
        # for the duration, so the supervisor's missed-heartbeat
        # detector (not a pipe event) is what must catch us
        self._hang.set()
        try:
            injector.fire("proc.worker_hang", key)
        finally:
            self._hang.clear()
        try:
            injector.fire("proc.pipe_drop", key)
        # likewise the fault itself: tear the pipe, then die quietly so
        # the supervisor sees EOF rather than a response
        # repro-lint: ignore[RL004]
        except Exception:
            self.conn.close()
            os._exit(PIPE_DROP_EXIT)

    def _execute(
        self,
        sql: str,
        session: str,
        injector: FaultInjector,
        token: CancelToken,
        budget_override: Optional[Budget],
        fault_index: int,
    ) -> Dict[str, object]:
        """One statement with thread-executor-identical retry semantics."""
        # lazy import: keeps worker import time (spawn latency) down and
        # avoids a module cycle through repro.serve.stress
        from repro.core.explorer import _result_rows, _statement_status
        from repro.obs.worklog import statement_kind
        from repro.query.ast import CreateCadViewStatement
        from repro.query.parser import parse
        from repro.serve.stress import result_payload

        sess = self.dbx.session(session)
        report_before = sess.last_report
        start = time.perf_counter()
        attempts = self.spec.max_retries + 1
        error: Optional[BaseException] = None
        result: Optional[object] = None
        for attempt in range(attempts):
            try:
                if token.cancelled:
                    token.raise_if_cancelled()
                injector.fire("serve.slow_worker")
                if token.cancelled:
                    token.raise_if_cancelled()
                result = self.dbx.execute(
                    sql, session=sess, cancel=token,
                    budget=budget_override, faults=injector,
                )
                error = None
                break
            except QueryCancelledError as exc:
                error = exc
                break
            except _TRANSIENT_ERRORS as exc:
                error = exc
                if attempt + 1 >= attempts or token.cancelled:
                    break
                time.sleep(self._backoff_s(fault_index, attempt))
            # not swallowed: the error becomes the response's status
            # and travels back to the supervisor verbatim
            # repro-lint: ignore[RL004]
            except BaseException as exc:
                error = exc
                break
        elapsed_ms = (time.perf_counter() - start) * 1e3
        report = sess.last_report
        if report is report_before:
            report = None
        degradations = (
            [str(d) for d in report.degradations]
            if report is not None else []
        )
        degraded = (
            error is None and report is not None and report.degraded
        )
        pivot = None
        try:
            stmt = parse(sql)
            if isinstance(stmt, CreateCadViewStatement):
                pivot = stmt.pivot
        except ReproError:
            stmt = None
        phases_ms = None
        if report is not None and report.profile is not None:
            phases_ms = {
                "compare_attrs": report.profile.compare_attrs_s * 1e3,
                "iunits": report.profile.iunits_s * 1e3,
                "others": report.profile.others_s * 1e3,
            }
        status = _statement_status(error)
        kind = statement_kind(stmt)
        # process-local metrics: shipped to the supervisor as part of
        # the cumulative TELEMETRY snapshot, re-labeled per shard there
        reg = registry()
        reg.histogram(f"worker.latency.{kind}").observe(elapsed_ms / 1e3)
        reg.counter(f"worker.statements.{status}").inc()
        return {
            "status": status,
            "degraded": degraded,
            "degradations": degradations,
            "result_payload": result_payload(result),
            "rows_out": _result_rows(result),
            "pivot": pivot,
            "phases_ms": phases_ms,
            # EXPLAIN renders worker-side (the plan/timings live here);
            # ship the text so the supervisor can return real phase
            # numbers instead of silently-zero parent-side timings
            "explain_text": result if isinstance(result, str) else None,
            "kind": kind,
            "error": (
                f"{type(error).__name__}: {error}"
                if error is not None else None
            ),
            "cancel_reason": token.reason,
            "attempts": attempt + 1,
            "elapsed_ms": elapsed_ms,
            # deterministic work counters of the final attempt — exact
            # integers, so the supervisor can log/ship them verbatim
            "work": sess.last_work,
        }

    def _backoff_s(self, index: int, attempt: int) -> float:
        # byte-for-byte the thread executor's jitter formula, so a
        # transient retry waits identically in either serving mode
        base = min(
            self.spec.backoff_cap_s,
            self.spec.backoff_base_s * (2.0 ** attempt),
        )
        rng = random.Random(
            self.spec.retry_jitter_seed * 1_000_003
            + index * 1_009 + attempt
        )
        return base * (0.5 + rng.random() / 2.0)


def worker_main(
    spec_dict: Dict[str, object],
    conn,
    shard: int,
    incarnation: int,
    journal: List[Tuple[str, str]],
    heartbeat_interval_s: float,
) -> None:
    """Spawn entry point: build the shard, serve until drained, exit 0."""
    # the supervisor coordinates interrupts; a stray ^C on the process
    # group must not take workers down un-drained
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    spec = WorkerSpec(**spec_dict)
    worker = _Worker(
        spec, conn, shard, incarnation,
        [tuple(entry) for entry in journal],
        heartbeat_interval_s,
    )
    # SIGTERM = drain: finish the current statement, then exit cleanly
    signal.signal(
        signal.SIGTERM,
        lambda signum, frame: worker._requests.put(None),
    )
    code = worker.run()
    conn.close()
    os._exit(code)
