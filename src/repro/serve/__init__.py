"""Concurrent serving core: sessions, admission control, breakers.

DBExplorer answers one statement at a time; this package turns it into
a multi-session server without touching the algorithms underneath:

* :class:`ViewRegistry` — the named CAD View catalog as copy-on-write
  snapshots, so concurrent ``CREATE CADVIEW``/``DROP`` never corrupt
  in-flight readers;
* :class:`CircuitBreaker` — a per-dataset closed/open/half-open state
  machine that short-circuits builds to the degradation ladder while a
  dataset is misbehaving, instead of burning pool threads on it;
* :class:`SessionExecutor` — a thread-pool executor with a *bounded*
  admission queue (explicit :class:`~repro.errors.OverloadedError`
  with a Retry-After hint, never unbounded queuing), a per-query
  watchdog that trips a :class:`~repro.robustness.CancelToken` checked
  at the existing budget checkpoints, and retry-with-backoff-and-jitter
  for transient faults;
* :mod:`repro.serve.stress` — dependency-aware concurrent replay of a
  captured workload log (``repro replay --concurrency N``) and the
  ``repro serve --stress`` driver;
* :mod:`repro.serve.durability` — the durable catalog: a checksummed
  write-ahead log fsync'd before acks, snapshot compaction, and
  whole-process crash recovery (``serve --procs N --state-dir DIR``),
  proven by the kill -9 torture harness (``--torture N``).
"""

from repro.serve.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.serve.executor import (
    ServeConfig,
    SessionExecutor,
    StatementTicket,
)
from repro.serve.registry import ViewRegistry
from repro.serve.stress import (
    ConcurrentReplayReport,
    StatementResult,
    replay_concurrent,
    statement_scopes,
)

__all__ = [
    "ViewRegistry",
    "BreakerConfig", "BreakerState", "CircuitBreaker",
    "ServeConfig", "SessionExecutor", "StatementTicket",
    "ConcurrentReplayReport", "StatementResult",
    "replay_concurrent", "statement_scopes",
]
