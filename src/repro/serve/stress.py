"""Dependency-aware concurrent replay and the stress driver.

``repro replay --concurrency N`` re-executes a captured workload log
through a :class:`~repro.serve.executor.SessionExecutor` pool — and the
point of the exercise is that *concurrency must not change answers*.
To keep that property checkable the harness is deterministic by
construction:

* Statements form a **read/write dependency DAG on view names**
  (:func:`statement_scopes`): ``CREATE CADVIEW`` / ``DROP`` /
  ``REORDER`` write a view, ``HIGHLIGHT`` / ``REORDER`` read one,
  ``SHOW CADVIEWS`` reads the whole catalog.  A statement is submitted
  only after every earlier statement it conflicts with has completed —
  the scheduling happens on the **driver thread**, never by blocking a
  pool worker on another ticket (that would deadlock a full pool).
* Each statement runs in its **own session** (``s<i>``) so
  ``last_report`` / ``last_analysis`` never race, and with its **own
  forked fault injector** (:meth:`~repro.robustness.faults.
  FaultInjector.fork`) so counting faults fire identically no matter
  how worker threads interleave.
* In deterministic mode the queue is sized to never reject, deadlines
  are off, and **circuit breakers are disabled** — breaker state
  depends on cross-statement completion order, which is exactly the
  nondeterminism replay must exclude.  ``repro serve --stress`` flips
  all three back on to exercise rejections, the watchdog and the
  breakers under load.

Each statement's terminal state is captured as a :class:`StatementResult`
whose ``digest`` hashes the things the paper's user sees — status,
degradation rungs, and the full IUnit contents of a built view — and
deliberately nothing wall-clock.  Two replays of the same log at any
two concurrency levels must produce identical digest sequences; the
``--verify-sequential`` CI gate and the tier-1 determinism test both
reduce to comparing those lists.
"""

from __future__ import annotations

import hashlib
import json
import queue
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import ReproError, ServeError
from repro.obs.metrics import MetricsRegistry
from repro.query.ast import (
    CreateCadViewStatement,
    DropCadViewStatement,
    ExplainStatement,
    HighlightSimilarStatement,
    ReorderRowsStatement,
    ShowCadViewsStatement,
)
from repro.obs.worklog import statement_kind
from repro.query.parser import parse
from repro.serve.executor import (
    ServeConfig,
    SessionExecutor,
    StatementTicket,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids serve<->core cycle
    from repro.core.explorer import DBExplorer

__all__ = [
    "StatementResult",
    "ConcurrentReplayReport",
    "replay_concurrent",
    "statement_scopes",
    "result_payload",
]

ALL_VIEWS = "*"
"""Scope marker: the statement touches the entire view catalog."""


def statement_scopes(sql: str) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """``(reads, writes)`` over view names for one statement.

    The scopes drive the replay scheduler's conflict edges (two
    statements conflict when either writes a view the other touches).
    :data:`ALL_VIEWS` in a set means "the whole catalog" (``SHOW
    CADVIEWS``).  Unparsable statements get empty scopes — they fail
    identically wherever they run, so they need no ordering.

    ``EXPLAIN`` conservatively inherits its inner statement's scopes:
    ``EXPLAIN ANALYZE CREATE CADVIEW`` really does build and register
    the view, and even a plain ``EXPLAIN`` is cheap enough that the
    lost parallelism from over-ordering it does not matter.
    """
    try:
        stmt = parse(sql)
    except ReproError:
        return frozenset(), frozenset()
    return _scopes_of(stmt)


def _scopes_of(stmt: object) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    if isinstance(stmt, ExplainStatement):
        return _scopes_of(stmt.inner)
    if isinstance(stmt, CreateCadViewStatement):
        return frozenset(), frozenset({stmt.name})
    if isinstance(stmt, DropCadViewStatement):
        # DROP returns the remaining catalog listing, so besides
        # removing one view it *reads* all of them
        return frozenset({ALL_VIEWS}), frozenset({stmt.name})
    if isinstance(stmt, ReorderRowsStatement):
        return frozenset({stmt.view}), frozenset({stmt.view})
    if isinstance(stmt, HighlightSimilarStatement):
        return frozenset({stmt.view}), frozenset()
    if isinstance(stmt, ShowCadViewsStatement):
        return frozenset({ALL_VIEWS}), frozenset()
    return frozenset(), frozenset()  # SELECT / DESCRIBE: no view deps


def _intersects(a: FrozenSet[str], b: FrozenSet[str]) -> bool:
    if not a or not b:
        return False
    if ALL_VIEWS in a or ALL_VIEWS in b:
        return True
    return not a.isdisjoint(b)


def _dependency_edges(
    scopes: List[Tuple[FrozenSet[str], FrozenSet[str]]],
) -> List[List[int]]:
    """``deps[i]`` = earlier statement indices ``i`` must wait for.

    Edges cover all three hazards on view names — read-after-write,
    write-after-write and write-after-read — so the replayed catalog
    passes through exactly the states the sequential session saw.
    """
    deps: List[List[int]] = [[] for _ in scopes]
    for i, (reads_i, writes_i) in enumerate(scopes):
        for j in range(i):
            reads_j, writes_j = scopes[j]
            if (
                _intersects(writes_j, reads_i)
                or _intersects(writes_j, writes_i)
                or _intersects(reads_j, writes_i)
            ):
                deps[i].append(j)
    return deps


@dataclass
class StatementResult:
    """The terminal state of one replayed statement."""

    index: int
    statement: str
    kind: str
    session: str
    status: str
    outcome: str
    digest: str
    degradations: List[str] = field(default_factory=list)
    error: Optional[str] = None
    attempts: int = 0
    # deterministic work counters of the final (digested) execution;
    # deliberately NOT part of the digest — they are gated on their own,
    # with exact equality, by the regression layer
    work: Optional[Dict[str, int]] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly dump (statement text omitted: it is an input)."""
        return {
            "index": self.index,
            "kind": self.kind,
            "status": self.status,
            "outcome": self.outcome,
            "digest": self.digest,
            "degradations": list(self.degradations),
            "error": self.error,
            "attempts": self.attempts,
            "work": dict(sorted(self.work.items())) if self.work else None,
        }


@dataclass
class ConcurrentReplayReport:
    """Everything one concurrent replay produced."""

    concurrency: int
    results: List[StatementResult] = field(default_factory=list)
    wall_s: float = 0.0
    breaker_states: Dict[str, str] = field(default_factory=dict)
    # corrupt worklog lines skipped while reading the input (the CLI
    # stamps this in; the harness itself never sees raw lines)
    corrupt_lines: int = 0

    @property
    def outcomes(self) -> Dict[str, int]:
        """Outcome -> count over all statements."""
        counts: Dict[str, int] = {}
        for res in self.results:
            counts[res.outcome] = counts.get(res.outcome, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def statuses(self) -> Dict[str, int]:
        """Worklog status -> count over all statements."""
        counts: Dict[str, int] = {}
        for res in self.results:
            counts[res.status] = counts.get(res.status, 0) + 1
        return dict(sorted(counts.items()))

    def digests(self) -> List[str]:
        """Per-statement digests, in statement order."""
        return [res.digest for res in self.results]

    def work_totals(self) -> Dict[str, int]:
        """Summed deterministic work counters over all statements.

        Per-statement counts reflect each statement's *final* execution
        (retries and resubmissions re-run the same seeded build), so
        the totals byte-match across concurrency levels and serving
        modes — the property the exact-equality gate checks.
        """
        totals: Dict[str, int] = {}
        for res in self.results:
            for name, count in (res.work or {}).items():
                totals[name] = totals.get(name, 0) + count
        return dict(sorted(totals.items()))

    def mismatches(
        self, other: "ConcurrentReplayReport"
    ) -> List[Tuple[int, str, str]]:
        """``(index, ours, theirs)`` where the digests disagree."""
        out = []
        for mine, theirs in zip(self.results, other.results):
            if mine.digest != theirs.digest:
                out.append((mine.index, mine.digest, theirs.digest))
        if len(self.results) != len(other.results):
            out.append((-1, str(len(self.results)),
                        str(len(other.results))))
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly dump (what ``--json`` and the CI gate emit)."""
        return {
            "concurrency": self.concurrency,
            "statements": len(self.results),
            "corrupt_lines": self.corrupt_lines,
            "wall_s": self.wall_s,
            "outcomes": self.outcomes,
            "statuses": self.statuses,
            "breaker_states": dict(sorted(self.breaker_states.items())),
            "work": {"totals": self.work_totals()},
            "results": [res.as_dict() for res in self.results],
        }

    def render(self) -> str:
        """The human-readable report printed by the CLI."""
        outcome_text = "  ".join(
            f"{k}={v}" for k, v in self.outcomes.items()
        )
        lines = [
            f"== concurrent replay: {len(self.results)} statement(s) "
            f"at concurrency {self.concurrency} in {self.wall_s:.2f}s ==",
            f"outcomes: {outcome_text or '(none)'}",
        ]
        if self.corrupt_lines:
            lines.append(
                f"warning: {self.corrupt_lines} corrupt worklog line(s) "
                "skipped (rerun with --strict to fail on them)"
            )
        if self.breaker_states:
            lines.append("breakers: " + "  ".join(
                f"{k}={v}"
                for k, v in sorted(self.breaker_states.items())
            ))
        totals = self.work_totals()
        if totals:
            lines.append("work counters (deterministic, exact-gated):")
            lines.extend(
                f"  {name} = {count}" for name, count in totals.items()
            )
        for res in self.results:
            lines.append(
                f"#{res.index:<3} {res.status:<16} {res.outcome:<9} "
                f"{res.digest}  {res.kind}"
            )
        return "\n".join(lines)


def replay_concurrent(
    records: Iterable[Dict[str, object]],
    dbx: Optional["DBExplorer"] = None,
    concurrency: int = 1,
    config: Optional[ServeConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    executor: Optional[object] = None,
) -> ConcurrentReplayReport:
    """Replay a workload log through a worker pool, deterministically.

    ``records`` is :func:`~repro.obs.worklog.read_worklog` output;
    session headers and malformed records are skipped.  Without an
    explicit ``config`` the executor is configured for determinism:
    ``concurrency`` workers, a queue that never rejects, no deadline,
    breakers off.  Passing a ``config`` (the stress driver does) keeps
    the DAG scheduling but lets admission control, the watchdog and the
    breakers all bite — rejected statements are recorded with outcome
    ``rejected`` and their writes simply never happen, exactly like a
    client that got a 503.

    ``executor`` plugs in an external ticket source instead of a
    freshly built :class:`SessionExecutor` — anything with the
    ``submit(sql, session=..., faults=..., fault_index=...)`` /
    ``breaker_states()`` surface, in practice a
    :class:`~repro.serve.proc.supervisor.ProcSupervisor`.  An external
    executor is *not* closed here (the caller owns its lifecycle, e.g.
    to drain it gracefully afterwards), and ``dbx`` may then be
    ``None``: proc tickets carry their own digest payloads.

    Returns a :class:`ConcurrentReplayReport` whose per-statement
    digests are comparable across concurrency levels — and across
    serving modes: thread pool and process shards hash identically.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if executor is None and dbx is None:
        raise ValueError("need a dbx to build an executor around")
    sqls = [
        str(rec["statement"]) for rec in records
        if rec.get("kind") == "statement"
        and isinstance(rec.get("statement"), str)
        and str(rec["statement"]).strip()
    ]
    n = len(sqls)
    report = ConcurrentReplayReport(concurrency=concurrency)
    if n == 0:
        return report
    scopes = [statement_scopes(sql) for sql in sqls]
    deps = _dependency_edges(scopes)
    dependents: List[List[int]] = [[] for _ in range(n)]
    unmet = [0] * n
    for i, dep_list in enumerate(deps):
        unmet[i] = len(dep_list)
        for j in dep_list:
            dependents[j].append(i)

    if config is None:
        config = ServeConfig(
            workers=concurrency,
            queue_limit=n + 1,   # deterministic replay never rejects
            deadline_s=None,
            breaker=None,        # state depends on completion order
        )
    base_faults = dbx.faults if dbx is not None else None
    results: List[Optional[StatementResult]] = [None] * n
    finished: "queue.Queue[Tuple[int, Optional[StatementTicket]]]" = (
        queue.Queue()
    )
    rejections: Dict[int, ServeError] = {}

    own_executor = executor is None
    if executor is None:
        executor = SessionExecutor(dbx, config, metrics=metrics)
    t0 = time.perf_counter()
    try:
        def _submit(i: int) -> None:
            forked = (
                base_faults.fork(i) if base_faults is not None else None
            )
            try:
                ticket = executor.submit(
                    sqls[i], session=f"s{i}", faults=forked,
                    fault_index=i,
                )
            # an overloaded queue and a draining supervisor both say
            # "not now"; either way the statement is a clean rejection,
            # never a wedge
            except ServeError as exc:
                rejections[i] = exc
                finished.put((i, None))
                return
            ticket.add_done_callback(
                lambda t, i=i: finished.put((i, t))
            )

        for i in range(n):
            if unmet[i] == 0:
                _submit(i)
        done = 0
        while done < n:
            i, ticket = finished.get()
            results[i] = _result_of(i, sqls[i], ticket, rejections, dbx)
            done += 1
            for j in dependents[i]:
                unmet[j] -= 1
                if unmet[j] == 0:
                    _submit(j)
        report.breaker_states = executor.breaker_states()
    finally:
        if own_executor:
            executor.close()
    report.wall_s = time.perf_counter() - t0
    report.results = [res for res in results if res is not None]
    return report


def _result_of(
    index: int,
    sql: str,
    ticket: Optional[StatementTicket],
    rejections: Dict[int, ServeError],
    dbx: Optional["DBExplorer"],
) -> StatementResult:
    if ticket is None:
        error = rejections.get(index)
        try:
            kind = statement_kind(parse(sql))
        except ReproError:
            kind = "invalid"
        return StatementResult(
            index=index, statement=sql, kind=kind,
            session=f"s{index}", status="rejected", outcome="rejected",
            digest=_digest("rejected", [], None),
            error=f"{type(error).__name__}: {error}"
            if error is not None else None,
        )
    if getattr(ticket, "has_result_payload", False):
        # a proc-mode ticket: the worker already reduced its result to
        # the digest payload before it crossed the pipe, and the
        # degradations (and work counters) travelled with it (the
        # worker's session state is in another process)
        degradations = list(ticket.degradations or [])
        payload = ticket.result_payload
        work = getattr(ticket, "work", None)
    else:
        session = dbx.session(ticket.session) if dbx is not None else None
        report = session.last_report if session is not None else None
        degradations = (
            [str(d) for d in report.degradations]
            if report is not None else []
        )
        payload = result_payload(ticket.result)
        # the executor stamped the counters on the ticket at execution
        # time; session.last_work would race with later statements on
        # the same session
        work = getattr(ticket, "work", None)
    return StatementResult(
        index=index,
        statement=sql,
        kind=ticket.kind or "invalid",
        session=ticket.session,
        status=ticket.status or "error",
        outcome=ticket.outcome or "failed",
        digest=_digest_payload(
            ticket.status or "error", degradations, payload
        ),
        degradations=degradations,
        error=(
            f"{type(ticket.error).__name__}: {ticket.error}"
            if ticket.error is not None else None
        ),
        attempts=ticket.attempts,
        work=dict(work) if work else None,
    )


def _digest(
    status: str, degradations: List[str], result: Optional[object]
) -> str:
    return _digest_payload(status, degradations, result_payload(result))


def _digest_payload(
    status: str, degradations: List[str], payload: object
) -> str:
    """Hash what the user would see; deliberately no wall-clock fields.

    Error *messages* are excluded too: ``BudgetExceededError`` embeds
    elapsed milliseconds, which would break digest comparisons between
    runs that fail identically.  ``payload`` is already in
    :func:`result_payload` form — either computed here (thread mode) or
    worker-side before it crossed the pipe (proc mode); hashing the
    payload rather than the live object is what makes the two modes
    byte-comparable.
    """
    payload_dict = {
        "status": status,
        "degradations": list(degradations),
        "result": payload,
    }
    blob = json.dumps(payload_dict, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def result_payload(result: Optional[object]) -> object:
    """Reduce a statement result to its JSON-able digest form.

    This is the canonical "what the user saw" projection: CAD Views
    serialize fully (every IUnit), tables dump rows, catalog listings
    become string lists, rendered text collapses to a marker (it embeds
    wall-clock timings).  Both serving modes digest exactly this form —
    the proc workers compute it *before* the result crosses the pipe.
    """
    return _result_payload(result)


def _result_payload(result: Optional[object]) -> object:
    # lazy imports: repro.core imports repro.serve at module load; the
    # reverse edge must stay runtime-only
    from repro.core.cadview import CADView
    from repro.core.serialize import to_dict
    from repro.dataset.table import Table

    if result is None:
        return None
    if isinstance(result, CADView):
        return to_dict(result)
    if isinstance(result, Table):
        return {
            "rows": len(result),
            "attributes": [a.name for a in result.schema],
            "data": [list(map(str, row)) for row in result.iter_rows()],
        }
    if isinstance(result, list):
        return [str(item) for item in result]
    if isinstance(result, str):
        # rendered text (EXPLAIN ANALYZE traces, analyzer reports)
        # embeds wall-clock timings — only its presence is hashed
        return "<rendered text>"
    return str(result)
