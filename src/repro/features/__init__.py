"""Feature selection for Compare Attributes (paper Sec. 3.1.1)."""

from repro.features.chi2 import (
    ChiSquareResult,
    chi2_sf,
    chi_square_test,
    cramers_v,
)
from repro.features.bayesnet import ChowLiuTree
from repro.features.contingency import contingency_table, marginals
from repro.features.dependencies import (
    Dependency,
    correlation_pairs,
    discover_dependencies,
    fd_strength,
)
from repro.features.selection import (
    ChiSquareSelector,
    FeatureScore,
    FeatureSelector,
    MutualInformationSelector,
    SymmetricUncertaintySelector,
    select_compare_attributes,
)

__all__ = [
    "contingency_table", "marginals",
    "ChiSquareResult", "chi2_sf", "chi_square_test", "cramers_v",
    "FeatureScore", "FeatureSelector", "ChiSquareSelector",
    "MutualInformationSelector", "SymmetricUncertaintySelector",
    "select_compare_attributes",
    "ChowLiuTree",
    "Dependency", "fd_strength", "discover_dependencies",
    "correlation_pairs",
]
