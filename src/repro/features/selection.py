"""Compare Attribute selection (paper Problem 1.1).

Given a discretized result set and a Pivot Attribute, rank every other
attribute by how much contrast it induces between the pivot values, and
keep the top ``c`` whose relevance clears a significance threshold
("a Compare Attribute [that] is not informative about the Pivot
Attribute ... will lower the quality of generated IUnits and waste
valuable screen space", Sec. 3.1.1).

Selectors:

* :class:`ChiSquareSelector` — the paper's choice (Weka ChiSquare):
  score = Pearson chi-square statistic, relevance gate = p-value.
* :class:`MutualInformationSelector` — information-gain alternative.
* :class:`SymmetricUncertaintySelector` — normalized MI, less biased
  toward high-cardinality attributes.

All operate on the same contingency tables, so they are directly
comparable in the E-FS ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.discretize.discretizer import DiscretizedView
from repro.errors import QueryError
from repro.features.chi2 import chi2_sf, chi_square_test
from repro.features.contingency import contingency_table
from repro.obs.metrics import registry
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "FeatureScore",
    "FeatureSelector",
    "ChiSquareSelector",
    "MutualInformationSelector",
    "SymmetricUncertaintySelector",
    "select_compare_attributes",
]


@dataclass(frozen=True)
class FeatureScore:
    """Relevance of one candidate Compare Attribute."""

    attribute: str
    score: float
    p_value: float

    def relevant(self, alpha: float) -> bool:
        """True when the attribute clears the significance gate."""
        return self.p_value <= alpha


class FeatureSelector:
    """Base class: score candidates against the pivot partition."""

    def score_table(self, table: np.ndarray) -> Tuple[float, float]:
        """(score, p_value) for one contingency table."""
        raise NotImplementedError

    def rank(
        self,
        view: DiscretizedView,
        pivot: str,
        candidates: Optional[Sequence[str]] = None,
        checkpoint: Optional[Callable[[], None]] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[FeatureScore]:
        """Candidates sorted by decreasing score.

        ``candidates`` defaults to every view attribute except the
        pivot.  ``checkpoint`` is called once per candidate scored, so a
        budgeted build can stop a wide selection mid-way.  A ``tracer``
        gains per-span counters: candidates scored and contingency
        cells evaluated (the chi-square work unit).
        """
        if pivot not in view:
            raise QueryError(f"pivot {pivot!r} not in discretized view")
        if candidates is None:
            candidates = [n for n in view.attribute_names if n != pivot]
        tracer = tracer or NULL_TRACER
        pivot_codes = view.codes(pivot)
        n_classes = view.ncodes(pivot)
        cells = 0
        scores = []
        for name in candidates:
            if name == pivot:
                continue
            if checkpoint is not None:
                checkpoint()
            table = contingency_table(
                pivot_codes, view.codes(name), n_classes, view.ncodes(name)
            )
            cells += int(table.size)
            score, p = self.score_table(table)
            scores.append(FeatureScore(name, score, p))
        tracer.inc("candidates_scored", len(scores))
        tracer.inc("cells_scored", cells)
        # cell totals live in the work taxonomy now (contingency_table
        # and chi_square_test count themselves); only the candidate
        # count remains engine-specific
        registry().counter("features.candidates_scored").inc(len(scores))
        scores.sort(key=lambda s: (-s.score, s.attribute))
        return scores


class ChiSquareSelector(FeatureSelector):
    """Chi-square statistic with respect to the pivot classes."""

    def score_table(self, table: np.ndarray) -> Tuple[float, float]:
        result = chi_square_test(table)
        return result.statistic, result.p_value


def _entropy(p: np.ndarray) -> float:
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


def _mutual_information(table: np.ndarray) -> Tuple[float, float, float]:
    """(MI, H(class), H(value)) in bits from a contingency table."""
    total = table.sum()
    if total == 0:
        return 0.0, 0.0, 0.0
    joint = table / total
    pc = joint.sum(axis=1)
    pv = joint.sum(axis=0)
    h_c = _entropy(pc)
    h_v = _entropy(pv)
    h_joint = _entropy(joint.ravel())
    mi = max(0.0, h_c + h_v - h_joint)
    return mi, h_c, h_v


class MutualInformationSelector(FeatureSelector):
    """Information gain I(pivot; attribute).

    The p-value uses the G-test equivalence ``G = 2 * N * ln(2) * MI``
    which is asymptotically chi-square distributed.
    """

    def score_table(self, table: np.ndarray) -> Tuple[float, float]:
        table = np.asarray(table, dtype=float)
        live = table[table.sum(axis=1) > 0][:, table.sum(axis=0) > 0]
        if live.shape[0] < 2 or live.shape[1] < 2:
            return 0.0, 1.0
        mi, _, _ = _mutual_information(live)
        n = live.sum()
        g = 2.0 * n * np.log(2.0) * mi
        df = (live.shape[0] - 1) * (live.shape[1] - 1)
        return mi, chi2_sf(g, df)


class SymmetricUncertaintySelector(FeatureSelector):
    """SU = 2 * MI / (H(class) + H(value)), in [0, 1]."""

    def score_table(self, table: np.ndarray) -> Tuple[float, float]:
        table = np.asarray(table, dtype=float)
        live = table[table.sum(axis=1) > 0][:, table.sum(axis=0) > 0]
        if live.shape[0] < 2 or live.shape[1] < 2:
            return 0.0, 1.0
        mi, h_c, h_v = _mutual_information(live)
        if h_c + h_v == 0:
            return 0.0, 1.0
        su = 2.0 * mi / (h_c + h_v)
        n = live.sum()
        g = 2.0 * n * np.log(2.0) * mi
        df = (live.shape[0] - 1) * (live.shape[1] - 1)
        return su, chi2_sf(g, df)


def select_compare_attributes(
    view: DiscretizedView,
    pivot: str,
    pinned: Sequence[str] = (),
    limit: int = 5,
    alpha: float = 0.05,
    selector: Optional[FeatureSelector] = None,
    exclude: Sequence[str] = (),
    checkpoint: Optional[Callable[[], None]] = None,
    tracer: Optional[Tracer] = None,
) -> List[str]:
    """The paper's Compare Attribute policy.

    The user's explicitly SELECTed attributes (``pinned``, the N of the
    query model) come first, in the user's order; the remaining
    ``limit - len(pinned)`` slots are filled by the selector's ranking,
    skipping attributes whose relevance misses the ``alpha`` gate
    ("all Pivot Attribute may not have c informative facets").
    """
    if limit < 1:
        raise QueryError(f"limit must be >= 1, got {limit}")
    # bounded by the handful of user-pinned names, never data-sized
    # repro-lint: ignore[RL002]
    for name in pinned:
        if name not in view:
            raise QueryError(f"pinned attribute {name!r} not in view")
    selector = selector or ChiSquareSelector()
    chosen = list(dict.fromkeys(pinned))[:limit]
    if len(chosen) < limit:
        skip = set(chosen) | {pivot} | set(exclude)
        candidates = [n for n in view.attribute_names if n not in skip]
        for fs in selector.rank(view, pivot, candidates, checkpoint, tracer):
            if len(chosen) >= limit:
                break
            if fs.relevant(alpha):
                chosen.append(fs.attribute)
    return chosen
