"""Contingency tables between a class attribute and a candidate feature.

The Compare Attribute problem (paper Problem 1.1) is multi-class feature
selection where the "classes" are the selected Pivot Attribute values.
Every selector in :mod:`repro.features.selection` starts from the
class x value contingency table built here.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import QueryError
from repro.obs import work

__all__ = ["contingency_table", "marginals"]


def contingency_table(
    class_codes: np.ndarray,
    value_codes: np.ndarray,
    n_classes: int,
    n_values: int,
) -> np.ndarray:
    """(n_classes, n_values) count matrix; rows with a ``-1`` are dropped.

    Vectorized: valid pairs are folded into a single flat index and
    counted with ``bincount``.
    """
    class_codes = np.asarray(class_codes)
    value_codes = np.asarray(value_codes)
    if class_codes.shape != value_codes.shape:
        raise QueryError("class and value code arrays differ in length")
    valid = (class_codes >= 0) & (value_codes >= 0)
    work.add("work.features.contingency_cells", n_classes * n_values)
    flat = class_codes[valid].astype(np.int64) * n_values + value_codes[valid]
    counts = np.bincount(flat, minlength=n_classes * n_values)
    return counts.reshape(n_classes, n_values).astype(np.float64)


def marginals(table: np.ndarray) -> Tuple[np.ndarray, np.ndarray, float]:
    """Row sums, column sums and grand total of a contingency table."""
    table = np.asarray(table, dtype=float)
    return table.sum(axis=1), table.sum(axis=0), float(table.sum())
