"""Chi-square statistics on contingency tables.

Implements the Pearson chi-square test of independence used by Weka's
ChiSquare attribute evaluator (the paper's choice, Sec. 3.1.1), plus
Cramér's V for a normalized effect size.  The survival function of the
chi-square distribution comes from the regularized upper incomplete
gamma function (``scipy.special.gammaincc``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaincc

from repro.errors import QueryError
from repro.features.contingency import marginals
from repro.obs import work

__all__ = ["ChiSquareResult", "chi2_sf", "chi_square_test", "cramers_v"]


def chi2_sf(x: float, df: int) -> float:
    """P(X >= x) for X ~ chi-square with ``df`` degrees of freedom.

    ``chi2.sf(x, df) == gammaincc(df / 2, x / 2)``.
    """
    if df <= 0:
        raise QueryError(f"degrees of freedom must be positive, got {df}")
    if x <= 0:
        return 1.0
    return float(gammaincc(df / 2.0, x / 2.0))


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square independence test."""

    statistic: float
    df: int
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """True when independence is rejected at level ``alpha``."""
        return self.p_value <= alpha


def chi_square_test(table: np.ndarray) -> ChiSquareResult:
    """Pearson chi-square test of independence on a contingency table.

    All-zero rows/columns are dropped first (they carry no evidence and
    would produce zero expected counts).  A table with fewer than two
    surviving rows or columns has no contrast; it returns statistic 0,
    df 1, p 1.
    """
    table = np.asarray(table, dtype=float)
    table = table[table.sum(axis=1) > 0][:, table.sum(axis=0) > 0]
    if table.shape[0] < 2 or table.shape[1] < 2:
        return ChiSquareResult(0.0, 1, 1.0)
    # cells actually scored, post-cleaning; cramers_v delegates here so
    # its cells are counted exactly once
    work.add("work.features.chi2_cells", int(table.size))
    rows, cols, total = marginals(table)
    expected = np.outer(rows, cols) / total
    stat = float(((table - expected) ** 2 / expected).sum())
    df = (table.shape[0] - 1) * (table.shape[1] - 1)
    return ChiSquareResult(stat, df, chi2_sf(stat, df))


def cramers_v(table: np.ndarray) -> float:
    """Cramér's V in [0, 1]: chi-square normalized by table size/shape."""
    table = np.asarray(table, dtype=float)
    table = table[table.sum(axis=1) > 0][:, table.sum(axis=0) > 0]
    if table.shape[0] < 2 or table.shape[1] < 2:
        return 0.0
    result = chi_square_test(table)
    total = table.sum()
    k = min(table.shape) - 1
    return float(np.sqrt(result.statistic / (total * k)))
