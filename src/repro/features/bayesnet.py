"""Tree-structured Bayesian network over discretized attributes.

The paper's related work: "a Bayesian network [15] can provide a more
accurate description of attribute interactions by giving probabilistic
dependencies between attributes.  These techniques can be used to
create CAD Views with other types of data summaries."

This module implements the classic Chow–Liu construction: the
maximum-spanning tree of the pairwise mutual-information graph is the
maximum-likelihood tree-shaped network.  The fitted tree exposes

* the learned dependency structure (:attr:`ChowLiuTree.edges`,
  :meth:`neighbors`) — an interaction map over the whole schema;
* smoothed CPTs and exact inference along the tree
  (:meth:`conditional`);
* ancestral sampling (:meth:`sample_codes`) and model log-likelihood
  (:meth:`loglik`), which tests use to verify the structure learner
  recovers the generators' dependency skeletons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.discretize.discretizer import DiscretizedView
from repro.errors import QueryError
from repro.features.contingency import contingency_table

__all__ = ["ChowLiuTree"]


def _mutual_information(joint: np.ndarray) -> float:
    total = joint.sum()
    if total == 0:
        return 0.0
    p = joint / total
    px = p.sum(axis=1, keepdims=True)
    py = p.sum(axis=0, keepdims=True)
    mask = p > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(mask, p / (px @ py), 1.0)
    return float((p[mask] * np.log2(ratio[mask])).sum())


@dataclass(frozen=True)
class _Node:
    name: str
    parent: Optional[str]
    cpt: np.ndarray  # (parent_card, card) rows sum to 1; root: (1, card)


class ChowLiuTree:
    """A fitted Chow–Liu tree.  Build with :meth:`fit`."""

    def __init__(
        self,
        nodes: Mapping[str, _Node],
        order: Sequence[str],
        edges: Sequence[Tuple[str, str, float]],
        cards: Mapping[str, int],
    ):
        self._nodes = dict(nodes)
        self.order = tuple(order)          # topological (root first)
        self.edges = tuple(edges)          # (parent, child, MI)
        self._cards = dict(cards)

    # -- construction ---------------------------------------------------

    @classmethod
    def fit(
        cls,
        view: DiscretizedView,
        attributes: Optional[Sequence[str]] = None,
        root: Optional[str] = None,
        smoothing: float = 1.0,
    ) -> "ChowLiuTree":
        """Learn the tree from a discretized view.

        ``root`` picks which attribute becomes the tree root (defaults
        to the first attribute); ``smoothing`` is the Laplace prior for
        the CPTs.
        """
        names = tuple(attributes) if attributes else view.attribute_names
        if len(names) < 2:
            raise QueryError("a tree needs at least two attributes")
        for n in names:
            if n not in view:
                raise QueryError(f"attribute {n!r} not in view")
        root = root or names[0]
        if root not in names:
            raise QueryError(f"root {root!r} not among attributes")

        cards = {n: max(1, view.ncodes(n)) for n in names}
        joints: Dict[Tuple[str, str], np.ndarray] = {}
        mi: Dict[Tuple[str, str], float] = {}
        for i, x in enumerate(names):
            for y in names[i + 1:]:
                joint = contingency_table(
                    view.codes(x), view.codes(y), cards[x], cards[y]
                )
                joints[(x, y)] = joint
                mi[(x, y)] = _mutual_information(joint)

        # maximum spanning tree via Prim's, starting from the root
        in_tree = {root}
        parent: Dict[str, str] = {}
        edge_list: List[Tuple[str, str, float]] = []
        while len(in_tree) < len(names):
            best, best_edge = -1.0, None
            for u in in_tree:
                for v in names:
                    if v in in_tree:
                        continue
                    key = (u, v) if (u, v) in mi else (v, u)
                    if mi[key] > best:
                        best, best_edge = mi[key], (u, v)
            u, v = best_edge  # type: ignore[misc]
            in_tree.add(v)
            parent[v] = u
            edge_list.append((u, v, best))

        # topological order: BFS from root
        children: Dict[str, List[str]] = {n: [] for n in names}
        for v, u in parent.items():
            children[u].append(v)
        order: List[str] = []
        frontier = [root]
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            frontier.extend(sorted(children[node]))

        # CPTs with Laplace smoothing
        nodes: Dict[str, _Node] = {}
        for name in order:
            card = cards[name]
            p = parent.get(name)
            if p is None:
                codes = view.codes(name)
                counts = np.bincount(
                    codes[codes >= 0], minlength=card
                ).astype(float)
                cpt = (counts + smoothing)
                cpt = (cpt / cpt.sum()).reshape(1, card)
            else:
                key = (p, name)
                if key in joints:
                    joint = joints[key]          # (card_p, card)
                else:
                    joint = joints[(name, p)].T  # transpose to (p, name)
                cpt = joint + smoothing
                cpt = cpt / cpt.sum(axis=1, keepdims=True)
            nodes[name] = _Node(name, p, cpt)
        return cls(nodes, order, edge_list, cards)

    # -- structure ------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attributes in the tree (topological order)."""
        return self.order

    def parent_of(self, name: str) -> Optional[str]:
        """The attribute's tree parent (None for the root)."""
        return self._node(name).parent

    def neighbors(self, name: str) -> Tuple[str, ...]:
        """Tree neighbors = the attribute's Markov blanket in a tree."""
        self._node(name)
        out = []
        for u, v, _ in self.edges:
            if u == name:
                out.append(v)
            elif v == name:
                out.append(u)
        return tuple(sorted(out))

    def edge_strength(self, a: str, b: str) -> float:
        """Mutual information of a tree edge (0 if not an edge)."""
        for u, v, w in self.edges:
            if {u, v} == {a, b}:
                return w
        return 0.0

    # -- inference --------------------------------------------------------

    def conditional(self, name: str, parent_code: Optional[int] = None) -> np.ndarray:
        """P(name | parent = parent_code), or the root marginal."""
        node = self._node(name)
        if node.parent is None:
            return node.cpt[0].copy()
        if parent_code is None:
            raise QueryError(f"{name!r} has parent {node.parent!r}: "
                             "a parent_code is required")
        if not 0 <= parent_code < node.cpt.shape[0]:
            raise QueryError(f"parent code {parent_code} out of range")
        return node.cpt[parent_code].copy()

    def loglik(self, view: DiscretizedView) -> float:
        """Total log2-likelihood of the view's rows under the tree.

        Rows with a missing value in any tree attribute are skipped.
        """
        n = len(view)
        ll = np.zeros(n)
        valid = np.ones(n, dtype=bool)
        codes = {name: view.codes(name) for name in self.order}
        for name in self.order:
            valid &= codes[name] >= 0
        for name in self.order:
            node = self._nodes[name]
            child = codes[name]
            if node.parent is None:
                probs = node.cpt[0][np.clip(child, 0, None)]
            else:
                par = codes[node.parent]
                probs = node.cpt[
                    np.clip(par, 0, None), np.clip(child, 0, None)
                ]
            with np.errstate(divide="ignore"):
                ll += np.where(valid, np.log2(probs), 0.0)
        return float(ll[valid].sum())

    def sample_codes(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> Dict[str, np.ndarray]:
        """Ancestral samples as attribute -> int32 code arrays."""
        rng = rng or np.random.default_rng(0)
        out: Dict[str, np.ndarray] = {}
        for name in self.order:
            node = self._nodes[name]
            card = self._cards[name]
            if node.parent is None:
                out[name] = rng.choice(
                    card, size=n, p=node.cpt[0]
                ).astype(np.int32)
            else:
                parent_codes = out[node.parent]
                draws = np.empty(n, dtype=np.int32)
                for pc in np.unique(parent_codes):
                    mask = parent_codes == pc
                    draws[mask] = rng.choice(
                        card, size=int(mask.sum()), p=node.cpt[pc]
                    )
                out[name] = draws
        return out

    def _node(self, name: str) -> _Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise QueryError(
                f"attribute {name!r} not in tree ({list(self.order)})"
            ) from None
