"""Functional and soft functional dependency discovery (CORDS-style).

The paper notes that "in databases, attribute interactions are often
measured in form of functional dependencies [8, 16] and referential
integrities", citing CORDS (Ilyas et al., SIGMOD 2004), which discovers
correlations and *soft* FDs from samples.  This module provides those
measures over our discretized views:

* :func:`fd_strength` — the strength of ``X -> Y``: the fraction of
  tuples whose Y value is the majority value of their X group (1.0 for
  an exact FD);
* :func:`discover_dependencies` — all pairwise soft FDs above a
  strength threshold, sampled CORDS-style for speed;
* :func:`correlation_pairs` — attribute pairs ranked by Cramér's V.

These power tests of the data generators (Model -> Make must be an
exact FD) and give CAD View users a schema-level interaction map.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.table import Table
from repro.discretize.discretizer import DiscretizedView, Discretizer
from repro.errors import QueryError
from repro.features.chi2 import cramers_v
from repro.features.contingency import contingency_table

__all__ = [
    "Dependency",
    "fd_strength",
    "discover_dependencies",
    "correlation_pairs",
]


@dataclass(frozen=True)
class Dependency:
    """A discovered (soft) functional dependency ``determinant -> dependent``."""

    determinant: str
    dependent: str
    strength: float      # in (0, 1]; 1.0 = exact FD on the data
    support: int         # tuples the measurement is based on

    @property
    def exact(self) -> bool:
        """True when the dependency holds on every measured tuple."""
        return self.strength >= 1.0 - 1e-12

    def __str__(self) -> str:
        mark = "" if self.exact else "~"
        return (
            f"{self.determinant} {mark}-> {self.dependent} "
            f"(strength {self.strength:.3f}, n={self.support})"
        )


def fd_strength(view: DiscretizedView, x: str, y: str) -> Tuple[float, int]:
    """Strength of ``x -> y`` plus its support.

    strength = (sum over x-groups of the majority y count) / n.
    Rows missing either value are ignored.  Returns (nan, 0) when no
    complete rows exist.
    """
    cx, cy = view.codes(x), view.codes(y)
    valid = (cx >= 0) & (cy >= 0)
    n = int(valid.sum())
    if n == 0:
        return float("nan"), 0
    table = contingency_table(
        cx[valid], cy[valid], view.ncodes(x), view.ncodes(y)
    )
    majority = table.max(axis=1).sum()
    return float(majority / n), n


def discover_dependencies(
    table: Table,
    threshold: float = 0.99,
    sample: Optional[int] = 5_000,
    nbins: int = 6,
    attributes: Optional[Sequence[str]] = None,
    max_determinant_card: int = 1024,
    seed: int = 0,
) -> List[Dependency]:
    """All pairwise soft FDs with strength >= ``threshold``.

    CORDS-style: measured on a uniform sample (``sample=None`` uses the
    full table).  Determinants whose domain is nearly the table size
    (keys) trivially determine everything, so attributes with more than
    ``max_determinant_card`` distinct values are skipped as determinants.
    """
    if not 0.0 < threshold <= 1.0:
        raise QueryError(f"threshold must be in (0, 1], got {threshold}")
    if sample is not None and len(table) > sample:
        table = table.sample(sample, np.random.default_rng(seed))
    names = tuple(attributes) if attributes else table.schema.names
    table.schema.require(names)
    view = Discretizer(nbins=nbins).fit(table, names)

    found: List[Dependency] = []
    for x, y in permutations(names, 2):
        if view.ncodes(x) > max_determinant_card or view.ncodes(x) <= 1:
            continue
        strength, support = fd_strength(view, x, y)
        if support and strength >= threshold:
            found.append(Dependency(x, y, strength, support))
    found.sort(key=lambda d: (-d.strength, d.determinant, d.dependent))
    return found


def correlation_pairs(
    table: Table,
    sample: Optional[int] = 5_000,
    nbins: int = 6,
    attributes: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Tuple[str, str, float]]:
    """Attribute pairs ranked by Cramér's V (strongest first).

    The CORDS correlation-discovery half: a quick interaction map of
    the whole schema, useful for choosing a Pivot Attribute.
    """
    if sample is not None and len(table) > sample:
        table = table.sample(sample, np.random.default_rng(seed))
    names = tuple(attributes) if attributes else table.schema.names
    table.schema.require(names)
    view = Discretizer(nbins=nbins).fit(table, names)
    pairs: List[Tuple[str, str, float]] = []
    for i, x in enumerate(names):
        for y in names[i + 1:]:
            cx, cy = view.codes(x), view.codes(y)
            t = contingency_table(cx, cy, view.ncodes(x), view.ncodes(y))
            pairs.append((x, y, cramers_v(t)))
    pairs.sort(key=lambda p: (-p[2], p[0], p[1]))
    return pairs
