"""Trace and metrics exporters.

Three consumers of the same :class:`~repro.obs.tracer.Span` tree:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON (the ``traceEvents`` array format), loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev;
* :func:`render_trace` — the plain-text tree printed by
  ``EXPLAIN ANALYZE`` (times, rows, counters, and robustness events
  inline);
* :func:`write_metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot as JSON.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.atomic import atomic_write_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "render_trace",
    "write_metrics",
]


def _event_args(span: Span) -> Dict[str, object]:
    args: Dict[str, object] = {}
    if span.bucket:
        args["bucket"] = span.bucket
    args.update({str(k): v for k, v in span.attrs.items()})
    args.update({str(k): v for k, v in span.counters.items()})
    if span.error:
        args["error"] = span.error
    return args


def to_chrome_trace(
    root: Span, pid: int = 1, tid: int = 1
) -> Dict[str, object]:
    """The span tree as a Chrome trace-event JSON object.

    Spans become complete (``"ph": "X"``) events; span events become
    instant (``"ph": "i"``) events.  Timestamps are microseconds
    relative to the root's start, so traces from different runs line up
    at zero when loaded side by side.
    """
    origin = root.start_s
    events: List[Dict[str, object]] = []
    for span in root.walk():
        end = span.end_s if span.end_s is not None else (
            origin + span.duration_s
        )
        events.append({
            "name": span.name,
            "cat": span.bucket or "span",
            "ph": "X",
            "ts": round((span.start_s - origin) * 1e6, 3),
            "dur": round((end - span.start_s) * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": _event_args(span),
        })
        for ev in span.events:
            events.append({
                "name": f"{ev.kind}: {ev.message}",
                "cat": ev.kind,
                "ph": "i",
                "ts": round((ev.t_s - origin) * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "s": "t",  # thread-scoped instant
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(root: Span, path: str) -> None:
    """Write :func:`to_chrome_trace` output to ``path`` atomically.

    Trace exports happen at the end of runs that may be dying (the
    crash path flushes observability artifacts); the atomic write
    guarantees a half-exported trace never shadows a good one.
    """
    atomic_write_text(
        path, json.dumps(to_chrome_trace(root), indent=1) + "\n"
    )


def _fmt_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _span_line(span: Span, show_times: bool) -> str:
    parts = [span.name]
    if span.bucket:
        parts.append(f"[{span.bucket}]")
    if show_times:
        parts.append(f"{span.duration_s * 1e3:.1f}ms")
    parts.extend(
        f"{k}={_fmt_value(v)}" for k, v in sorted(span.attrs.items())
    )
    parts.extend(
        f"{k}={_fmt_value(v)}" for k, v in sorted(span.counters.items())
    )
    if span.status != "ok":
        parts.append(f"!{span.status}" + (
            f" ({span.error})" if span.error else ""
        ))
    return "  ".join(parts)


def render_trace(
    root: Span,
    show_times: bool = True,
    max_depth: Optional[int] = None,
) -> str:
    """The span tree as indented text (the ``EXPLAIN ANALYZE`` body).

    ``show_times=False`` drops every duration, leaving only the
    structure, attributes, counters and events — byte-stable across
    runs of the same seeded build, which is what the stability tests
    compare.
    """
    lines: List[str] = []

    def emit(span: Span, label: str, body: str, depth: int) -> None:
        lines.append(label + _span_line(span, show_times))
        items: List[object] = list(span.events) + list(span.children)
        if max_depth is not None and depth >= max_depth:
            items = list(span.events)
        for idx, item in enumerate(items):
            last = idx == len(items) - 1
            connector = "`- " if last else "|- "
            extend = "   " if last else "|  "
            if isinstance(item, Span):
                emit(item, body + connector, body + extend, depth + 1)
            else:
                lines.append(body + connector + f"! {item}")

    emit(root, "", "", 0)
    return "\n".join(lines)


def write_metrics(reg: MetricsRegistry, path: str) -> None:
    """Write a registry snapshot to ``path`` as JSON, atomically."""
    atomic_write_text(
        path,
        json.dumps(reg.snapshot(), indent=1, sort_keys=True) + "\n",
    )
