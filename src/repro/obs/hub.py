"""The supervisor-side telemetry hub: cross-process span/metric merging.

Worker subprocesses cannot share the parent's :class:`Tracer` or
:class:`~repro.obs.metrics.MetricsRegistry` — each process has its own.
The telemetry plane closes that gap: workers batch their completed span
trees (wire form, :func:`~repro.obs.tracer.span_to_wire`), a cumulative
metrics snapshot, and lifecycle events into ``TELEMETRY`` frames, and
the supervisor feeds every frame into one :class:`TelemetryHub`.

The hub is deliberately loss-tolerant:

* **metrics** ship as *cumulative* snapshots, not deltas — the hub
  keeps the latest snapshot per ``(shard, incarnation)``, so a dropped
  frame is healed by the next one and a dead incarnation's last-known
  totals are retained (counts are conserved across worker deaths);
* **span trees** are bounded (``max_span_trees``): overflow is dropped
  *and counted*, never blocking ingestion;
* nothing under the hub lock does I/O (repro-lint RL009) — exporters
  copy state out under the lock and serialize outside it.

:meth:`cluster_registry` merges everything into one registry: the
supervisor's own metrics verbatim, plus each worker snapshot re-labeled
under ``proc.s<shard>.g<incarnation>.``, plus the explicit
``proc.telemetry.dropped`` counter (present even at zero — "no drops"
must be distinguishable from "not counting").

:func:`to_stitched_chrome_trace` emits the single cross-process Chrome
trace ``--trace`` writes under ``--procs``: supervisor spans keyed by
the supervisor pid, worker spans keyed by each worker's real pid, all
on one epoch-anchored timeline, linked by ``request_id`` (a worker's
``worker.request`` root carries the same id as the supervisor's
``serve.request`` span that dispatched it).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional, Tuple

from repro.obs.atomic import atomic_write_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, epoch_anchor

__all__ = [
    "TelemetryHub",
    "to_stitched_chrome_trace",
    "write_stitched_chrome_trace",
]


class TelemetryHub:
    """Merges per-worker telemetry into one cluster-wide view.

    ``metrics`` is the supervisor's own registry (merged verbatim into
    :meth:`cluster_registry`); ``max_span_trees`` / ``max_events``
    bound memory — overflow increments the drop counters instead of
    growing without limit.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        max_span_trees: int = 1024,
        max_events: int = 2048,
    ):
        self._metrics = metrics
        self._max_span_trees = max_span_trees
        self._max_events = max_events
        self._lock = threading.Lock()
        # (shard, incarnation) -> latest cumulative worker snapshot
        self._worker_metrics: Dict[Tuple[int, int], Dict[str, object]] = {}
        # (shard, incarnation) -> {"pid": ..., "dropped": ...}
        self._worker_meta: Dict[Tuple[int, int], Dict[str, object]] = {}
        # [{"shard", "incarnation", "pid", "tree"}]
        self._span_trees: List[Dict[str, object]] = []
        self._events: List[Dict[str, object]] = []
        self._frames = 0
        self._hub_span_drops = 0
        self._hub_event_drops = 0

    # -- ingestion ---------------------------------------------------------

    def ingest(
        self, shard: int, incarnation: int, payload: Dict[str, object]
    ) -> None:
        """Fold one ``TELEMETRY`` frame payload in.  Never blocks on I/O.

        Malformed fields are ignored rather than raised: a telemetry
        frame must never be able to take the supervisor down.
        """
        key = (int(shard), int(incarnation))
        pid = payload.get("pid")
        dropped = payload.get("dropped")
        metrics = payload.get("metrics")
        spans = payload.get("spans")
        events = payload.get("events")
        with self._lock:
            self._frames += 1
            meta = self._worker_meta.setdefault(
                key, {"pid": None, "dropped": 0.0}
            )
            if isinstance(pid, int):
                meta["pid"] = pid
            if isinstance(dropped, (int, float)) and dropped >= 0:
                # cumulative per incarnation: keep the max seen, frames
                # can arrive out of order around a worker death
                meta["dropped"] = max(float(meta["dropped"]),
                                      float(dropped))
            if isinstance(metrics, dict):
                self._worker_metrics[key] = metrics
            if isinstance(spans, list):
                for tree in spans:
                    if not isinstance(tree, dict):
                        continue
                    if len(self._span_trees) >= self._max_span_trees:
                        self._hub_span_drops += 1
                        continue
                    self._span_trees.append({
                        "shard": key[0],
                        "incarnation": key[1],
                        "pid": meta["pid"],
                        "tree": tree,
                    })
            if isinstance(events, list):
                for event in events:
                    if not isinstance(event, dict):
                        continue
                    if len(self._events) >= self._max_events:
                        self._hub_event_drops += 1
                        continue
                    entry = dict(event)
                    entry.setdefault("shard", key[0])
                    entry.setdefault("incarnation", key[1])
                    self._events.append(entry)

    def record_event(
        self,
        kind: str,
        shard: Optional[int] = None,
        incarnation: Optional[int] = None,
        ts: Optional[float] = None,
        **attrs,
    ) -> None:
        """A supervisor-side lifecycle event (spawn/ready/death/drain)."""
        entry: Dict[str, object] = {"kind": kind, "source": "supervisor"}
        if shard is not None:
            entry["shard"] = int(shard)
        if incarnation is not None:
            entry["incarnation"] = int(incarnation)
        if ts is not None:
            entry["ts"] = float(ts)
        entry.update(attrs)
        with self._lock:
            if len(self._events) >= self._max_events:
                self._hub_event_drops += 1
                return
            self._events.append(entry)

    # -- reading -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Frame/drop accounting, for stats snapshots and assertions."""
        with self._lock:
            worker_drops = sum(
                float(meta["dropped"])
                for meta in self._worker_meta.values()
            )
            return {
                "frames": self._frames,
                "workers_seen": len(self._worker_meta),
                "span_trees": len(self._span_trees),
                "events": len(self._events),
                "worker_drops": worker_drops,
                "hub_span_drops": self._hub_span_drops,
                "hub_event_drops": self._hub_event_drops,
                "dropped_total": (
                    worker_drops
                    + self._hub_span_drops + self._hub_event_drops
                ),
            }

    def span_trees(self) -> List[Dict[str, object]]:
        """Every shipped span tree, tagged with shard/incarnation/pid."""
        with self._lock:
            return [dict(entry) for entry in self._span_trees]

    def events(self) -> List[Dict[str, object]]:
        """Every lifecycle event (worker-shipped and supervisor-side)."""
        with self._lock:
            return [dict(entry) for entry in self._events]

    def incarnations(self) -> List[Tuple[int, int]]:
        """Every ``(shard, incarnation)`` that ever shipped telemetry."""
        with self._lock:
            return sorted(self._worker_meta)

    def cluster_registry(self) -> MetricsRegistry:
        """One registry for the whole process tree.

        Supervisor metrics merge verbatim; each worker's latest
        cumulative snapshot merges re-labeled under
        ``proc.s<shard>.g<incarnation>.``; telemetry drop totals land
        in ``proc.telemetry.dropped`` (worker-side buffer overflow) and
        ``proc.telemetry.hub_dropped`` (hub-side bounds), both present
        even when zero.
        """
        base = self._metrics.snapshot() if self._metrics is not None \
            else None
        with self._lock:
            workers = {
                key: snap for key, snap in self._worker_metrics.items()
            }
            worker_drops = sum(
                float(meta["dropped"])
                for meta in self._worker_meta.values()
            )
            hub_drops = self._hub_span_drops + self._hub_event_drops
            frames = self._frames
        reg = MetricsRegistry()
        if base is not None:
            reg.merge(base)
        for (shard, incarnation), snap in sorted(workers.items()):
            reg.merge(_relabel(snap, f"proc.s{shard}.g{incarnation}."))
        reg.counter("proc.telemetry.dropped").inc(worker_drops)
        reg.counter("proc.telemetry.hub_dropped").inc(float(hub_drops))
        reg.counter("proc.telemetry.frames_merged").inc(float(frames))
        return reg


def _relabel(
    snapshot: Dict[str, object], prefix: str
) -> Dict[str, object]:
    """A snapshot with every metric name prefixed (shard/incarnation label)."""
    out: Dict[str, object] = {}
    for section in ("counters", "gauges", "histograms"):
        values = snapshot.get(section)
        if isinstance(values, dict):
            out[section] = {
                f"{prefix}{name}": value for name, value in values.items()
            }
    return out


# -- stitched Chrome trace export ------------------------------------------


def _wire_events(
    tree: Dict[str, object],
    origin: float,
    pid: int,
    tid: int,
    out: List[Dict[str, object]],
) -> None:
    """Flatten one wire-form span tree into Chrome trace events."""
    start = float(tree.get("start_ts") or origin)
    end = float(tree.get("end_ts") or start)
    args: Dict[str, object] = {}
    bucket = tree.get("bucket")
    if bucket:
        args["bucket"] = bucket
    attrs = tree.get("attrs")
    if isinstance(attrs, dict):
        args.update(attrs)
    counters = tree.get("counters")
    if isinstance(counters, dict):
        args.update(counters)
    if tree.get("error"):
        args["error"] = tree["error"]
    out.append({
        "name": str(tree.get("name") or "span"),
        "cat": str(bucket or "span"),
        "ph": "X",
        "ts": round(max(0.0, start - origin) * 1e6, 3),
        "dur": round(max(0.0, end - start) * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "args": args,
    })
    for event in tree.get("events") or []:
        if not isinstance(event, dict):
            continue
        out.append({
            "name": f"{event.get('kind')}: {event.get('message')}",
            "cat": str(event.get("kind") or "note"),
            "ph": "i",
            "ts": round(
                max(0.0, float(event.get("ts") or start) - origin) * 1e6, 3
            ),
            "pid": pid,
            "tid": tid,
            "s": "t",
        })
    for child in tree.get("children") or []:
        if isinstance(child, dict):
            _wire_events(child, origin, pid, tid, out)


def _span_events(
    span: Span,
    anchor: float,
    origin: float,
    pid: int,
    tid: int,
    out: List[Dict[str, object]],
) -> None:
    """Flatten a live supervisor span tree onto the epoch timeline."""
    end = span.end_s if span.end_s is not None else (
        span.start_s + span.duration_s
    )
    args: Dict[str, object] = {}
    if span.bucket:
        args["bucket"] = span.bucket
    args.update({str(k): v for k, v in span.attrs.items()})
    args.update({str(k): v for k, v in span.counters.items()})
    if span.error:
        args["error"] = span.error
    out.append({
        "name": span.name,
        "cat": span.bucket or "span",
        "ph": "X",
        "ts": round(max(0.0, anchor + span.start_s - origin) * 1e6, 3),
        "dur": round(max(0.0, end - span.start_s) * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "args": args,
    })
    for ev in span.events:
        out.append({
            "name": f"{ev.kind}: {ev.message}",
            "cat": ev.kind,
            "ph": "i",
            "ts": round(max(0.0, anchor + ev.t_s - origin) * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "s": "t",
        })
    for child in span.children:
        _span_events(child, anchor, origin, pid, tid, out)


def _tree_min_ts(tree: Dict[str, object]) -> float:
    start = float(tree.get("start_ts") or float("inf"))
    for child in tree.get("children") or []:
        if isinstance(child, dict):
            start = min(start, _tree_min_ts(child))
    return start


def to_stitched_chrome_trace(
    root: Optional[Span],
    trees: List[Dict[str, object]],
    supervisor_pid: Optional[int] = None,
    anchor: Optional[float] = None,
) -> Dict[str, object]:
    """One Chrome trace across the whole process tree.

    ``root`` is the supervisor's session span tree (may be ``None`` in
    a headless merge); ``trees`` is :meth:`TelemetryHub.span_trees`.
    Every process gets its own ``pid`` lane with a ``process_name``
    metadata event; timestamps share one epoch-anchored origin, so
    worker build spans visually nest under the supervisor request spans
    that dispatched them.
    """
    if supervisor_pid is None:
        supervisor_pid = os.getpid()
    if anchor is None:
        anchor = epoch_anchor()
    origin = float("inf")
    if root is not None:
        origin = min(origin, anchor + root.start_s)
    for entry in trees:
        tree = entry.get("tree")
        if isinstance(tree, dict):
            origin = min(origin, _tree_min_ts(tree))
    if origin == float("inf"):
        origin = 0.0
    events: List[Dict[str, object]] = [{
        "name": "process_name",
        "ph": "M",
        "ts": 0,
        "pid": supervisor_pid,
        "tid": 0,
        "args": {"name": f"supervisor (pid {supervisor_pid})"},
    }]
    if root is not None:
        _span_events(root, anchor, origin, supervisor_pid, 0, events)
    named_pids = {supervisor_pid}
    for entry in trees:
        tree = entry.get("tree")
        if not isinstance(tree, dict):
            continue
        shard = int(entry.get("shard") or 0)
        incarnation = int(entry.get("incarnation") or 0)
        pid = entry.get("pid")
        if not isinstance(pid, int):
            # a worker that died before its pid reached the hub still
            # gets a stable synthetic lane
            pid = 1_000_000 + shard * 1_000 + incarnation
        if pid not in named_pids:
            named_pids.add(pid)
            events.append({
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": (
                        f"worker s{shard} g{incarnation} (pid {pid})"
                    ),
                },
            })
        _wire_events(tree, origin, pid, 0, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_stitched_chrome_trace(
    path: str,
    root: Optional[Span],
    trees: List[Dict[str, object]],
    supervisor_pid: Optional[int] = None,
    anchor: Optional[float] = None,
) -> None:
    """Write :func:`to_stitched_chrome_trace` to ``path`` atomically."""
    atomic_write_text(
        path,
        json.dumps(
            to_stitched_chrome_trace(
                root, trees, supervisor_pid=supervisor_pid, anchor=anchor
            ),
            indent=1,
        ) + "\n",
    )
