"""Deterministic work counters: a machine-independent cost model.

Wall-clock benchmarks need slack (`benchmarks/regress.py` allows 1.75x)
because CI hardware is noisy; algorithmic regressions hide inside that
slack.  Work counters close the gap: every hot kernel reports *how much
work it did* — rows scanned, predicate evaluations, contingency cells,
distance evaluations, A* expansions, similarity pairs — in units that
depend only on the data and the seed, never on the machine.  The same
statement over the same table produces byte-identical counts whether it
runs sequentially, on eight threads, or in a worker subprocess, so the
regression gate compares them with **exact equality** (no slack).

The canonical taxonomy (every counter name starts with ``work.``):

=================================  =====================================
counter                            one unit of work
=================================  =====================================
``work.query.rows_scanned``        row visited by a query-engine kernel
``work.query.predicate_evals``     row a WHERE predicate was evaluated on
``work.facets.rows_scanned``       row visited by the faceted engine
``work.features.contingency_cells``  contingency-table cell materialized
``work.features.chi2_cells``       contingency cell scored by chi-square
``work.cluster.distance_evals``    point-center distance (or mismatch
                                   count for k-modes) evaluated
``work.cluster.iterations``        clustering iteration completed
``work.cluster.reseeds``           empty cluster reseeded
``work.diversify.astar_expanded``  A* node popped from the frontier
``work.diversify.similarity_pairs``  IUnit pair similarity computed
=================================  =====================================

Kernels call the module-level :func:`add`; one call fans out three ways:

* the **context accumulator** (a :class:`contextvars.ContextVar`, so
  concurrent executor threads are isolated) — installed per statement
  by ``DBExplorer.execute`` via :func:`track`, it becomes the
  per-statement ``work`` field in the worklog, replay reports, and
  BENCH payloads.  This is the byte-identity surface.
* the statement's **tracer span** (innermost open span of the tracer
  :func:`attach`-ed to the context), giving the per-phase rollup that
  ``EXPLAIN ANALYZE`` renders;
* the process-wide **metrics registry**, so workers ship cumulative
  work totals to the supervisor over the existing TELEMETRY frame and
  ``repro stats`` can render cluster-wide work.  Registry totals are
  cumulative across retries and are *informational*; the exact-equality
  gate reads the per-statement context counts, which always reflect the
  final attempt only.

Counting is always on: the counters are the cost model, and a handful
of integer adds per kernel call is noise next to the kernels themselves.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Dict, Iterator, Optional

from .metrics import registry

__all__ = [
    "WORK_COUNTERS",
    "WorkCounters",
    "add",
    "attach",
    "current",
    "track",
]

#: The canonical counter names, in render order.  ``add`` accepts only
#: these — an unknown name is a programming error, caught loudly so the
#: taxonomy cannot drift back into per-engine ad-hoc names.
WORK_COUNTERS = (
    "work.query.rows_scanned",
    "work.query.predicate_evals",
    "work.facets.rows_scanned",
    "work.features.contingency_cells",
    "work.features.chi2_cells",
    "work.cluster.distance_evals",
    "work.cluster.iterations",
    "work.cluster.reseeds",
    "work.diversify.astar_expanded",
    "work.diversify.similarity_pairs",
)

_KNOWN = frozenset(WORK_COUNTERS)


class WorkCounters:
    """Per-statement accumulator of deterministic work counts.

    Holds integer counts keyed by taxonomy name, plus the tracer whose
    current span receives the same increments (for per-phase rollup).
    Instances are confined to one statement on one thread via the
    context variable, so no locking is needed.
    """

    __slots__ = ("counts", "tracer")

    def __init__(self, tracer=None):
        self.counts: Dict[str, int] = {}
        self.tracer = tracer

    def add(self, name: str, n: int = 1) -> None:
        """Accumulate ``n`` units against ``name`` (no validation here;
        the module-level :func:`add` already vetted the name)."""
        self.counts[name] = self.counts.get(name, 0) + n

    def total(self) -> int:
        """Sum of all counts — a single scalar 'how much work' figure."""
        return sum(self.counts.values())

    def as_dict(self) -> Dict[str, int]:
        """Counts in taxonomy order — the serialized ``work`` payload."""
        return {
            name: self.counts[name]
            for name in WORK_COUNTERS
            if name in self.counts
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WorkCounters({self.as_dict()!r})"


_current: contextvars.ContextVar[Optional[WorkCounters]] = (
    contextvars.ContextVar("repro_work_counters", default=None)
)


def current() -> Optional[WorkCounters]:
    """The statement accumulator installed on this context, if any."""
    return _current.get()


@contextlib.contextmanager
def track(tracer=None) -> Iterator[WorkCounters]:
    """Install a fresh accumulator for the duration of one statement.

    Executor threads each run statements inside their own context, so
    concurrent statements never share an accumulator — that is what
    makes per-statement counts identical between conc-1 and conc-N.
    """
    counters = WorkCounters(tracer)
    token = _current.set(counters)
    try:
        yield counters
    finally:
        _current.reset(token)


def attach(tracer) -> None:
    """Point the current accumulator's span rollup at ``tracer``.

    ``EXPLAIN ANALYZE`` builds under a dedicated tracer created after
    the statement context opened; attaching redirects span increments
    there while the context counts keep accumulating unchanged.
    """
    counters = _current.get()
    if counters is not None:
        counters.tracer = tracer


def add(name: str, n: int = 1) -> None:
    """Record ``n`` units of work against counter ``name``.

    Fans out to the statement context (exact, gated), the innermost
    open tracer span (per-phase rollup), and the process registry
    (cumulative, shipped over telemetry).  Outside any statement
    context — unit tests poking a kernel directly, ad-hoc scripts —
    only the registry side takes effect.
    """
    if name not in _KNOWN:
        raise ValueError(
            f"unknown work counter {name!r}; add it to "
            "repro.obs.work.WORK_COUNTERS (see DESIGN ch. 13)"
        )
    if n <= 0:
        return
    registry().counter(name).inc(n)
    counters = _current.get()
    if counters is not None:
        counters.add(name, n)
        if counters.tracer is not None:
            counters.tracer.inc(name, n)
