"""Crash-safe artifact writes: tmp file + fsync + atomic rename.

Every file artifact this repository emits for later consumption —
benchmark baselines (``BENCH_*.json``), Chrome trace exports, metrics
snapshots, the worklog's rotated-generation headers — must never be
observable half-written: a crash (or an injected ``proc.worker_crash``
taking the whole process group down) mid-``write`` would otherwise
leave a torn JSON file that poisons the next run's comparison instead
of failing it cleanly.

The cure is the standard POSIX dance, in one place instead of four:
write the full content to a sibling temp file, ``fsync`` it so the
bytes are durable before the rename, then ``os.replace`` onto the
destination — which is atomic on the same filesystem, so readers see
either the complete old file or the complete new one, never a mix.
The temp file lives in the destination's directory (same filesystem,
or the rename would silently degrade to copy+delete).
"""

from __future__ import annotations

import json
import os
from typing import Optional

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` so a crash never leaves a torn file."""
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(
        directory, f".{os.path.basename(path)}.tmp.{os.getpid()}"
    )
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        # os.replace consumed the temp file on success; anything still
        # there is debris from a failure above
        if os.path.exists(tmp):
            os.unlink(tmp)


def atomic_write_json(
    path: str, payload: object, indent: Optional[int] = 2,
    sort_keys: bool = True,
) -> None:
    """Serialize ``payload`` and write it atomically (trailing newline)."""
    atomic_write_text(
        path,
        json.dumps(payload, indent=indent, sort_keys=sort_keys,
                   default=str) + "\n",
    )
