"""The workload log: one JSONL record per executed statement.

The per-run half of ``repro/obs`` (tracer, metrics) dies with the
process; the workload log is the cross-run half.  Every statement
executed through :class:`~repro.core.explorer.DBExplorer` appends one
JSON line — statement text and kind, result-set sizes, the per-phase
timings the span tree fed into the build profile, the degradation
rungs hit, analyzer warnings, and the exit status — so a real session
can be re-run later by ``repro replay`` (see :mod:`repro.obs.replay`)
and benched against committed baselines.

Record schema (version :data:`WORKLOG_VERSION`):

``kind="session"``
    One optional header line describing the captured session: the
    dataset name, row count and seed the statements ran against, plus
    free-form attributes.  ``repro replay`` uses it to reconstruct the
    same table without extra flags.
``kind="statement"``
    One line per ``execute()`` call with ``statement`` (text),
    ``statement_kind`` (``select`` / ``create_cadview`` / ...),
    ``status`` (``ok`` / ``analysis_error`` / ``build_failed`` /
    ``budget_exhausted`` / ``parse_error`` / ``cancelled`` /
    ``rejected`` / ``error``),
    ``elapsed_ms``, ``rows_in`` / ``rows_out``, ``pivot``,
    ``phases_ms`` (the Figure-8 buckets from the span-fed build
    profile), ``degradations``, ``analysis_warnings``, ``error``,
    ``session`` (which logical session ran the statement — ``default``
    outside the serving layer) and ``work`` (the deterministic
    work-counter dict of :mod:`repro.obs.work` — machine-independent
    counts the regression gate compares with exact equality; ``None``
    when the statement ran no counted kernel).

    ``cancelled`` (the serving watchdog tripped the statement's
    :class:`~repro.robustness.CancelToken`) and ``rejected``
    (admission control refused to queue it) come from
    :mod:`repro.serve`; a single-user session never emits them.

Every record also carries ``v`` (schema version), ``seq`` (strictly
increasing per writer), ``ts`` (wall-clock epoch seconds, informative
only) and ``t_rel_s`` (monotonic seconds since the writer opened — the
field validators check for monotonicity, since the wall clock may
step).

The writer is thread-safe: ``seq`` assignment, rotation, and the file
write happen under one lock, so records from concurrent sessions never
interleave mid-line.  Rotation is size-based (``worklog.jsonl`` ->
``worklog.jsonl.1`` -> ... up to ``max_files`` rotated generations) and
*crash-safe*: each freshly rotated file starts with a copy of the
session header, written via temp file + ``fsync`` + atomic
``os.replace`` — a crash mid-rotation leaves either the old log or a
new log whose header is complete, never a torn header line.

Enable capture with the CLI's ``--worklog FILE`` flag or the
``REPRO_WORKLOG`` environment variable (the file path; unset/empty/
``0`` disables).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional

__all__ = [
    "WORKLOG_VERSION",
    "WorkLogWriter",
    "NullWorkLogWriter",
    "NO_WORKLOG",
    "iter_worklog",
    "read_worklog",
    "statement_kind",
]

WORKLOG_VERSION = 1

# Statement statuses, mirroring the CLI exit-code contract.
STATUS_OK = "ok"
STATUS_ANALYSIS = "analysis_error"
STATUS_PARSE = "parse_error"
STATUS_BUILD_FAILED = "build_failed"
STATUS_BUDGET = "budget_exhausted"
STATUS_CANCELLED = "cancelled"   # serving watchdog tripped the token
STATUS_REJECTED = "rejected"     # admission control refused to queue
STATUS_ERROR = "error"

# AST class name -> the stable statement_kind written to the log.
_KIND_BY_CLASS = {
    "SelectStatement": "select",
    "CreateCadViewStatement": "create_cadview",
    "HighlightSimilarStatement": "highlight_similar",
    "ReorderRowsStatement": "reorder_rows",
    "DescribeStatement": "describe",
    "ShowCadViewsStatement": "show_cadviews",
    "DropCadViewStatement": "drop_cadview",
    "ExplainStatement": "explain",
}


def statement_kind(stmt: Optional[object]) -> str:
    """The stable ``statement_kind`` string for a parsed statement.

    ``None`` (the statement never parsed) maps to ``"invalid"``;
    unknown statement classes map to a snake-cased class name so new
    statements degrade gracefully instead of raising mid-log.
    """
    if stmt is None:
        return "invalid"
    name = type(stmt).__name__
    kind = _KIND_BY_CLASS.get(name)
    if kind is not None:
        return kind
    out = []
    for i, ch in enumerate(name):
        if ch.isupper() and i:
            out.append("_")
        out.append(ch.lower())
    return "".join(out)


class WorkLogWriter:
    """Thread-safe, size-rotated JSONL appender for workload records.

    >>> writer = WorkLogWriter("session.worklog.jsonl")
    >>> writer.session(dataset="usedcars", rows=10_000, seed=7)
    >>> writer.statement("SELECT Make FROM data", "select", "ok", 1.2)
    >>> writer.close()

    Records flush line-by-line, so a crash loses at most the statement
    being written; ``seq`` and ``t_rel_s`` are assigned under the same
    lock as the write, keeping both strictly ordered even with several
    threads logging into one writer.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 16 * 1024 * 1024,
        max_files: int = 3,
    ):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1, got {max_files}")
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")
        self._seq = 0
        self._t0 = time.perf_counter()
        self._closed = False
        self._session_header: Optional[Dict[str, object]] = None

    @property
    def enabled(self) -> bool:
        """True when :meth:`log` actually persists records."""
        return True

    # -- writing ----------------------------------------------------------

    def log(self, record: Mapping[str, object]) -> Dict[str, object]:
        """Append one record, stamping ``v``/``seq``/``ts``/``t_rel_s``.

        Returns the full record as written (useful for tests and for
        callers that mirror the log elsewhere).
        """
        with self._lock:
            if self._closed:
                raise ValueError(f"worklog writer for {self.path!r} is closed")
            if record.get("kind") == "session":
                # remembered so every rotated generation can start with a
                # copy of the header and stay self-describing
                self._session_header = dict(record)
            rec = self._stamp(record)
            line = json.dumps(rec, sort_keys=True, default=str) + "\n"
            if self._fh.tell() + len(line) > self.max_bytes:
                # rotation may consume a seq for the re-written session
                # header, so the triggering record re-stamps afterwards
                # to keep seq strictly increasing within each file
                self._rotate()
                rec = self._stamp(record)
                line = json.dumps(rec, sort_keys=True, default=str) + "\n"
            self._fh.write(line)
            self._fh.flush()
        return rec

    def _stamp(self, record: Mapping[str, object]) -> Dict[str, object]:
        # call with self._lock held (log/_rotate): consumes the next
        # seq; the lexical check cannot see through the call boundary
        # repro-lint: ignore[RL003]
        self._seq += 1
        rec: Dict[str, object] = {
            "v": WORKLOG_VERSION,
            "seq": self._seq,
            "ts": time.time(),
            "t_rel_s": time.perf_counter() - self._t0,
        }
        rec.update(record)
        return rec

    def session(self, **attrs: object) -> Dict[str, object]:
        """Append the session-header record (dataset, rows, seed, ...)."""
        record: Dict[str, object] = {"kind": "session"}
        record.update(attrs)
        return self.log(record)

    def statement(
        self,
        statement: str,
        kind: str,
        status: str,
        elapsed_ms: float,
        rows_in: Optional[int] = None,
        rows_out: Optional[int] = None,
        pivot: Optional[str] = None,
        phases_ms: Optional[Mapping[str, float]] = None,
        degradations: Optional[List[str]] = None,
        analysis_warnings: Optional[List[str]] = None,
        error: Optional[str] = None,
        session: Optional[str] = None,
        proc: Optional[Mapping[str, object]] = None,
        work: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, object]:
        """Append one statement record (the main entry point).

        ``proc`` is the multi-process serving provenance, present only
        for statements served by :mod:`repro.serve.proc`: which shard
        and worker incarnation executed it, how many times it was
        resubmitted after a worker death (``proc_attempts``), and — for
        statements that ultimately failed because their worker kept
        dying — the crash ``cause``.

        ``work`` is the statement's deterministic work-counter dict
        (see :mod:`repro.obs.work`): machine-independent counts that
        byte-match across replays of the same session.  ``None`` when
        no counted kernel ran.
        """
        record: Dict[str, object] = {
            "kind": "statement",
            "statement": statement,
            "statement_kind": kind,
            "status": status,
            "elapsed_ms": float(elapsed_ms),
            "rows_in": rows_in,
            "rows_out": rows_out,
            "pivot": pivot,
            "phases_ms": dict(phases_ms) if phases_ms else None,
            "degradations": list(degradations or []),
            "analysis_warnings": list(analysis_warnings or []),
            "error": error,
            "session": session,
            "work": {k: int(v) for k, v in work.items()} if work else None,
        }
        if proc is not None:
            record["proc"] = dict(proc)
        return self.log(record)

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._fh.close()

    # -- rotation ---------------------------------------------------------

    def _rotate(self) -> None:
        # called only from log(), which already holds self._lock — the
        # handle swap below cannot race another writer
        # repro-lint: ignore[RL006]
        self._fh.close()
        for i in range(self.max_files - 1, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{i + 1}")
        if os.path.exists(self.path):
            os.replace(self.path, f"{self.path}.1")
        if self._session_header is not None:
            # crash-safe header for the new generation: the shared
            # tmp + fsync + os.replace path means a crash anywhere in
            # between leaves either no new file or a new file whose
            # header line is complete, never a torn one
            from repro.obs.atomic import atomic_write_text

            header = self._stamp(self._session_header)
            atomic_write_text(
                self.path,
                json.dumps(header, sort_keys=True, default=str) + "\n",
            )
        # lock held by the caller (see above); the lexical check cannot
        # see through the call boundary
        # repro-lint: ignore[RL003]
        self._fh = open(self.path, "a", encoding="utf-8")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["WorkLogWriter"]:
        """The writer requested by ``REPRO_WORKLOG``, if any.

        The variable names the log file; unset, empty or ``0`` return
        ``None`` (capture disabled).
        """
        path = (environ if environ is not None else os.environ).get(
            "REPRO_WORKLOG", ""
        ).strip()
        if not path or path == "0":
            return None
        return cls(path)

    def __enter__(self) -> "WorkLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullWorkLogWriter(WorkLogWriter):
    """A writer that records nothing — the default for un-logged runs.

    Mirrors ``NO_FAULTS`` / ``NULL_TRACER``: call sites hold a writer
    unconditionally and the null instance makes every call a no-op, so
    the hot path never branches on "is logging on?".
    """

    def __init__(self):  # noqa: D107 - no file is opened
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self._session_header: Optional[Dict[str, object]] = None

    @property
    def enabled(self) -> bool:
        """Always ``False`` — callers can skip building records."""
        return False

    def log(self, record: Mapping[str, object]) -> Dict[str, object]:
        return dict(record)

    def close(self) -> None:
        pass


NO_WORKLOG = NullWorkLogWriter()
"""A shared no-op writer: logging to it does nothing."""


# -- reading ---------------------------------------------------------------


def iter_worklog(
    path: str,
    strict: bool = True,
    corrupt_lines: Optional[List[int]] = None,
) -> Iterator[Dict[str, object]]:
    """Yield records from a worklog file, with line-accurate errors.

    With ``strict=True`` (the default) any undecodable line raises
    ``ValueError`` naming the file and line.  With ``strict=False``
    such lines are *skipped* — a process killed mid-``write`` leaves a
    truncated trailing line, and a crash-recovery replay must not choke
    on the very record whose statement caused the crash.  Each skipped
    line's 1-based number is appended to ``corrupt_lines`` when the
    caller provides a list, so replay reports can say how much was
    dropped instead of dropping it silently.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except ValueError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: not valid JSON: {exc}"
                    ) from exc
                if corrupt_lines is not None:
                    corrupt_lines.append(lineno)
                continue
            yield record


def read_worklog(
    path: str,
    strict: bool = True,
    corrupt_lines: Optional[List[int]] = None,
) -> List[Dict[str, object]]:
    """Every record in a worklog file, in order.

    ``strict`` / ``corrupt_lines`` behave as in :func:`iter_worklog`.
    """
    return list(iter_worklog(path, strict=strict,
                             corrupt_lines=corrupt_lines))
