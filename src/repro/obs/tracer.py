"""Hierarchical span tracing for the CAD View build pipeline.

A :class:`Tracer` produces a tree of timed :class:`Span` objects — one
per pipeline phase, pivot value, clustering fit, or top-k search — each
carrying free-form attributes, per-span counters, and annotation
:class:`SpanEvent` records (degradations, incidents, retries from the
robustness layer).  The paper's Figure 8–10 accounting falls out of the
same tree: a span opened with a ``bucket`` and a ``profile`` feeds its
wall-clock duration into the legacy
:class:`~repro.core.profile.BuildProfile` bucket on close, so the trace
totals and the three-bucket profile reconcile exactly by construction.

Usage::

    tracer = Tracer("cadview.build", pivot="Make")
    with tracer.span("compare_attrs", bucket="compare_attrs",
                     profile=profile):
        tracer.inc("candidates_scored")
        ...
    tracer.finish()
    print(render_trace(tracer.root))

Spans nest per-thread (the stack is ``threading.local``), so a tracer
shared across worker threads keeps each thread's spans properly nested
under the shared root.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span", "SpanEvent", "Tracer", "NullTracer", "NULL_TRACER",
    "epoch_anchor", "span_to_wire", "set_span_listener",
]

# The profiler's hook into span open/close.  ``None`` (the default)
# costs one global read + an ``is None`` check per span — effectively
# zero overhead when profiling is off.  A listener is an object with
# ``span_opened(span)`` / ``span_closed(span)`` methods, called on the
# span's own thread, so a sampling profiler can attribute stack samples
# to whichever span each thread currently has open.
_SPAN_LISTENER = None


def set_span_listener(listener):
    """Install (or with ``None`` remove) the global span listener.

    Returns the previously installed listener so callers can restore
    it — the profiler does so on stop.
    """
    global _SPAN_LISTENER
    previous = _SPAN_LISTENER
    _SPAN_LISTENER = listener
    return previous


def epoch_anchor() -> float:
    """The offset mapping ``perf_counter`` values onto the epoch clock.

    ``Span.start_s`` is a ``perf_counter`` reading, whose origin is
    arbitrary *per process* — two processes' span timestamps cannot be
    compared directly.  ``anchor + perf_counter_value`` is an epoch
    timestamp, and ``time.time`` *is* shared across processes on one
    machine, so spans serialized with :func:`span_to_wire` from
    different processes stitch onto one timeline.
    """
    return time.time() - time.perf_counter()


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation attached to a span.

    ``kind`` names the event family (``degradation`` / ``incident`` /
    ``retry`` / ``note``); ``message`` is the human-readable detail.
    """

    kind: str
    message: str
    t_s: float  # perf_counter timestamp, same clock as Span.start_s

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


class Span:
    """One timed node in the trace tree."""

    __slots__ = (
        "name", "attrs", "counters", "events", "children",
        "start_s", "end_s", "status", "error", "bucket",
    )

    def __init__(self, name: str, bucket: Optional[str] = None, **attrs):
        self.name = name
        self.bucket = bucket
        self.attrs: Dict[str, object] = dict(attrs)
        self.counters: Dict[str, float] = {}
        self.events: List[SpanEvent] = []
        self.children: List["Span"] = []
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    # -- recording --------------------------------------------------------

    def inc(self, counter: str, n: float = 1) -> None:
        """Accumulate ``n`` into a per-span counter."""
        self.counters[counter] = self.counters.get(counter, 0.0) + n

    def set_attr(self, name: str, value: object) -> None:
        """Set (or overwrite) one span attribute."""
        self.attrs[name] = value

    def add_event(self, kind: str, message: str) -> None:
        """Attach a point-in-time annotation to this span."""
        self.events.append(SpanEvent(kind, message, time.perf_counter()))

    def close(self, error: Optional[BaseException] = None) -> None:
        """End the span; a non-``None`` error marks it failed."""
        if self.end_s is None:
            self.end_s = time.perf_counter()
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"

    # -- reading ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Wall-clock span length (up to *now* while still open)."""
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    @property
    def self_time_s(self) -> float:
        """Duration not covered by direct children (clamped at 0).

        Children opened on different threads can overlap in wall time;
        subtracting the *union* of their intervals (not the sum of
        their durations) keeps exclusive time from being double-
        subtracted when two children cover the same instant.
        """
        now = time.perf_counter()
        intervals = sorted(
            (c.start_s, c.end_s if c.end_s is not None else now)
            for c in self.children
        )
        covered = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in intervals:
            if cur_start is None or start > cur_end:
                if cur_start is not None:
                    covered += cur_end - cur_start
                cur_start, cur_end = start, end
            elif end > cur_end:
                cur_end = end
        if cur_start is not None:
            covered += cur_end - cur_start
        return max(0.0, self.duration_s - covered)

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span in this subtree named ``name``."""
        return [s for s in self.walk() if s.name == name]

    def total_counter(self, counter: str) -> float:
        """Sum of one counter over the whole subtree."""
        return sum(s.counters.get(counter, 0.0) for s in self.walk())

    def bucket_total(self, bucket: str) -> float:
        """Total duration of subtree spans tagged with ``bucket``.

        Only outermost tagged spans count (a tagged span's time is
        wholly attributed to its own bucket, children included),
        mirroring how the legacy profile buckets were accumulated at
        phase boundaries.
        """
        if self.bucket == bucket:
            return self.duration_s
        if self.bucket is not None:
            return 0.0
        return sum(c.bucket_total(bucket) for c in self.children)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly recursive dump of this subtree."""
        return {
            "name": self.name,
            "bucket": self.bucket,
            "status": self.status,
            "error": self.error,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "events": [
                {"kind": e.kind, "message": e.message} for e in self.events
            ],
            "children": [c.as_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        state = "open" if not self.closed else self.status
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.1f}ms, {state}, "
            f"{len(self.children)} child(ren))"
        )


def span_to_wire(span: Span, anchor: Optional[float] = None) -> Dict[str, object]:
    """One span subtree as a JSON-able dict with *epoch* timestamps.

    This is the cross-process serialization the telemetry plane ships:
    unlike :meth:`Span.as_dict` (durations only), the wire form carries
    absolute ``start_ts``/``end_ts`` seconds-since-epoch, so a
    supervisor can stitch worker spans onto its own timeline.  Attr
    values are stringified unless already JSON-scalar, matching the
    frame codec's ``default=str`` behavior.
    """
    if anchor is None:
        anchor = epoch_anchor()
    end = span.end_s if span.end_s is not None else (
        span.start_s + span.duration_s
    )
    return {
        "name": span.name,
        "bucket": span.bucket,
        "status": span.status,
        "error": span.error,
        "start_ts": anchor + span.start_s,
        "end_ts": anchor + end,
        "attrs": {
            str(k): (v if isinstance(v, (int, float, str, bool, type(None)))
                     else str(v))
            for k, v in span.attrs.items()
        },
        "counters": dict(span.counters),
        "events": [
            {"kind": e.kind, "message": e.message, "ts": anchor + e.t_s}
            for e in span.events
        ],
        "children": [span_to_wire(c, anchor) for c in span.children],
    }


class Tracer:
    """Builds one span tree; the context-manager entry point.

    The tracer opens an implicit *root* span at construction so that
    top-level phases always have a parent; call :meth:`finish` to close
    it (exporters tolerate a still-open root).  The span stack is
    per-thread; the root is shared.
    """

    def __init__(self, name: str = "trace", **attrs):
        self.root = Span(name, **attrs)
        self._local = threading.local()

    # -- stack ------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current(self) -> Span:
        """The innermost open span on this thread (the root if none)."""
        stack = self._stack()
        return stack[-1] if stack else self.root

    # -- recording --------------------------------------------------------

    @contextmanager
    def span(
        self,
        name: str,
        bucket: Optional[str] = None,
        profile=None,
        **attrs,
    ) -> Iterator[Span]:
        """Open a child span of the current span for the with-block.

        ``bucket`` tags the span with one of the paper's Figure-8
        buckets (``compare_attrs`` / ``iunits`` / ``others``); when a
        ``profile`` (:class:`~repro.core.profile.BuildProfile`) is also
        given, the span's duration is recorded into that bucket on
        close — including when the block raises, matching the legacy
        ``profile.timed`` semantics.
        """
        parent = self.current
        child = Span(name, bucket=bucket, **attrs)
        parent.children.append(child)
        stack = self._stack()
        stack.append(child)
        listener = _SPAN_LISTENER
        if listener is not None:
            listener.span_opened(child)
        error: Optional[BaseException] = None
        try:
            yield child
        except BaseException as exc:
            error = exc
            raise
        finally:
            stack.pop()
            child.close(error)
            # re-read: the profiler may have stopped mid-span, and the
            # close must go to whichever listener saw the open (a fresh
            # listener tolerates unmatched closes)
            listener = _SPAN_LISTENER
            if listener is not None:
                listener.span_closed(child)
            if profile is not None and bucket is not None:
                profile.record(bucket, child.duration_s)

    def inc(self, counter: str, n: float = 1) -> None:
        """Increment a counter on the current span."""
        self.current.inc(counter, n)

    def annotate(self, kind: str, message: str) -> None:
        """Attach an event to the current span."""
        self.current.add_event(kind, message)

    def finish(self) -> Span:
        """Close the root span (idempotent) and return it."""
        self.root.close()
        return self.root


class _NullSpan(Span):
    """A shared, inert span: all recording is a no-op."""

    def inc(self, counter: str, n: float = 1) -> None:
        pass

    def set_attr(self, name: str, value: object) -> None:
        pass

    def add_event(self, kind: str, message: str) -> None:
        pass


class NullTracer(Tracer):
    """A tracer that records nothing — the default for un-traced calls.

    Call sites write ``tracer = tracer or NULL_TRACER`` and then trace
    unconditionally; the null instance never accumulates state, so it is
    safe to share process-wide.
    """

    def __init__(self):
        super().__init__("null")
        self._null = _NullSpan("null")

    @contextmanager
    def span(self, name, bucket=None, profile=None, **attrs):
        # keep the profile-feeding contract: legacy buckets must fill
        # even when nobody asked for a trace
        if profile is not None and bucket is not None:
            start = time.perf_counter()
            try:
                yield self._null
            finally:
                profile.record(bucket, time.perf_counter() - start)
        else:
            yield self._null

    @property
    def current(self) -> Span:
        """Always the shared inert span."""
        return self._null

    def inc(self, counter: str, n: float = 1) -> None:
        pass

    def annotate(self, kind: str, message: str) -> None:
        pass


NULL_TRACER = NullTracer()
