"""Declarative latency / error-rate objectives with burn accounting.

An SLO spec is a comma-separated list of objectives::

    view:p95_ms<=500,explain:p99_ms<=1000,*:error_rate<=0.01

Each objective is ``<kind>:<metric><=<value>`` where ``kind`` is a
statement kind (``view``, ``explain``, ``select``, ...) or ``*`` for
all statements, and ``metric`` is one of:

========== =====================================================
metric     meaning
========== =====================================================
p50_ms     50th percentile latency, milliseconds
p95_ms     95th percentile latency, milliseconds
p99_ms     99th percentile latency, milliseconds
mean_ms    mean latency, milliseconds
error_rate fraction of statements not ``ok``/``degraded``
           (only valid for kind ``*``)
========== =====================================================

Objectives evaluate against a :meth:`MetricsRegistry.snapshot` dict —
live (serve exit, replay report) or from a JSON file (``repro stats``),
so CI can gate on a snapshot artifact without re-running the workload.

**Burn accounting.**  A percentile objective ``pNN <= T`` implicitly
allows a ``1 - NN/100`` fraction of statements above ``T``; the *burn
rate* is the observed violating fraction divided by that error budget.
Burn 1.0 means the budget is exactly spent; above 1.0 the objective is
failing; e.g. burn 4.0 means violations are arriving 4x faster than the
budget allows.  Violations are counted from histogram buckets whose
*lower* bound already exceeds the threshold (a conservative
undercount: the bucket straddling the threshold is not charged).
``mean_ms`` and ``error_rate`` objectives burn as ``observed /
threshold``.  This mirrors how multi-window burn alerts are specified
in SRE practice, collapsed to the single window a replay/stress run is.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import hist_mean, hist_quantile

__all__ = [
    "SLOError",
    "SLObjective",
    "SLOResult",
    "SLOReport",
    "parse_slos",
    "evaluate_slos",
]

_METRICS = ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "error_rate")
_QUANTILE_BY_METRIC = {"p50_ms": 0.50, "p95_ms": 0.95, "p99_ms": 0.99}
_SPEC_RE = re.compile(
    r"^(?P<kind>[A-Za-z_*][A-Za-z0-9_]*|\*)\s*:\s*"
    r"(?P<metric>[a-z0-9_]+)\s*<=\s*(?P<value>[0-9.]+)$"
)

# statement statuses that do not count against the error budget
_OK_STATUSES = frozenset({"ok", "degraded"})


class SLOError(ReproError):
    """A malformed SLO spec string."""


@dataclass(frozen=True)
class SLObjective:
    """One parsed objective: ``kind:metric<=threshold``."""

    kind: str       # statement kind, or "*" for all
    metric: str     # one of _METRICS
    threshold: float

    def __str__(self) -> str:
        value = (
            f"{self.threshold:g}" if self.metric != "error_rate"
            else f"{self.threshold:g}"
        )
        return f"{self.kind}:{self.metric}<={value}"


def parse_slos(spec: str) -> List[SLObjective]:
    """Parse a comma-separated SLO spec string.

    Raises :class:`SLOError` on malformed objectives, unknown metrics,
    or ``error_rate`` scoped to a specific kind (error budgets are
    tracked per status, not per kind — scope it ``*``).
    """
    objectives: List[SLObjective] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        m = _SPEC_RE.match(part)
        if m is None:
            raise SLOError(
                f"bad SLO objective {part!r} "
                f"(want <kind>:<metric><=<value>, e.g. view:p95_ms<=500)"
            )
        kind, metric = m.group("kind"), m.group("metric")
        if metric not in _METRICS:
            raise SLOError(
                f"unknown SLO metric {metric!r} in {part!r} "
                f"(one of {', '.join(_METRICS)})"
            )
        if metric == "error_rate" and kind != "*":
            raise SLOError(
                f"error_rate objectives must be scoped '*', got {part!r}"
            )
        try:
            threshold = float(m.group("value"))
        except ValueError as exc:  # pragma: no cover - regex precludes
            raise SLOError(f"bad threshold in {part!r}") from exc
        if threshold <= 0:
            raise SLOError(f"threshold must be positive in {part!r}")
        objectives.append(SLObjective(kind, metric, threshold))
    if not objectives:
        raise SLOError(f"empty SLO spec {spec!r}")
    return objectives


@dataclass
class SLOResult:
    """One objective's evaluation against a snapshot."""

    objective: SLObjective
    observed: Optional[float]   # None when no samples matched the kind
    ok: bool
    burn: Optional[float]       # budget burn rate (None when no samples)
    samples: int                # observations the objective judged

    def line(self) -> str:
        """One human-readable result line for the SLO report."""
        status = "PASS" if self.ok else "FAIL"
        if self.observed is None:
            return f"  SKIP {self.objective}  (no samples)"
        obs = (
            f"{self.observed:.4f}" if self.objective.metric == "error_rate"
            else f"{self.observed:.1f}"
        )
        burn = f"{self.burn:.2f}" if self.burn is not None else "-"
        return (
            f"  {status} {self.objective}  observed={obs} "
            f"burn={burn} samples={self.samples}"
        )


@dataclass
class SLOReport:
    """Every objective's result, plus the overall verdict."""

    results: List[SLOResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no evaluated objective failed (skips don't fail)."""
        return all(r.ok for r in self.results)

    @property
    def evaluated(self) -> int:
        """How many objectives had samples to judge (non-skipped)."""
        return sum(1 for r in self.results if r.observed is not None)

    def render(self) -> str:
        """The full multi-line report: verdict plus one line per objective."""
        lines = ["SLO check: " + ("PASS" if self.ok else "FAIL")]
        lines.extend(r.line() for r in self.results)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-serialisable form of the report for machine consumers."""
        return {
            "ok": self.ok,
            "objectives": [
                {
                    "objective": str(r.objective),
                    "kind": r.objective.kind,
                    "metric": r.objective.metric,
                    "threshold": r.objective.threshold,
                    "observed": r.observed,
                    "ok": r.ok,
                    "burn": r.burn,
                    "samples": r.samples,
                }
                for r in self.results
            ],
        }


def _violating_fraction(
    dump: Dict[str, object], threshold_s: float
) -> Tuple[float, int]:
    """(fraction of observations above threshold, total count).

    Counts only buckets whose *lower* bound is at or above the
    threshold — conservative, since the straddling bucket may hold
    observations on either side.
    """
    count = int(dump.get("count") or 0)
    if count == 0:
        return 0.0, 0
    bounds = [float(b) for b in dump.get("bounds") or ()]
    counts = [int(c) for c in dump.get("counts") or ()]
    violating = 0
    for idx, c in enumerate(counts):
        if idx >= len(bounds):
            violating += c  # overflow bucket: unbounded above, charge it
        elif idx > 0 and bounds[idx - 1] >= threshold_s:
            violating += c
    return violating / count, count


def _collect_latency(
    snapshot: Dict[str, object], prefix: str, kind: str
) -> Optional[Dict[str, object]]:
    """The merged histogram dump for ``kind`` (or all kinds for '*')."""
    hists = snapshot.get("histograms") or {}
    if kind != "*":
        return hists.get(f"{prefix}{kind}")
    merged: Optional[Dict[str, object]] = None
    for name, dump in hists.items():
        if not name.startswith(prefix):
            continue
        if merged is None:
            merged = {
                "bounds": list(dump.get("bounds") or ()),
                "counts": [int(c) for c in dump.get("counts") or ()],
                "sum": float(dump.get("sum") or 0.0),
                "count": int(dump.get("count") or 0),
            }
        elif list(dump.get("bounds") or ()) == merged["bounds"]:
            merged["counts"] = [
                a + int(b)
                for a, b in zip(merged["counts"], dump.get("counts") or ())
            ]
            merged["sum"] += float(dump.get("sum") or 0.0)
            merged["count"] += int(dump.get("count") or 0)
    return merged


def evaluate_slos(
    objectives: List[SLObjective],
    snapshot: Dict[str, object],
    latency_prefix: str = "serve.latency.",
    status_prefix: str = "serve.statements.",
) -> SLOReport:
    """Evaluate every objective against one metrics snapshot.

    ``latency_prefix`` names the per-kind latency histograms (seconds)
    and ``status_prefix`` the per-status statement counters — pass the
    ``replay.*`` prefixes to evaluate a sequential-replay snapshot.
    """
    report = SLOReport()
    for objective in objectives:
        if objective.metric == "error_rate":
            counters = snapshot.get("counters") or {}
            total = 0.0
            bad = 0.0
            for name, value in counters.items():
                if not name.startswith(status_prefix):
                    continue
                status = name[len(status_prefix):]
                total += float(value)
                if status not in _OK_STATUSES:
                    bad += float(value)
            if total == 0:
                report.results.append(SLOResult(
                    objective, None, True, None, 0
                ))
                continue
            rate = bad / total
            report.results.append(SLOResult(
                objective,
                rate,
                rate <= objective.threshold,
                rate / objective.threshold,
                int(total),
            ))
            continue
        dump = _collect_latency(snapshot, latency_prefix, objective.kind)
        if dump is None or not int(dump.get("count") or 0):
            report.results.append(SLOResult(objective, None, True, None, 0))
            continue
        threshold_s = objective.threshold / 1e3
        if objective.metric == "mean_ms":
            observed_ms = hist_mean(dump) * 1e3
            report.results.append(SLOResult(
                objective,
                observed_ms,
                observed_ms <= objective.threshold,
                observed_ms / objective.threshold,
                int(dump.get("count") or 0),
            ))
            continue
        q = _QUANTILE_BY_METRIC[objective.metric]
        observed_s = hist_quantile(dump, q)
        observed_ms = (
            observed_s * 1e3 if observed_s != float("inf") else float("inf")
        )
        allowed = 1.0 - q  # the objective's implicit error budget
        violating, count = _violating_fraction(dump, threshold_s)
        burn = (violating / allowed) if allowed > 0 else 0.0
        report.results.append(SLOResult(
            objective,
            observed_ms,
            observed_ms <= objective.threshold,
            burn,
            count,
        ))
    return report
