"""Replay a captured workload log and report its latency distribution.

``repro replay <worklog>`` re-executes every statement of a session
captured by :mod:`repro.obs.worklog` against a freshly loaded table —
optionally under a build budget or a fault plan — and prints the
numbers an interactive system is judged on: p50/p95/p99 latency per
statement kind, throughput, degradation and failure counts.

The percentiles come from :class:`~repro.obs.metrics.MetricsRegistry`
histograms (``replay.latency.<kind>``), so a replay embedded in a
bigger process merges into its metrics like any other workload, and
two replays merge by plain snapshot addition.  Bucket-bound quantiles
are deliberately coarse: they are byte-stable across runs whose
latencies stay in the same bucket, which is exactly what the benchmark
regression gate wants to compare.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids core<->obs cycle
    from repro.core.explorer import DBExplorer

__all__ = ["ReplayReport", "replay"]


@dataclass
class ReplayReport:
    """Everything one replay run measured."""

    statements: int = 0
    errors: int = 0
    skipped: int = 0
    corrupt_lines: int = 0
    wall_s: float = 0.0
    degradations: int = 0
    by_kind: Dict[str, Dict[str, float]] = field(default_factory=dict)
    statuses: Dict[str, int] = field(default_factory=dict)
    phase_totals_ms: Dict[str, float] = field(default_factory=dict)
    # deterministic work counters (repro.obs.work): totals over the
    # whole replay and per statement kind — exact integers, compared
    # with equality (not slack) by the regression gate
    work_totals: Dict[str, int] = field(default_factory=dict)
    work_by_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)
    captured_by_shard: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )
    registry: Optional[MetricsRegistry] = None

    @property
    def throughput_stmt_s(self) -> float:
        """Statements replayed per wall-clock second."""
        return self.statements / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly dump (what the workload bench emits)."""
        return {
            "statements": self.statements,
            "errors": self.errors,
            "skipped": self.skipped,
            "corrupt_lines": self.corrupt_lines,
            "wall_s": self.wall_s,
            "throughput_stmt_s": self.throughput_stmt_s,
            "degradations": self.degradations,
            "statuses": dict(sorted(self.statuses.items())),
            "by_kind": {
                kind: dict(stats)
                for kind, stats in sorted(self.by_kind.items())
            },
            "phase_totals_ms": dict(sorted(self.phase_totals_ms.items())),
            "captured_by_shard": {
                shard: dict(stats)
                for shard, stats in sorted(self.captured_by_shard.items())
            },
            "work": {
                "totals": dict(sorted(self.work_totals.items())),
                "by_kind": {
                    kind: dict(sorted(counts.items()))
                    for kind, counts in sorted(self.work_by_kind.items())
                },
            },
        }

    def render(self) -> str:
        """The human-readable latency report printed by ``repro replay``."""
        lines = [
            f"== replay: {self.statements} statement(s) in "
            f"{self.wall_s:.2f}s ({self.throughput_stmt_s:.1f} stmt/s, "
            f"{self.errors} error(s), {self.skipped} skipped) =="
        ]
        if self.corrupt_lines:
            lines.append(
                f"warning: {self.corrupt_lines} corrupt worklog line(s) "
                "skipped (rerun with --strict to fail on them)"
            )
        header = (
            f"{'kind':<18} {'count':>5} {'errors':>6} "
            f"{'p50':>10} {'p95':>10} {'p99':>10} {'mean':>10}"
        )
        lines.append(header)
        for kind, stats in sorted(self.by_kind.items()):
            lines.append(
                f"{kind:<18} {int(stats['count']):>5} "
                f"{int(stats['errors']):>6} "
                f"{_fmt_ms(stats['p50_ms']):>10} "
                f"{_fmt_ms(stats['p95_ms']):>10} "
                f"{_fmt_ms(stats['p99_ms']):>10} "
                f"{_fmt_ms(stats['mean_ms']):>10}"
            )
        status_text = "  ".join(
            f"{status}={count}"
            for status, count in sorted(self.statuses.items())
        )
        lines.append(
            f"degradations: {self.degradations}  statuses: "
            f"{status_text or '(none)'}"
        )
        if self.work_totals:
            lines.append("work counters (deterministic, exact-gated):")
            per_kind = {
                name: "  ".join(
                    f"{kind}={counts[name]}"
                    for kind, counts in sorted(self.work_by_kind.items())
                    if name in counts
                )
                for name in self.work_totals
            }
            for name, total in sorted(self.work_totals.items()):
                lines.append(f"  {name} = {total}  [{per_kind[name]}]")
        if self.captured_by_shard:
            lines.append(
                "captured per-shard latency (from the log's --procs run):"
            )
            lines.append(
                f"{'shard':<18} {'count':>5} {'deaths':>6} "
                f"{'p50':>10} {'p95':>10} {'p99':>10} {'mean':>10}"
            )
            for shard, stats in sorted(self.captured_by_shard.items()):
                lines.append(
                    f"{shard:<18} {int(stats['count']):>5} "
                    f"{int(stats.get('proc_attempts', 0)):>6} "
                    f"{_fmt_ms(stats['p50_ms']):>10} "
                    f"{_fmt_ms(stats['p95_ms']):>10} "
                    f"{_fmt_ms(stats['p99_ms']):>10} "
                    f"{_fmt_ms(stats['mean_ms']):>10}"
                )
        return "\n".join(lines)


def _fmt_ms(value: float) -> str:
    if value == float("inf"):
        return ">10s"
    return f"{value:.1f} ms"


def replay(
    records: Iterable[Dict[str, object]],
    dbx: "DBExplorer",
    registry: Optional[MetricsRegistry] = None,
) -> ReplayReport:
    """Re-execute the statements of a workload log through ``dbx``.

    ``records`` is the output of
    :func:`~repro.obs.worklog.read_worklog`; session headers and
    malformed records are skipped (counted in ``report.skipped``).
    Per-statement failures are measured and counted, never raised — an
    exploratory session legitimately contains statements the analyzer
    rejects, and a degraded replay (tight ``--budget-ms``) is exactly
    the scenario worth reporting on.

    Latencies land in ``registry`` (a fresh private
    :class:`MetricsRegistry` when not given) as
    ``replay.latency.<statement_kind>`` histograms; degradation rungs
    hit during the replay are counted from each build's report.
    """
    reg = registry if registry is not None else MetricsRegistry()
    report = ReplayReport(registry=reg)
    errors_by_kind: Dict[str, int] = {}
    # the log's own elapsed_ms per shard, for records stamped with
    # proc={shard, incarnation, ...} by a --procs run — this reports the
    # *captured* run's per-shard behavior, not this replay's
    shard_samples: Dict[str, List[float]] = {}
    shard_attempts: Dict[str, int] = {}
    t0 = time.perf_counter()
    for record in records:
        if record.get("kind") != "statement":
            if record.get("kind") != "session":
                report.skipped += 1
            continue
        sql = record.get("statement")
        if not isinstance(sql, str) or not sql.strip():
            report.skipped += 1
            continue
        proc = record.get("proc")
        if isinstance(proc, dict) and proc.get("shard") is not None:
            key = f"s{proc['shard']}"
            captured_ms = record.get("elapsed_ms")
            if isinstance(captured_ms, (int, float)):
                shard_samples.setdefault(key, []).append(
                    float(captured_ms)
                )
            shard_attempts[key] = (
                shard_attempts.get(key, 0)
                + int(proc.get("proc_attempts") or 0)
            )
        report_before = dbx.last_report
        start = time.perf_counter()
        status = "ok"
        try:
            dbx.execute(sql)
        except ReproError as exc:
            from repro.core.explorer import _statement_status

            status = _statement_status(exc)
        elapsed = time.perf_counter() - start
        kind = str(record.get("statement_kind") or "unknown")
        executed_work = dbx.session().last_work
        if executed_work:
            kind_work = report.work_by_kind.setdefault(kind, {})
            for name, count in executed_work.items():
                report.work_totals[name] = (
                    report.work_totals.get(name, 0) + count
                )
                kind_work[name] = kind_work.get(name, 0) + count
        reg.histogram(f"replay.latency.{kind}").observe(elapsed)
        reg.counter(f"replay.statements.{status}").inc()
        report.statements += 1
        report.statuses[status] = report.statuses.get(status, 0) + 1
        if status != "ok":
            report.errors += 1
            errors_by_kind[kind] = errors_by_kind.get(kind, 0) + 1
        built = dbx.last_report
        if built is not None and built is not report_before:
            report.degradations += len(built.degradations)
            if built.profile is not None:
                for phase, seconds in (
                    ("compare_attrs", built.profile.compare_attrs_s),
                    ("iunits", built.profile.iunits_s),
                    ("others", built.profile.others_s),
                ):
                    report.phase_totals_ms[phase] = (
                        report.phase_totals_ms.get(phase, 0.0)
                        + seconds * 1e3
                    )
    report.wall_s = time.perf_counter() - t0
    for name, hist in sorted(
        reg.snapshot()["histograms"].items()
    ):
        if not name.startswith("replay.latency."):
            continue
        kind = name[len("replay.latency."):]
        live = reg.histogram(name)
        report.by_kind[kind] = {
            "count": float(live.count),
            "errors": float(errors_by_kind.get(kind, 0)),
            "p50_ms": live.quantile(0.50) * 1e3,
            "p95_ms": live.quantile(0.95) * 1e3,
            "p99_ms": live.quantile(0.99) * 1e3,
            "mean_ms": live.mean * 1e3,
        }
    for key, samples in sorted(shard_samples.items()):
        ordered = sorted(samples)
        report.captured_by_shard[key] = {
            "count": float(len(ordered)),
            "proc_attempts": float(shard_attempts.get(key, 0)),
            "p50_ms": _nearest_rank(ordered, 0.50),
            "p95_ms": _nearest_rank(ordered, 0.95),
            "p99_ms": _nearest_rank(ordered, 0.99),
            "mean_ms": sum(ordered) / len(ordered),
        }
    return report


def _nearest_rank(ordered: List[float], q: float) -> float:
    """Exact nearest-rank percentile over pre-sorted samples.

    Unlike the bucket-bound histogram quantiles above, these run over
    the log's recorded values directly — per-shard sample counts are
    small enough that exactness beats byte-stability here.
    """
    if not ordered:
        return 0.0
    rank = max(1, int(q * len(ordered) + 0.999999))
    return ordered[min(rank, len(ordered)) - 1]
