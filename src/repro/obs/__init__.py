"""Observability: span tracing, process metrics, and exporters.

The build pipeline threads a :class:`Tracer` through every phase (see
:class:`~repro.core.builder.CADViewBuilder`); the resulting span tree
backs ``EXPLAIN ANALYZE``, the CLI's ``--trace`` Chrome-trace output,
and the legacy three-bucket :class:`~repro.core.profile.BuildProfile`.
Process-wide counters/gauges/histograms live in the default
:func:`registry` and are dumped by ``--metrics``.

The cross-run half: :mod:`repro.obs.worklog` captures every executed
statement as a JSONL workload log (``--worklog`` / ``REPRO_WORKLOG``)
and :mod:`repro.obs.replay` re-executes a captured log and reports the
latency distribution per statement kind (``repro replay``).
"""

from repro.obs.export import (
    render_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    set_registry,
)
from repro.obs.replay import ReplayReport, replay
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer
from repro.obs.worklog import (
    NO_WORKLOG,
    NullWorkLogWriter,
    WORKLOG_VERSION,
    WorkLogWriter,
    iter_worklog,
    read_worklog,
    statement_kind,
)

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "SpanEvent",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "LATENCY_BUCKETS_S", "registry", "set_registry",
    "render_trace", "to_chrome_trace", "write_chrome_trace",
    "write_metrics",
    "WorkLogWriter", "NullWorkLogWriter", "NO_WORKLOG",
    "WORKLOG_VERSION", "iter_worklog", "read_worklog", "statement_kind",
    "ReplayReport", "replay",
]
