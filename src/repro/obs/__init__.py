"""Observability: span tracing, process metrics, and exporters.

The build pipeline threads a :class:`Tracer` through every phase (see
:class:`~repro.core.builder.CADViewBuilder`); the resulting span tree
backs ``EXPLAIN ANALYZE``, the CLI's ``--trace`` Chrome-trace output,
and the legacy three-bucket :class:`~repro.core.profile.BuildProfile`.
Process-wide counters/gauges/histograms live in the default
:func:`registry` and are dumped by ``--metrics``.
"""

from repro.obs.export import (
    render_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    set_registry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "SpanEvent",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "LATENCY_BUCKETS_S", "registry", "set_registry",
    "render_trace", "to_chrome_trace", "write_chrome_trace",
    "write_metrics",
]
