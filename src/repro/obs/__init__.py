"""Observability: span tracing, process metrics, and exporters.

The build pipeline threads a :class:`Tracer` through every phase (see
:class:`~repro.core.builder.CADViewBuilder`); the resulting span tree
backs ``EXPLAIN ANALYZE``, the CLI's ``--trace`` Chrome-trace output,
and the legacy three-bucket :class:`~repro.core.profile.BuildProfile`.
Process-wide counters/gauges/histograms live in the default
:func:`registry` and are dumped by ``--metrics``.

The cross-run half: :mod:`repro.obs.worklog` captures every executed
statement as a JSONL workload log (``--worklog`` / ``REPRO_WORKLOG``)
and :mod:`repro.obs.replay` re-executes a captured log and reports the
latency distribution per statement kind (``repro replay``).

The cost-model half: :mod:`repro.obs.work` accumulates deterministic
per-statement work counters (rows scanned, distance evals, A*
expansions, ...) that the regression gate compares with exact equality,
and :mod:`repro.obs.profiler` is a stdlib sampling profiler with
span-attributed collapsed-stack flamegraph export (``repro profile``).
"""

from repro.obs.export import (
    render_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.hub import (
    TelemetryHub,
    to_stitched_chrome_trace,
    write_stitched_chrome_trace,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    hist_mean,
    hist_quantile,
    registry,
    set_registry,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.replay import ReplayReport, replay
from repro.obs.slo import (
    SLObjective,
    SLOError,
    SLOReport,
    SLOResult,
    evaluate_slos,
    parse_slos,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    epoch_anchor,
    set_span_listener,
    span_to_wire,
)
from repro.obs.work import WORK_COUNTERS, WorkCounters
from repro.obs.worklog import (
    NO_WORKLOG,
    NullWorkLogWriter,
    WORKLOG_VERSION,
    WorkLogWriter,
    iter_worklog,
    read_worklog,
    statement_kind,
)

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "SpanEvent",
    "epoch_anchor", "span_to_wire", "set_span_listener",
    "WorkCounters", "WORK_COUNTERS", "SamplingProfiler",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "LATENCY_BUCKETS_S", "registry", "set_registry",
    "hist_quantile", "hist_mean",
    "render_trace", "to_chrome_trace", "write_chrome_trace",
    "write_metrics",
    "TelemetryHub", "to_stitched_chrome_trace",
    "write_stitched_chrome_trace",
    "SLObjective", "SLOError", "SLOReport", "SLOResult",
    "parse_slos", "evaluate_slos",
    "WorkLogWriter", "NullWorkLogWriter", "NO_WORKLOG",
    "WORKLOG_VERSION", "iter_worklog", "read_worklog", "statement_kind",
    "ReplayReport", "replay",
]
