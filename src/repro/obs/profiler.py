"""Stdlib sampling profiler with span attribution and flamegraphs.

Work counters (:mod:`repro.obs.work`) say *how much* the engine did;
this profiler says *where the time went*.  It is pure stdlib — a
background thread snapshots every Python thread's stack via
``sys._current_frames`` at a fixed rate, so there is nothing to
install, no interpreter patching, and no signal handling (sampling
works on worker threads, where ``signal``-based profilers cannot).

Two outputs:

* **collapsed stacks** — the ``frame;frame;frame count`` text format
  flamegraph.pl and speedscope consume (``repro profile --flamegraph``).
  Each sampled stack is prefixed with the chain of tracer spans open on
  that thread at sample time (rendered as ``span:<name>`` frames), so
  the flamegraph shows *semantic* phases (``span:kmeans`` above the
  numpy frames it spends its time in), not just file:function noise.
* **span self-time** — per span name, how many samples landed while
  that span was the innermost open one.  This is the sampled
  counterpart of :attr:`Span.self_time_s`, aggregated across every
  span instance of a run.

Span attribution rides the tracer's global listener hook
(:func:`repro.obs.tracer.set_span_listener`): the profiler maintains a
per-thread stack of open spans, updated by open/close callbacks on the
span's own thread.  When no profiler is running the hook is ``None``
and tracing pays one pointer read per span — zero-overhead off switch.

Opt-in memory accounting (``memory=True``) starts ``tracemalloc`` for
the profiled region and records the peak traced allocation per
*bucket* span (the paper's ``compare_attrs`` / ``iunits`` / ``others``
phases), resetting the peak at each bucket-span close.  Peaks are
high-water marks per phase, not exclusive attributions — nested
buckets fold into the outermost one that closes last; good enough to
answer "which phase allocates".
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, List, Optional, Tuple

from .atomic import atomic_write_text
from .tracer import set_span_listener

__all__ = ["SamplingProfiler"]

# frames deeper than this are truncated (recursive builds would
# otherwise explode the collapsed-stack key space)
_MAX_DEPTH = 64


def _frame_label(frame) -> str:
    """``file.py:function``, with the characters the collapsed format
    reserves (space = count separator, semicolon = frame separator)
    replaced so a weird filename cannot corrupt a line."""
    code = frame.f_code
    label = f"{os.path.basename(code.co_filename)}:{code.co_name}"
    return label.replace(" ", "_").replace(";", ",")


class SamplingProfiler:
    """Samples all Python threads; attributes samples to open spans.

    Use as a context manager, or call :meth:`start` / :meth:`stop`::

        with SamplingProfiler(hz=200) as prof:
            build(...)
        prof.write_collapsed("profile.collapsed")
        print(prof.self_time_report())

    Only one profiler should run at a time (the span-listener hook is
    global); starting a second one displaces the first's attribution.
    """

    def __init__(self, hz: float = 97.0, memory: bool = False):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz!r}")
        self.interval_s = 1.0 / float(hz)
        self.memory = memory
        self._samples: Dict[str, int] = {}
        self._span_samples: Dict[str, int] = {}
        self._phase_peaks: Dict[str, int] = {}
        self._sample_count = 0
        self._lock = threading.Lock()
        self._span_stacks: Dict[int, List[object]] = {}
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._prev_listener = None
        self._started_tracemalloc = False

    # -- lifecycle --------------------------------------------------------

    # the lifecycle fields below (_thread, _prev_listener,
    # _started_tracemalloc) are only touched by the controlling thread
    # in start()/stop(); self._lock protects the sample dictionaries
    # the sampler thread shares, not these

    def start(self) -> "SamplingProfiler":
        """Install the span listener and launch the sampling thread."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                # repro-lint: ignore[RL003]
                self._started_tracemalloc = True
        # repro-lint: ignore[RL003]
        self._prev_listener = set_span_listener(self)
        self._stop_event.clear()
        # repro-lint: ignore[RL003]
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling, restore the listener, join the thread."""
        if self._thread is None:
            return self
        set_span_listener(self._prev_listener)
        # repro-lint: ignore[RL003]
        self._prev_listener = None
        self._stop_event.set()
        self._thread.join()
        # repro-lint: ignore[RL003]
        self._thread = None
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            # repro-lint: ignore[RL003]
            self._started_tracemalloc = False
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- span listener (called on the span's own thread) ------------------

    def span_opened(self, span) -> None:
        """Tracer-listener callback: push ``span`` on its thread's stack."""
        tid = threading.get_ident()
        stack = self._span_stacks.get(tid)
        if stack is None:
            # plain assignment: dict item writes are atomic under the
            # GIL, and this key is only ever written by its own thread
            stack = []
            self._span_stacks[tid] = stack
        stack.append(span)

    def span_closed(self, span) -> None:
        """Tracer-listener callback: pop ``span``; record memory peaks."""
        stack = self._span_stacks.get(threading.get_ident())
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:
            # a listener installed mid-nest sees closes for opens it
            # never observed; drop through to the matching entry
            stack.remove(span)
        if self.memory and span.bucket is not None:
            import tracemalloc

            if tracemalloc.is_tracing():
                _, peak = tracemalloc.get_traced_memory()
                with self._lock:
                    self._phase_peaks[span.bucket] = max(
                        self._phase_peaks.get(span.bucket, 0), peak
                    )
                tracemalloc.reset_peak()

    # -- sampling loop ----------------------------------------------------

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            self._sample_once()

    def _sample_once(self) -> None:
        own = threading.get_ident()
        frames = sys._current_frames()
        now_stacks: List[Tuple[str, Optional[str]]] = []
        for tid, frame in frames.items():
            if tid == own:
                continue
            stack: List[str] = []
            depth = 0
            f = frame
            while f is not None and depth < _MAX_DEPTH:
                stack.append(_frame_label(f))
                f = f.f_back
                depth += 1
            stack.reverse()  # root first, the collapsed-stack order
            spans = self._span_stacks.get(tid)
            leaf: Optional[str] = None
            if spans:
                # snapshot: the owning thread may push/pop concurrently
                names = [s.name for s in tuple(spans)]
                if names:
                    leaf = names[-1]
                    stack = [f"span:{n}" for n in names] + stack
            now_stacks.append((";".join(stack), leaf))
        with self._lock:
            for key, leaf in now_stacks:
                self._samples[key] = self._samples.get(key, 0) + 1
                if leaf is not None:
                    self._span_samples[leaf] = (
                        self._span_samples.get(leaf, 0) + 1
                    )
                self._sample_count += 1

    # -- results ----------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Total thread-stack samples collected so far."""
        with self._lock:
            return self._sample_count

    def collapsed(self) -> Dict[str, int]:
        """Collapsed stacks: ``"frame;frame;..." -> sample count``."""
        with self._lock:
            return dict(self._samples)

    def write_collapsed(self, path: str) -> int:
        """Write flamegraph.pl-format collapsed stacks; returns count.

        One ``stack count`` line per distinct stack, sorted for stable
        diffs (sample *counts* are inherently nondeterministic; order
        need not be too).
        """
        samples = self.collapsed()
        lines = [
            f"{stack} {count}" for stack, count in sorted(samples.items())
        ]
        atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
        return len(lines)

    def span_self_samples(self) -> Dict[str, int]:
        """Samples per span name while it was the innermost open span."""
        with self._lock:
            return dict(self._span_samples)

    def self_time_report(self, top: int = 15) -> str:
        """Human-readable top spans by sampled self time."""
        spans = self.span_self_samples()
        total = self.sample_count
        lines = [
            f"sampling profile: {total} samples "
            f"@ {1.0 / self.interval_s:.0f} Hz "
            f"({sum(spans.values())} inside spans)"
        ]
        ranked = sorted(spans.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, count in ranked[:top]:
            est_s = count * self.interval_s
            share = 100.0 * count / total if total else 0.0
            lines.append(
                f"  {name:<28} {count:>7} samples  ~{est_s:8.3f}s "
                f"{share:5.1f}%"
            )
        if not ranked:
            lines.append("  (no samples landed inside tracer spans)")
        return "\n".join(lines)

    def phase_peak_bytes(self) -> Dict[str, int]:
        """Peak traced allocation per bucket span (``memory=True`` only)."""
        with self._lock:
            return dict(self._phase_peaks)

    def memory_report(self) -> str:
        """Human-readable per-phase peak memory (``memory=True`` only)."""
        peaks = self.phase_peak_bytes()
        if not peaks:
            return (
                "memory profile: no bucket spans closed while tracing "
                "(pass memory=True and run a traced build)"
            )
        lines = ["memory profile: peak traced bytes per phase"]
        for bucket, peak in sorted(
            peaks.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {bucket:<16} {peak / 1e6:10.2f} MB")
        return "\n".join(lines)
