"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a thread-safe, get-or-create namespace of
named metrics.  The module-level default registry (:func:`registry`)
is what the pipeline's hot paths increment — query-engine row counts,
build latencies, facet digests — and what the CLI's ``--metrics=<file>``
flag snapshots to JSON at exit.

Histograms use fixed upper-bound buckets (Prometheus-style cumulative
is deliberately *not* used; each bucket holds the count of observations
that fell into ``(prev_bound, bound]``, plus one overflow bucket), so
two snapshots merge by plain element-wise addition — see
:meth:`MetricsRegistry.merge`, which aggregates per-worker or per-run
snapshots into one.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "registry",
    "set_registry",
    "hist_quantile",
    "hist_mean",
]

# Default latency buckets (seconds): 1ms .. 10s in roughly 1-2-5 steps,
# bracketing the paper's sub-second interactivity target from both sides.
LATENCY_BUCKETS_S = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing float counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (>= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        """The current value."""
        return self._value


class Gauge:
    """A value that can move both ways (e.g. registered tables)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def add(self, n: float = 1) -> None:
        """Move the gauge by ``n`` (either direction)."""
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        """The current value."""
        return self._value


class Histogram:
    """Fixed-bucket histogram with sum/count, non-cumulative counts.

    ``counts[i]`` is the number of observations ``<= bounds[i]`` (and
    greater than the previous bound); ``counts[-1]`` is the overflow
    bucket for observations above the largest bound.
    """

    __slots__ = ("bounds", "counts", "total", "count", "_lock")

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[idx] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of every observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the q-th bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for idx, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return (
                    self.bounds[idx]
                    if idx < len(self.bounds) else float("inf")
                )
        return float("inf")


def hist_quantile(dump: Dict[str, object], q: float) -> float:
    """Approximate quantile from a *snapshot* histogram dump.

    Same bucket-upper-bound estimate as :meth:`Histogram.quantile`, but
    over the ``{"bounds", "counts", "count", ...}`` dict a
    :meth:`MetricsRegistry.snapshot` produces — so SLO evaluation and
    ``repro stats`` can work from a JSON file without reconstructing
    live metric objects.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    count = int(dump.get("count") or 0)
    if count == 0:
        return 0.0
    bounds = [float(b) for b in dump.get("bounds") or ()]
    target = q * count
    seen = 0
    for idx, c in enumerate(dump.get("counts") or ()):
        seen += int(c)
        if seen >= target:
            return bounds[idx] if idx < len(bounds) else float("inf")
    return float("inf")


def hist_mean(dump: Dict[str, object]) -> float:
    """Arithmetic mean from a snapshot histogram dump (0 when empty)."""
    count = int(dump.get("count") or 0)
    return float(dump.get("sum") or 0.0) / count if count else 0.0


class MetricsRegistry:
    """Thread-safe get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get (or lazily create) the named counter."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        """Get (or lazily create) the named gauge."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get (or lazily create) the named histogram."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    bounds if bounds is not None else LATENCY_BUCKETS_S
                )
            return metric

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly point-in-time dump of every metric."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(
                        self._counters.items()
                    )
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "bounds": list(h.bounds),
                        "counts": list(h.counts),
                        "sum": h.total,
                        "count": h.count,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` from another registry/run into this one.

        Counters and histogram buckets add; gauges take the incoming
        value (last-writer-wins, the usual gauge aggregation).
        Histograms with mismatched bucket bounds are rejected.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, dump in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, dump["bounds"])
            if list(hist.bounds) != [float(b) for b in dump["bounds"]]:
                raise ValueError(
                    f"histogram {name!r}: bucket bounds differ, "
                    f"cannot merge"
                )
            with hist._lock:
                for idx, c in enumerate(dump["counts"]):
                    hist.counts[idx] += int(c)
                hist.total += float(dump["sum"])
                hist.count += int(dump["count"])

    def clear(self) -> None:
        """Forget every metric (tests and per-run CLI isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = reg
    return previous
