"""E-F8 — Figure 8: worst-case CAD View build time vs result size.

The paper's setup: query results of 5K-40K tuples, all 11 attributes as
Compare Attributes (|I| = 11), l = 15 generated IUnits, k = 6 shown,
|V| = 5 pivot values, no optimizations; total time split into Compare
Attribute computation, IUnit generation, and "others".  Averaged over
random result subsets (the paper uses 50 simulations; we use 5 per size
to keep the bench quick — the variance is small).

Expected shape: total time grows with result size and IUnit generation
(clustering) dominates.  Deviation from the paper: our vectorized
chi-square is far cheaper than Weka's, so the Compare Attribute share
is much smaller than the paper's ~40%; see EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro import CADViewBuilder, CADViewConfig
from repro.obs import work
from repro.query import In

MAKES = ("Ford", "Chevrolet", "Toyota", "Honda", "Jeep")
SIZES = (5_000, 10_000, 20_000, 30_000, 40_000)
SIMULATIONS = 5

NAIVE = CADViewConfig(
    compare_limit=11, iunits_k=6, generated_l=15, seed=0,
)


def result_of_size(cars, n, rng):
    """A random result subset of ~n tuples over the five pivot makes."""
    pool = cars.filter(In("Make", MAKES).mask(cars))
    return pool.sample(min(n, len(pool)), rng)


def measure(cars, n, simulations=SIMULATIONS):
    rng = np.random.default_rng(42)
    buckets = np.zeros(3)
    for _ in range(simulations):
        result = result_of_size(cars, n, rng)
        cad = CADViewBuilder(NAIVE).build(
            result, pivot="Make", pivot_values=list(MAKES)
        )
        p = cad.profile
        buckets += (p.compare_attrs_s, p.iunits_s, p.others_s)
    return buckets / simulations


def test_figure8_series(cars40k, bench_emit):
    print("\n== Figure 8: worst-case CAD View build time (ms) ==")
    print(f"{'result size':>12} {'compare':>9} {'iunits':>9} "
          f"{'others':>9} {'total':>9}")
    totals = []
    series = []
    # the sweep is fully seeded, so its work counters are exact-gated
    # integers in the emitted payload (see benchmarks/regress.py)
    with work.track() as counters:
        for n in SIZES:
            ca, iu, ot = measure(cars40k, n)
            total = ca + iu + ot
            totals.append(total)
            series.append({
                "result_size": n,
                "compare_attrs_ms": ca * 1e3,
                "iunits_ms": iu * 1e3,
                "others_ms": ot * 1e3,
                "total_ms": total * 1e3,
            })
            print(f"{n:>12} {ca*1e3:>9.1f} {iu*1e3:>9.1f} "
                  f"{ot*1e3:>9.1f} {total*1e3:>9.1f}")
    bench_emit("fig8_worst_case", {
        "figure": "8",
        "simulations": SIMULATIONS,
        "phases": ["compare_attrs", "iunits", "others"],
        "series": series,
        "work": {"totals": counters.as_dict()},
    })
    # shape: monotone-ish growth; the largest size costs clearly more
    assert totals[-1] > totals[0] * 1.5
    # IUnit generation dominates the worst case in our substrate
    ca, iu, ot = measure(cars40k, SIZES[-1], simulations=2)
    assert iu > ca


def test_bench_worst_case_40k(benchmark, cars40k):
    rng = np.random.default_rng(0)
    result = result_of_size(cars40k, 40_000, rng)

    def build():
        return CADViewBuilder(NAIVE).build(
            result, pivot="Make", pivot_values=list(MAKES)
        )

    cad = benchmark(build)
    assert cad.profile.total_s > 0
