"""E-F6 / E-F7 — Figures 6 & 7: the Alternative Search Condition task.

Figure 6 reports each user's retrieval error (digest distance between
the given condition's result and the alternative's result); Figure 7
the completion time.  Paper: "TPFacet affects the users alternative
search condition by chi2(1)=3.28, p=0.07, lowering the retrieval error
by about 0.329 +/- 0.172 ... most users were able to do the task with
five times lower retrieval error", and time "chi2(1)=2.58, p=0.108,
lowering it by about 2.00 +/- 1.14 minutes" (1.5-2x).
"""

import numpy as np
import pytest

from repro.core import CADViewConfig
from repro.facets import FacetedEngine
from repro.study import TPFacetAgent, UserProfile, mushroom_task_suite

from conftest import print_user_table


def test_figure6_retrieval_error(study):
    print_user_table(
        "Figure 6: Alternative Condition retrieval error",
        study.table("alternative", "quality"),
        fmt="{:.3f}",
    )
    eff = study.analyze("alternative", "quality")
    print(f"mixed model (paper: chi2(1)=3.28, p=0.07, error -0.329): {eff}")
    assert eff.effect < 0, "TPFacet must lower retrieval error"
    solr = np.mean([m.quality for m in study.of("alternative", "Solr")])
    tp = np.mean([m.quality for m in study.of("alternative", "TPFacet")])
    assert solr / max(tp, 1e-9) > 3.0, "roughly 5x lower error expected"


def test_figure7_times(study):
    print_user_table(
        "Figure 7: Alternative Condition time (min)",
        study.table("alternative", "minutes"),
    )
    eff = study.analyze("alternative", "minutes")
    print(f"mixed model (paper: chi2(1)=2.58, p=0.108, -2.00 min): {eff}")
    print(f"speedup: {study.speedup('alternative'):.2f}x (paper: 1.5-2x)")
    assert eff.effect < 0
    assert study.speedup("alternative") > 1.2


def test_bench_tpfacet_alternative_agent(benchmark, mushroom8124):
    engine = FacetedEngine(mushroom8124)
    task = mushroom_task_suite().alternative[0]
    user = UserProfile("U1", 1, speed=1.0, diligence=0.8)

    def run():
        agent = TPFacetAgent(
            engine, user, np.random.default_rng(0), CADViewConfig(seed=1)
        )
        return agent.do_alternative(task)

    out = benchmark(run)
    task.validate(out.answer)
