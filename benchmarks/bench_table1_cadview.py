"""E-T1 — Table 1: the sample CAD View for five car makes.

Reproduces the paper's Table 1: pivot = Make, Compare Attributes led by
the pinned Price, 3 IUnits per make, over the automatic-transmission
SUVs with 10K-30K miles from the five makes Mary shortlisted.  Prints
the rendered table and benchmarks the end-to-end statement execution.
"""

import pytest

from repro import CADViewConfig, DBExplorer

STATEMENT = """
    CREATE CADVIEW CompareMakes AS
    SET pivot = Make
    SELECT Price
    FROM UsedCars
    WHERE Mileage BETWEEN 10K AND 30K AND
    Transmission = Automatic AND BodyType = SUV AND
    (Make = Jeep OR Make = Toyota OR Make = Honda OR
    Make = Ford OR Make = Chevrolet)
    LIMIT COLUMNS 5 IUNITS 3
"""


@pytest.fixture(scope="module")
def dbx(cars40k):
    d = DBExplorer(CADViewConfig(seed=1))
    d.register("UsedCars", cars40k)
    return d


def test_table1_structure_and_render(dbx):
    cad = dbx.execute(STATEMENT)
    assert set(cad.pivot_values) == {
        "Jeep", "Toyota", "Honda", "Ford", "Chevrolet",
    }
    assert len(cad.compare_attributes) == 5
    assert cad.compare_attributes[0] == "Price"
    # the paper's hidden attribute surfaces in the summary
    assert "Engine" in cad.compare_attributes or "Model" in cad.compare_attributes
    print("\n== Table 1 (reproduced) ==")
    print(dbx.render("CompareMakes", cell_width=28))
    print(f"build profile: {cad.profile}")


def test_bench_table1_build(benchmark, dbx):
    cad = benchmark(dbx.execute, STATEMENT)
    assert len(cad.all_iunits()) >= 10
