"""Validate observability artifacts produced by ``--trace``/``--metrics``.

Stdlib-only, so CI can run it without installing the package::

    python benchmarks/check_trace.py --trace trace.json --metrics metrics.json

Exit code 0 when every given file is well-formed, 1 otherwise (with the
problems printed to stderr).  The checks mirror what the consumers
require:

* the trace must load as Chrome trace-event JSON — a ``traceEvents``
  list of complete (``"ph": "X"``) and instant (``"ph": "i"``) events
  with numeric, non-negative ``ts``/``dur``, exactly what
  ``chrome://tracing`` and https://ui.perfetto.dev accept;
* the metrics snapshot must have ``counters``/``gauges``/``histograms``
  maps, every histogram internally consistent (counts length =
  bounds length + 1, count = sum of bucket counts).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


def validate_trace(path: str) -> List[str]:
    """Problems found in a Chrome trace-event JSON file (empty = valid)."""
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: cannot load as JSON: {exc}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: missing 'traceEvents' list"]
    if not events:
        problems.append(f"{path}: trace is empty")
    complete = 0
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "i"):
            problems.append(f"{where}: unexpected phase {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            complete += 1
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    if events and not complete:
        problems.append(f"{path}: no complete ('X') span events")
    return problems


def validate_metrics(path: str) -> List[str]:
    """Problems found in a metrics snapshot JSON file (empty = valid)."""
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: cannot load as JSON: {exc}"]
    if not isinstance(data, dict):
        return [f"{path}: snapshot is not an object"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(data.get(section), dict):
            problems.append(f"{path}: missing {section!r} map")
    for name, value in data.get("counters", {}).items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{path}: counter {name!r} not >= 0: {value!r}")
    for name, dump in data.get("histograms", {}).items():
        where = f"{path}: histogram {name!r}"
        bounds = dump.get("bounds")
        counts = dump.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            problems.append(f"{where}: missing bounds/counts")
            continue
        if len(counts) != len(bounds) + 1:
            problems.append(
                f"{where}: counts length {len(counts)} != "
                f"bounds length {len(bounds)} + 1"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            problems.append(f"{where}: bounds not strictly increasing")
        if sum(counts) != dump.get("count"):
            problems.append(
                f"{where}: count {dump.get('count')!r} != "
                f"sum of bucket counts {sum(counts)}"
            )
    return problems


def main(argv=None) -> int:
    """CLI entry point; returns 0 iff every given artifact validates."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", action="append", default=[],
                        help="Chrome trace-event JSON file to validate")
    parser.add_argument("--metrics", action="append", default=[],
                        help="metrics snapshot JSON file to validate")
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("give at least one --trace or --metrics file")
    problems: List[str] = []
    for path in args.trace:
        problems.extend(validate_trace(path))
    for path in args.metrics:
        problems.extend(validate_metrics(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        checked = len(args.trace) + len(args.metrics)
        print(f"ok: {checked} artifact(s) valid")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
