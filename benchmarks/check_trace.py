"""Validate observability artifacts: ``--trace``/``--metrics``/``--worklog``.

Stdlib-only, so CI can run it without installing the package::

    python benchmarks/check_trace.py --trace trace.json --metrics metrics.json
    python benchmarks/check_trace.py --worklog session.worklog.jsonl

Exit code 0 when every given file is well-formed, 1 otherwise (with the
problems printed to stderr).  The checks mirror what the consumers
require:

* the trace must load as Chrome trace-event JSON — a ``traceEvents``
  list of complete (``"ph": "X"``) and instant (``"ph": "i"``) events
  with numeric, non-negative ``ts``/``dur``, exactly what
  ``chrome://tracing`` and https://ui.perfetto.dev accept;
* a stitched multi-process trace (``--stitched-trace``, the ``--procs``
  ``--trace`` output) additionally allows ``"ph": "M"`` metadata, and
  must name every pid via ``process_name`` metadata, contain events
  from at least two distinct processes, keep each span name on one
  side of the process boundary (``serve.request`` only on the
  supervisor pid, ``worker.*`` never on it), and link every
  ``worker.request`` span by ``args.request_id`` to a
  ``serve.request`` span — no orphan worker spans;
* ``--require-counter NAME`` asserts each given metrics snapshot
  carries that counter (the telemetry drop counters under chaos);
* the metrics snapshot must have ``counters``/``gauges``/``histograms``
  maps, every histogram internally consistent (counts length =
  bounds length + 1, count = sum of bucket counts);
* a collapsed-stack flamegraph (``--flamegraph``, the ``repro profile
  --flamegraph`` output) must be non-empty lines of
  ``frame;frame;... count`` with positive integer counts and no frame
  containing a space; ``--require-span-frames`` additionally demands
  at least one ``span:<name>`` frame — the profiler's semantic span
  attribution, without which the flamegraph is file:function noise;
* the workload log must be one JSON object per line, every record
  carrying the schema version and a strictly increasing ``seq``,
  ``t_rel_s`` non-decreasing (the writer stamps both under its lock),
  statement records complete (statement text, kind, a known status,
  non-negative ``elapsed_ms``) with their span-derived per-phase times
  reconciling: ``sum(phases_ms) <= elapsed_ms`` up to a small
  tolerance — phases are a breakdown of the statement, never more.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


def validate_trace(path: str, stitched: bool = False) -> List[str]:
    """Problems found in a Chrome trace-event JSON file (empty = valid).

    With ``stitched=True`` the file is held to the multi-process
    contract of ``--procs --trace`` output (see module docstring).
    """
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: cannot load as JSON: {exc}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: missing 'traceEvents' list"]
    if not events:
        problems.append(f"{path}: trace is empty")
    allowed_phases = ("X", "i", "M") if stitched else ("X", "i")
    complete = 0
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in allowed_phases:
            problems.append(f"{where}: unexpected phase {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            complete += 1
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    if events and not complete:
        problems.append(f"{path}: no complete ('X') span events")
    if stitched and not problems:
        problems.extend(_check_stitching(path, events))
    return problems


def _check_stitching(path: str, events) -> List[str]:
    """The multi-process invariants of a stitched trace.

    Runs only on structurally valid events (``validate_trace`` gates
    it), so it can index into them without re-checking shapes.
    """
    problems: List[str] = []
    named_pids = set()
    span_pids = set()
    serve_ids = set()
    serve_pids = set()
    worker_span_pids = set()
    worker_ids = []
    unlabeled_workers = 0
    for ev in events:
        pid = ev.get("pid")
        ph = ev.get("ph")
        name = ev.get("name")
        if ph == "M":
            if name == "process_name":
                named_pids.add(pid)
            continue
        span_pids.add(pid)
        args = ev.get("args") or {}
        if name == "serve.request":
            serve_pids.add(pid)
            req_id = args.get("request_id")
            if req_id is None:
                problems.append(
                    f"{path}: serve.request span without args.request_id"
                )
            else:
                serve_ids.add(str(req_id))
        elif isinstance(name, str) and name.startswith("worker."):
            worker_span_pids.add(pid)
            if name == "worker.request":
                req_id = args.get("request_id")
                if req_id is None:
                    unlabeled_workers += 1
                else:
                    worker_ids.append(str(req_id))
    if len(span_pids) < 2:
        problems.append(
            f"{path}: stitched trace has events from "
            f"{len(span_pids)} process(es), expected >= 2 "
            "(supervisor + at least one worker)"
        )
    unnamed = sorted(p for p in span_pids if p not in named_pids)
    if unnamed:
        problems.append(
            f"{path}: pid(s) without process_name metadata: {unnamed}"
        )
    overlap = serve_pids & worker_span_pids
    if overlap:
        problems.append(
            f"{path}: pid(s) emit both serve.request and worker.* "
            f"spans: {sorted(overlap)} — stitching attributed spans "
            "to the wrong process"
        )
    if unlabeled_workers:
        problems.append(
            f"{path}: {unlabeled_workers} worker.request span(s) "
            "without args.request_id"
        )
    orphans = sorted(r for r in worker_ids if r not in serve_ids)
    if orphans:
        problems.append(
            f"{path}: worker.request span(s) with no matching "
            f"serve.request span: {orphans[:5]}"
            f"{' ...' if len(orphans) > 5 else ''}"
        )
    return problems


def validate_metrics(path: str, require_counters=()) -> List[str]:
    """Problems found in a metrics snapshot JSON file (empty = valid).

    ``require_counters`` names counters that must be present — chaos CI
    passes the telemetry drop counters, so a run that silently stopped
    counting drops fails loudly here rather than reading as drop-free.
    """
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: cannot load as JSON: {exc}"]
    if not isinstance(data, dict):
        return [f"{path}: snapshot is not an object"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(data.get(section), dict):
            problems.append(f"{path}: missing {section!r} map")
    for name, value in data.get("counters", {}).items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{path}: counter {name!r} not >= 0: {value!r}")
    for name, dump in data.get("histograms", {}).items():
        where = f"{path}: histogram {name!r}"
        bounds = dump.get("bounds")
        counts = dump.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            problems.append(f"{where}: missing bounds/counts")
            continue
        if len(counts) != len(bounds) + 1:
            problems.append(
                f"{where}: counts length {len(counts)} != "
                f"bounds length {len(bounds)} + 1"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            problems.append(f"{where}: bounds not strictly increasing")
        if sum(counts) != dump.get("count"):
            problems.append(
                f"{where}: count {dump.get('count')!r} != "
                f"sum of bucket counts {sum(counts)}"
            )
    counters = data.get("counters", {})
    for name in require_counters:
        if name not in counters:
            problems.append(f"{path}: required counter {name!r} missing")
    return problems


# duplicated from repro.obs.worklog on purpose: this checker must stay
# importable without the package installed (and would hide schema drift
# if it read the vocabulary from the code under test)
WORKLOG_VERSION = 1
WORKLOG_STATUSES = (
    "ok", "analysis_error", "parse_error", "build_failed",
    "budget_exhausted", "cancelled", "rejected", "error",
)
# phases are measured by perf_counter spans inside the statement's own
# perf_counter window; 5% + 1ms absorbs float rounding on tiny builds
PHASE_SUM_TOLERANCE = 1.05
PHASE_SUM_SLACK_MS = 1.0


def validate_worklog(path: str) -> List[str]:
    """Problems found in a workload-log JSONL file (empty = valid)."""
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as exc:
        return [f"{path}: cannot read: {exc}"]
    if not lines:
        return [f"{path}: worklog is empty"]
    last_seq = 0
    last_t_rel = float("-inf")
    statements = 0
    for i, line in enumerate(lines, start=1):
        where = f"{path}:{i}"
        if not line.strip():
            problems.append(f"{where}: blank line")
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            problems.append(f"{where}: not JSON: {exc}")
            continue
        if not isinstance(record, dict):
            problems.append(f"{where}: record is not an object")
            continue
        if record.get("v") != WORKLOG_VERSION:
            problems.append(
                f"{where}: schema version {record.get('v')!r} != "
                f"{WORKLOG_VERSION}"
            )
        kind = record.get("kind")
        if kind == "session":
            # a new session appended to the same file restarts the
            # writer's seq/t_rel clocks; monotonicity is per-session
            last_seq = 0
            last_t_rel = float("-inf")
        seq = record.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            problems.append(
                f"{where}: seq {seq!r} not strictly increasing "
                f"(previous {last_seq})"
            )
        else:
            last_seq = seq
        t_rel = record.get("t_rel_s")
        if not isinstance(t_rel, (int, float)) or t_rel < last_t_rel:
            problems.append(
                f"{where}: t_rel_s {t_rel!r} went backwards "
                f"(previous {last_t_rel:.6f})"
            )
        else:
            last_t_rel = float(t_rel)
        ts = record.get("ts")
        if not isinstance(ts, (int, float)) or ts <= 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if kind == "session":
            continue
        if kind != "statement":
            problems.append(f"{where}: unknown record kind {kind!r}")
            continue
        statements += 1
        stmt = record.get("statement")
        if not isinstance(stmt, str) or not stmt.strip():
            problems.append(f"{where}: missing statement text")
        if not isinstance(record.get("statement_kind"), str):
            problems.append(f"{where}: missing statement_kind")
        if record.get("status") not in WORKLOG_STATUSES:
            problems.append(
                f"{where}: unknown status {record.get('status')!r}"
            )
        elapsed = record.get("elapsed_ms")
        if not isinstance(elapsed, (int, float)) or elapsed < 0:
            problems.append(f"{where}: bad elapsed_ms {elapsed!r}")
            continue
        phases = record.get("phases_ms")
        if phases is None:
            continue
        if not isinstance(phases, dict) or not all(
            isinstance(v, (int, float)) and v >= 0
            for v in phases.values()
        ):
            problems.append(f"{where}: bad phases_ms {phases!r}")
            continue
        total = sum(phases.values())
        if total > elapsed * PHASE_SUM_TOLERANCE + PHASE_SUM_SLACK_MS:
            problems.append(
                f"{where}: phase sum {total:.3f}ms exceeds elapsed_ms "
                f"{elapsed:.3f}ms (phases are a breakdown, not a superset)"
            )
    if not statements:
        problems.append(f"{path}: no statement records")
    return problems


def validate_flamegraph(
    path: str, require_span_frames: bool = False
) -> List[str]:
    """Problems found in a collapsed-stack file (empty = valid).

    The format is what flamegraph.pl and speedscope consume: one stack
    per line, frames joined by ``;``, a space, then the sample count.
    """
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as exc:
        return [f"{path}: cannot read: {exc}"]
    if not any(line.strip() for line in lines):
        return [f"{path}: flamegraph is empty (no samples collected)"]
    span_frames = 0
    total_samples = 0
    for i, line in enumerate(lines, start=1):
        where = f"{path}:{i}"
        line = line.rstrip("\n")
        if not line.strip():
            problems.append(f"{where}: blank line")
            continue
        stack, sep, count_text = line.rpartition(" ")
        if not sep or not stack:
            problems.append(f"{where}: no 'stack count' separator")
            continue
        if not count_text.isdigit() or int(count_text) <= 0:
            problems.append(
                f"{where}: sample count {count_text!r} not a "
                "positive integer"
            )
            continue
        total_samples += int(count_text)
        frames = stack.split(";")
        if any(not frame or " " in frame for frame in frames):
            problems.append(
                f"{where}: empty frame or embedded space in stack "
                f"{stack[:60]!r}"
            )
            continue
        span_frames += sum(
            1 for frame in frames if frame.startswith("span:")
        )
    if require_span_frames and not span_frames and not problems:
        problems.append(
            f"{path}: no 'span:<name>' frames — samples never attributed "
            "to tracer spans (was the profiled run traced?)"
        )
    return problems


def main(argv=None) -> int:
    """CLI entry point; returns 0 iff every given artifact validates."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", action="append", default=[],
                        help="Chrome trace-event JSON file to validate")
    parser.add_argument("--stitched-trace", action="append", default=[],
                        help="multi-process stitched trace (--procs "
                             "--trace output) to validate")
    parser.add_argument("--metrics", action="append", default=[],
                        help="metrics snapshot JSON file to validate")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="counter that must exist in every "
                             "--metrics snapshot")
    parser.add_argument("--worklog", action="append", default=[],
                        help="workload-log JSONL file to validate")
    parser.add_argument("--flamegraph", action="append", default=[],
                        help="collapsed-stack flamegraph file (repro "
                             "profile --flamegraph output) to validate")
    parser.add_argument("--require-span-frames", action="store_true",
                        help="fail a --flamegraph file with no "
                             "'span:<name>' frames (span attribution "
                             "never engaged)")
    args = parser.parse_args(argv)
    if (not args.trace and not args.stitched_trace and not args.metrics
            and not args.worklog and not args.flamegraph):
        parser.error(
            "give at least one --trace, --stitched-trace, --metrics, "
            "--worklog, or --flamegraph file"
        )
    if args.require_counter and not args.metrics:
        parser.error("--require-counter needs a --metrics file")
    if args.require_span_frames and not args.flamegraph:
        parser.error("--require-span-frames needs a --flamegraph file")
    problems: List[str] = []
    for path in args.trace:
        problems.extend(validate_trace(path))
    for path in args.stitched_trace:
        problems.extend(validate_trace(path, stitched=True))
    for path in args.metrics:
        problems.extend(
            validate_metrics(path, require_counters=args.require_counter)
        )
    for path in args.worklog:
        problems.extend(validate_worklog(path))
    for path in args.flamegraph:
        problems.extend(validate_flamegraph(
            path, require_span_frames=args.require_span_frames
        ))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        checked = (len(args.trace) + len(args.stitched_trace)
                   + len(args.metrics) + len(args.worklog)
                   + len(args.flamegraph))
        print(f"ok: {checked} artifact(s) valid")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
