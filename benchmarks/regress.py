"""Benchmark regression gate: compare a bench run against baselines.

Stdlib-only, so CI can run it without installing the package::

    REPRO_BENCH_DIR=bench_out pytest benchmarks/ -k "not bench_"
    python benchmarks/regress.py --baseline benchmarks/baselines \
        --current bench_out --out regress_verdict.json

Every ``BENCH_<name>.json`` in the baseline directory is matched with
the same file in the current directory and their scalar latency leaves
(keys ending ``_ms``) are compared.  A leaf regresses when::

    current > baseline * threshold + abs_slack

Two thresholds apply, because the artifacts mix two kinds of numbers:

* **continuous** phase totals (``total_ms``, ``iunits_ms``, ...) —
  averaged timings where a modest multiplier plus a small absolute
  slack separates noise from regression;
* **bucket-quantized** percentiles (``p50_ms``/``p95_ms``/``p99_ms``
  from :class:`~repro.obs.metrics.Histogram`) — quantiles snap to the
  bucket upper bound, so ordinary jitter on a bucket boundary flips
  the value by one whole bucket (2-2.5x).  These get a looser
  multiplier; anything beyond it means the latency moved at least two
  buckets, which no amount of boundary noise explains.

Besides the latency leaves, any ``work`` subtree (the deterministic
work counters of :mod:`repro.obs.work`) is compared with **exact
equality** — the counters are integers derived only from the data and
the statements, so there is no noise to absorb and no slack to grant.
A drifted count is a semantic change in how much work a kernel does; a
baseline that predates the counters (no ``work`` block at all) fails
with an explicit re-baseline instruction.

Exit codes: 0 verdict ok (or improvements only), 1 regression found,
2 usage error / artifacts missing.  The verdict JSON carries every
compared leaf, so CI can render the diff without re-running anything.

Re-baselining: when a deliberate change moves the numbers, regenerate
with ``REPRO_BENCH_DIR=benchmarks/baselines pytest benchmarks/ -k
"not bench_"`` on a quiet machine and commit the diff — the verdict
output of the failing run belongs in the PR description.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Dict, Iterator, List, Tuple

# continuous leaves: relative multiplier + absolute slack (noise floor
# for sub-10ms phases where a scheduler hiccup dwarfs the signal)
DEFAULT_THRESHOLD = 1.75
DEFAULT_ABS_SLACK_MS = 25.0
# bucket-quantized percentile leaves (see module docstring)
DEFAULT_QUANTIZED_THRESHOLD = 2.6

_QUANTIZED_KEY = re.compile(r"^p\d+_ms$")


def _atomic_write_json(path: str, payload) -> None:
    """tmp + fsync + ``os.replace``, inlined to stay stdlib-only.

    (Mirrors :func:`repro.obs.atomic.atomic_write_json`; this script
    must run in CI without the package installed.)
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(
        directory, f".{os.path.basename(path)}.tmp.{os.getpid()}"
    )
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def is_quantized_key(key: str) -> bool:
    """True for histogram-quantile leaves (``p50_ms``, ``p99_ms``...)."""
    return bool(_QUANTIZED_KEY.match(key))


def latency_leaves(payload, prefix: str = "") -> Iterator[
    Tuple[str, str, float]
]:
    """Yield ``(path, key, value)`` for every scalar ``*_ms`` leaf.

    Recurses into dicts, and into lists only element-wise when the
    elements are dicts (the fig8 ``series`` rows) — raw sample arrays
    like ``latencies_ms`` are per-run noise, not comparable leaves.
    """
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and key.endswith("_ms")
            ):
                yield path, key, float(value)
            elif isinstance(value, (dict, list)):
                yield from latency_leaves(value, path)
    elif isinstance(payload, list):
        for i, item in enumerate(payload):
            if isinstance(item, dict):
                yield from latency_leaves(item, f"{prefix}[{i}]")


def work_leaves(payload, prefix: str = "") -> Iterator[Tuple[str, int]]:
    """Yield ``(path, count)`` for every counter under a ``work`` block.

    ``work`` subtrees hold the deterministic work counters; every
    numeric leaf beneath one is comparable, whatever its nesting
    (``work.totals.<name>``, ``work.by_kind.<kind>.<name>``).
    """
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            if key == "work" and isinstance(value, dict):
                yield from _count_leaves(value, path)
            elif isinstance(value, (dict, list)):
                yield from work_leaves(value, path)
    elif isinstance(payload, list):
        for i, item in enumerate(payload):
            if isinstance(item, dict):
                yield from work_leaves(item, f"{prefix}[{i}]")


def _count_leaves(payload, prefix: str) -> Iterator[Tuple[str, int]]:
    if not isinstance(payload, dict):
        return
    for key, value in payload.items():
        path = f"{prefix}.{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            yield path, int(value)
        elif isinstance(value, dict):
            yield from _count_leaves(value, path)


def compare_work(
    baseline, current, name: str
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Exact-equality comparison of the ``work`` counter leaves.

    Returns ``(records, problems)``.  Unlike the latency comparison
    there is no threshold: the counters are deterministic by contract,
    so the only acceptable diff is none.  A baseline that lacks the
    ``work`` block entirely (it predates the counters) is a problem
    with an explicit re-baseline instruction, not a silent pass.
    """
    base = dict(work_leaves(baseline))
    cur = dict(work_leaves(current))
    records: List[Dict[str, object]] = []
    problems: List[str] = []
    if cur and not base:
        problems.append(
            f"{name}: current run emits a 'work' counter block but the "
            "baseline has none — re-baseline needed (run "
            "REPRO_BENCH_DIR=benchmarks/baselines pytest benchmarks/ "
            "-k 'not bench_' and commit the refreshed BENCH_*.json)"
        )
        return records, problems
    for path, base_count in sorted(base.items()):
        record = {
            "leaf": path, "kind": "work", "threshold": "exact",
            "baseline_count": base_count,
            "current_count": cur.get(path),
        }
        if path not in cur:
            record["status"] = "missing"
        elif cur[path] != base_count:
            record["status"] = "regression"
        else:
            record["status"] = "ok"
        records.append(record)
    for path in sorted(set(cur) - set(base)):
        problems.append(
            f"{name}: work counter {path} is new in the current run — "
            "re-baseline needed to start gating it"
        )
    return records, problems


def compare_payloads(
    baseline,
    current,
    threshold: float = DEFAULT_THRESHOLD,
    abs_slack_ms: float = DEFAULT_ABS_SLACK_MS,
    quantized_threshold: float = DEFAULT_QUANTIZED_THRESHOLD,
) -> List[Dict[str, object]]:
    """Compare two bench payloads leaf-by-leaf.

    Returns one record per comparable leaf with its ``status``:
    ``ok`` / ``regression`` / ``improvement`` (the inverse bound) /
    ``missing`` (leaf vanished from the current run).
    """
    base_leaves = {
        path: (key, value) for path, key, value in latency_leaves(baseline)
    }
    cur_leaves = {
        path: (key, value) for path, key, value in latency_leaves(current)
    }
    records: List[Dict[str, object]] = []
    for path, (key, base_value) in sorted(base_leaves.items()):
        factor = (
            quantized_threshold if is_quantized_key(key) else threshold
        )
        if path not in cur_leaves:
            records.append({
                "leaf": path, "status": "missing",
                "baseline_ms": base_value, "current_ms": None,
                "threshold": factor,
            })
            continue
        cur_value = cur_leaves[path][1]
        limit = base_value * factor + abs_slack_ms
        if cur_value > limit:
            status = "regression"
        elif base_value > cur_value * factor + abs_slack_ms:
            status = "improvement"
        else:
            status = "ok"
        records.append({
            "leaf": path, "status": status,
            "baseline_ms": base_value, "current_ms": cur_value,
            "limit_ms": limit, "threshold": factor,
        })
    return records


def compare_dirs(
    baseline_dir: str,
    current_dir: str,
    threshold: float = DEFAULT_THRESHOLD,
    abs_slack_ms: float = DEFAULT_ABS_SLACK_MS,
    quantized_threshold: float = DEFAULT_QUANTIZED_THRESHOLD,
) -> Dict[str, object]:
    """The verdict document for two ``BENCH_*.json`` directories."""
    names = sorted(
        name for name in os.listdir(baseline_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    benches: Dict[str, object] = {}
    problems: List[str] = []
    counts = {"ok": 0, "regression": 0, "improvement": 0, "missing": 0}
    for name in names:
        current_path = os.path.join(current_dir, name)
        if not os.path.exists(current_path):
            problems.append(f"current run produced no {name}")
            continue
        with open(os.path.join(baseline_dir, name), encoding="utf-8") as fh:
            baseline = json.load(fh)
        with open(current_path, encoding="utf-8") as fh:
            current = json.load(fh)
        records = compare_payloads(
            baseline, current,
            threshold=threshold, abs_slack_ms=abs_slack_ms,
            quantized_threshold=quantized_threshold,
        )
        if not records:
            problems.append(f"{name}: no comparable *_ms leaves")
        work_records, work_problems = compare_work(
            baseline, current, name
        )
        records.extend(work_records)
        problems.extend(work_problems)
        for record in records:
            counts[str(record["status"])] += 1
        benches[name] = records
    verdict = "ok"
    if counts["regression"] or counts["missing"] or problems:
        verdict = "regression" if counts["regression"] else "error"
    return {
        "verdict": verdict,
        "baseline_dir": baseline_dir,
        "current_dir": current_dir,
        "thresholds": {
            "continuous": threshold,
            "quantized": quantized_threshold,
            "abs_slack_ms": abs_slack_ms,
        },
        "counts": counts,
        "problems": problems,
        "benches": benches,
    }


def render(verdict: Dict[str, object]) -> str:
    """Human-readable summary of a verdict document."""
    lines = [
        f"== bench regression gate: {verdict['verdict']} "
        f"({verdict['counts']}) =="
    ]
    for name, records in sorted(verdict["benches"].items()):
        flagged = [
            r for r in records
            if r["status"] in ("regression", "missing", "improvement")
        ]
        lines.append(f"{name}: {len(records)} leaves, "
                     f"{len(flagged)} flagged")
        for r in flagged:
            if r.get("kind") == "work":
                cur = (
                    str(r["current_count"])
                    if r["current_count"] is not None else "gone"
                )
                lines.append(
                    f"  {r['status']:<11} {r['leaf']}: "
                    f"{r['baseline_count']} -> {cur} "
                    "(deterministic counter, exact match required)"
                )
                continue
            cur = (
                f"{r['current_ms']:.1f}" if r["current_ms"] is not None
                else "gone"
            )
            lines.append(
                f"  {r['status']:<11} {r['leaf']}: "
                f"{r['baseline_ms']:.1f} -> {cur} ms "
                f"(threshold x{r['threshold']})"
            )
    for problem in verdict["problems"]:
        lines.append(f"  problem: {problem}")
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point; exit 0 ok, 1 regression, 2 usage/missing."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="directory of committed BENCH_*.json files")
    parser.add_argument("--current", required=True,
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="relative limit for continuous *_ms leaves")
    parser.add_argument("--quantized-threshold", type=float,
                        default=DEFAULT_QUANTIZED_THRESHOLD,
                        help="relative limit for pNN_ms histogram leaves")
    parser.add_argument("--abs-slack-ms", type=float,
                        default=DEFAULT_ABS_SLACK_MS,
                        help="absolute slack added to every limit")
    parser.add_argument("--out", default=None,
                        help="write the verdict JSON here")
    args = parser.parse_args(argv)
    for label, path in (("baseline", args.baseline),
                        ("current", args.current)):
        if not os.path.isdir(path):
            print(f"error: {label} directory {path!r} does not exist",
                  file=sys.stderr)
            return 2
    verdict = compare_dirs(
        args.baseline, args.current,
        threshold=args.threshold,
        abs_slack_ms=args.abs_slack_ms,
        quantized_threshold=args.quantized_threshold,
    )
    if args.out:
        _atomic_write_json(args.out, verdict)
    print(render(verdict))
    if verdict["verdict"] == "ok":
        return 0
    if verdict["verdict"] == "regression":
        return 1
    return 2


if __name__ == "__main__":
    sys.exit(main())
