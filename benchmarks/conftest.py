"""Shared benchmark fixtures: paper-scale datasets and the study run.

Datasets are generated at the paper's scale (YahooUsedCar 40,000 x 11;
Mushroom 8,124 x 23) once per session.  The simulated user study also
runs once and is shared by the three study-figure benches.
"""

from __future__ import annotations

import pytest

from repro.dataset.generators import generate_mushroom, generate_usedcars
from repro.study import run_study


@pytest.fixture(scope="session")
def cars40k():
    """The YahooUsedCar-scale table (40,000 x 11)."""
    return generate_usedcars(40_000, seed=7)


@pytest.fixture(scope="session")
def mushroom8124():
    """The UCI-Mushroom-scale table (8,124 x 23)."""
    return generate_mushroom(8_124, seed=13)


@pytest.fixture(scope="session")
def study(mushroom8124):
    """The full crossover user study (Figures 2-7 share it)."""
    return run_study(mushroom8124, seed=2016)


def print_user_table(title, table, fmt="{:.2f}"):
    """Per-user Solr/TPFacet bars, the layout of Figures 2-7."""
    users = sorted(table, key=lambda u: int(u[1:]))
    print(f"\n== {title} ==")
    print(f"{'user':>6} {'Solr':>10} {'TPFacet':>10}")
    for u in users:
        row = table[u]
        print(
            f"{u:>6} {fmt.format(row['Solr']):>10} "
            f"{fmt.format(row['TPFacet']):>10}"
        )
