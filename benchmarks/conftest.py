"""Shared benchmark fixtures: paper-scale datasets and the study run.

Datasets are generated at the paper's scale (YahooUsedCar 40,000 x 11;
Mushroom 8,124 x 23) once per session.  The simulated user study also
runs once and is shared by the three study-figure benches.
"""

from __future__ import annotations

import os

import pytest

from repro.dataset.generators import generate_mushroom, generate_usedcars
from repro.obs.atomic import atomic_write_json
from repro.study import run_study


@pytest.fixture(scope="session")
def cars40k():
    """The YahooUsedCar-scale table (40,000 x 11)."""
    return generate_usedcars(40_000, seed=7)


@pytest.fixture(scope="session")
def mushroom8124():
    """The UCI-Mushroom-scale table (8,124 x 23)."""
    return generate_mushroom(8_124, seed=13)


@pytest.fixture(scope="session")
def study(mushroom8124):
    """The full crossover user study (Figures 2-7 share it)."""
    return run_study(mushroom8124, seed=2016)


@pytest.fixture
def bench_emit():
    """Opt-in machine-readable bench output.

    Returns ``emit(name, payload)``: when the ``REPRO_BENCH_DIR``
    environment variable names a directory, the payload is written
    there as ``BENCH_<name>.json`` (per-phase breakdowns, latency
    percentiles — whatever the bench reports on stdout, structured);
    without the variable the call is a no-op, so the benches behave
    identically in a plain pytest run.
    """
    out_dir = os.environ.get("REPRO_BENCH_DIR")

    def emit(name, payload):
        if not out_dir:
            return None
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        # atomic: a bench killed mid-write must not leave a torn JSON
        # baseline for the regression gate to choke on
        atomic_write_json(path, payload, indent=1)
        return path

    return emit


def print_user_table(title, table, fmt="{:.2f}"):
    """Per-user Solr/TPFacet bars, the layout of Figures 2-7."""
    users = sorted(table, key=lambda u: int(u[1:]))
    print(f"\n== {title} ==")
    print(f"{'user':>6} {'Solr':>10} {'TPFacet':>10}")
    for u in users:
        row = table[u]
        print(
            f"{u:>6} {fmt.format(row['Solr']):>10} "
            f"{fmt.format(row['TPFacet']):>10}"
        )
