"""E-F10 — Figure 10: build time vs number of Compare Attributes.

The paper sweeps |I| = 1..11 for 10K/20K/30K/40K result sizes: more
Compare Attributes means clustering in a wider one-hot space, so time
grows with |I| — the basis of Optimization 3 (show few Compare
Attributes).
"""

import numpy as np
import pytest

from repro import CADViewBuilder, CADViewConfig
from bench_fig8_worst_case import MAKES, result_of_size

I_VALUES = (1, 3, 5, 7, 9, 11)
SIZES = (10_000, 20_000, 40_000)


def build_time(result, n_attrs, repeats=3):
    times = []
    for r in range(repeats):
        cfg = CADViewConfig(
            compare_limit=n_attrs, iunits_k=6, generated_l=10, seed=r,
        )
        cad = CADViewBuilder(cfg).build(
            result, pivot="Make", pivot_values=list(MAKES)
        )
        times.append(cad.profile.iunits_s)  # the clustering share
    return float(np.mean(times))


def test_figure10_series(cars40k):
    rng = np.random.default_rng(3)
    results = {n: result_of_size(cars40k, n, rng) for n in SIZES}
    print("\n== Figure 10: clustering time (ms) vs Compare Attributes ==")
    header = " ".join(f"{n//1000}K".rjust(9) for n in SIZES)
    print(f"{'|I|':>4} {header}")
    series = {n: [] for n in SIZES}
    for i in I_VALUES:
        row = []
        for n in SIZES:
            t = build_time(results[n], i)
            series[n].append(t)
            row.append(f"{t*1e3:>9.1f}")
        print(f"{i:>4} " + " ".join(row))

    for n in SIZES:
        assert series[n][-1] > series[n][0]
    assert series[40_000][-1] > series[10_000][-1]


def test_bench_full_width_at_20k(benchmark, cars40k):
    rng = np.random.default_rng(4)
    result = result_of_size(cars40k, 20_000, rng)
    cfg = CADViewConfig(compare_limit=11, iunits_k=6, generated_l=10, seed=0)

    cad = benchmark(
        lambda: CADViewBuilder(cfg).build(
            result, pivot="Make", pivot_values=list(MAKES)
        )
    )
    assert len(cad.compare_attributes) >= 9
