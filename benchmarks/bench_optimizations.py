"""E-OPT — Sec. 6.3: the optimization ladder at the 40K worst case.

The paper combines sampling for feature selection, sampling for
clustering, and adaptive l to bring the 40K CAD View under ~500 ms.
This bench walks the ladder from naive to fully optimized and checks
(i) each step never makes things much worse, (ii) the fully optimized
build is comfortably interactive, and (iii) sampling preserves the top
Compare Attributes (the paper's rank-stability claim).
"""

import numpy as np
import pytest

from repro import CADViewBuilder, CADViewConfig
from repro.core.optimizer import optimization_ladder
from bench_fig8_worst_case import MAKES, result_of_size

BASE = CADViewConfig(compare_limit=11, iunits_k=6, generated_l=15, seed=0)


@pytest.fixture(scope="module")
def worst_case(cars40k):
    return result_of_size(cars40k, 40_000, np.random.default_rng(5))


def timed_build(result, cfg, repeats=3):
    times = []
    cad = None
    for _ in range(repeats):
        cad = CADViewBuilder(cfg).build(
            result, pivot="Make", pivot_values=list(MAKES)
        )
        times.append(cad.profile.total_s)
    return float(np.mean(times)), cad


def test_optimization_ladder(worst_case):
    print("\n== Sec 6.3: optimization ladder at 40K ==")
    rows = []
    for name, cfg in optimization_ladder(BASE):
        t, cad = timed_build(worst_case, cfg)
        rows.append((name, t, cad))
        print(f"{name:>22}: {t*1e3:8.1f} ms "
              f"(l_effective={cfg.effective_l(len(worst_case))})")
    naive_t = rows[0][1]
    final_t = rows[-1][1]
    assert final_t <= naive_t * 1.25, "optimizations must not regress much"
    assert final_t < 1.0, "fully optimized must be interactive"


def test_sampling_rank_stability(worst_case):
    """Paper: top Compare Attributes from a 5-10K sample match the
    full-data ranking."""
    exact = CADViewBuilder(BASE).build(
        worst_case, "Make", pivot_values=list(MAKES)
    )
    sampled = CADViewBuilder(BASE.with_(fs_sample=8_000)).build(
        worst_case, "Make", pivot_values=list(MAKES)
    )
    top_exact = exact.compare_attributes[:5]
    top_sampled = sampled.compare_attributes[:5]
    overlap = len(set(top_exact) & set(top_sampled))
    print(f"\ntop-5 exact:   {top_exact}")
    print(f"top-5 sampled: {top_sampled} (overlap {overlap}/5)")
    assert overlap >= 4


def test_bench_optimized_40k(benchmark, worst_case):
    from repro.core.optimizer import recommended_config

    cfg = recommended_config(BASE, len(worst_case))
    cad = benchmark(
        lambda: CADViewBuilder(cfg).build(
            worst_case, pivot="Make", pivot_values=list(MAKES)
        )
    )
    assert cad.profile.total_s < 1.0
