"""E-F9 — Figure 9: build time vs number of generated IUnits (l).

The paper sweeps l = 1..15 for 10K/20K/30K/40K result sizes and finds
time grows with l (clustering with more centers costs more), with
larger result sets uniformly slower — the basis of Optimization 2
(generate fewer IUnits while the result set is broad).
"""

import numpy as np
import pytest

from repro import CADViewBuilder, CADViewConfig
from bench_fig8_worst_case import MAKES, result_of_size

L_VALUES = (1, 3, 6, 9, 12, 15)
SIZES = (10_000, 20_000, 40_000)


def build_time(result, l, repeats=3):
    times = []
    for r in range(repeats):
        cfg = CADViewConfig(
            compare_limit=5, iunits_k=min(6, l), generated_l=l, seed=r,
        )
        cad = CADViewBuilder(cfg).build(
            result, pivot="Make", pivot_values=list(MAKES)
        )
        times.append(cad.profile.total_s)
    return float(np.mean(times))


def test_figure9_series(cars40k):
    rng = np.random.default_rng(1)
    results = {n: result_of_size(cars40k, n, rng) for n in SIZES}
    print("\n== Figure 9: time (ms) vs generated IUnits l ==")
    header = " ".join(f"{n//1000}K".rjust(9) for n in SIZES)
    print(f"{'l':>4} {header}")
    series = {n: [] for n in SIZES}
    for l in L_VALUES:
        row = []
        for n in SIZES:
            t = build_time(results[n], l)
            series[n].append(t)
            row.append(f"{t*1e3:>9.1f}")
        print(f"{l:>4} " + " ".join(row))

    for n in SIZES:
        # more generated IUnits cost more (compare the extremes)
        assert series[n][-1] > series[n][0]
    # larger result sets are uniformly slower at the largest l
    assert series[40_000][-1] > series[10_000][-1]


def test_bench_l15_at_20k(benchmark, cars40k):
    rng = np.random.default_rng(2)
    result = result_of_size(cars40k, 20_000, rng)
    cfg = CADViewConfig(compare_limit=5, iunits_k=6, generated_l=15, seed=0)

    cad = benchmark(
        lambda: CADViewBuilder(cfg).build(
            result, pivot="Make", pivot_values=list(MAKES)
        )
    )
    assert max(len(r) for r in cad.rows.values()) <= 6
