"""E-DIV — ablation of the diversified top-k choice (Sec. 3.2).

The paper argues for the exact div-astar over (a) picking the top-k by
cluster size alone (redundant IUnits) and (b) greedy diversified
selection (can be arbitrarily bad).  This bench quantifies both on real
candidate IUnit sets from the used-car data:

* redundancy = number of displayed IUnit pairs with similarity >= tau;
* objective  = total preference score of the selected set.
"""

from itertools import combinations

import numpy as np
import pytest

from repro import CADViewBuilder, CADViewConfig
from repro.iunits import (
    SizePreference, div_astar, div_greedy, iunit_similarity,
    similarity_graph,
)
from bench_fig8_worst_case import MAKES, result_of_size


@pytest.fixture(scope="module")
def candidates(cars40k):
    result = result_of_size(cars40k, 20_000, np.random.default_rng(6))
    cfg = CADViewConfig(compare_limit=5, iunits_k=3, generated_l=12, seed=0)
    cad = CADViewBuilder(cfg).build(
        result, pivot="Make", pivot_values=list(MAKES)
    )
    return cad, {v: list(cad.candidates[v]) for v in cad.pivot_values}


def redundancy(units, tau):
    return sum(
        1 for a, b in combinations(units, 2)
        if iunit_similarity(a, b) >= tau
    )


def select(units, k, tau, method):
    scores = [float(u.size) for u in units]
    adj = similarity_graph(units, tau)
    if method == "size_only":
        order = np.argsort(-np.asarray(scores), kind="stable")[:k]
        return [units[i] for i in order]
    solver = div_astar if method == "div_astar" else div_greedy
    return [units[i] for i in solver(scores, adj, k)]


def test_ablation_diversification(candidates):
    cad, cands = candidates
    tau = cad.tau
    k = 3
    print("\n== E-DIV: top-k selection ablation (k=3) ==")
    print(f"{'pivot value':>12} {'method':>10} {'score':>8} {'redundant':>10}")
    totals = {m: 0.0 for m in ("size_only", "div_greedy", "div_astar")}
    redund = {m: 0 for m in totals}
    for value, units in cands.items():
        for method in totals:
            chosen = select(units, k, tau, method)
            s = sum(u.size for u in chosen)
            r = redundancy(chosen, tau)
            totals[method] += s
            redund[method] += r
            print(f"{value:>12} {method:>10} {s:>8} {r:>10}")

    print(f"totals: {totals}; redundant pairs: {redund}")
    # size-only maximizes raw score but may display redundant IUnits
    assert redund["size_only"] >= redund["div_astar"]
    # div-astar shows zero redundant pairs by construction
    assert redund["div_astar"] == 0
    assert redund["div_greedy"] == 0
    # exact never scores below greedy
    assert totals["div_astar"] >= totals["div_greedy"] - 1e-9


def test_bench_div_astar(benchmark, candidates):
    cad, cands = candidates
    units = max(cands.values(), key=len)
    scores = [float(u.size) for u in units]
    adj = similarity_graph(units, cad.tau)
    got = benchmark(lambda: div_astar(scores, adj, 6))
    assert len(got) <= 6
