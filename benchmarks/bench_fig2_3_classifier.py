"""E-F2 / E-F3 — Figures 2 & 3: the Simple Classifier task.

Figure 2 reports per-user F1 of the built classifier, Figure 3 the
per-user completion time, Solr vs TPFacet, plus the in-text mixed-model
analysis ("TPFacet affects the quality of classifier by chi2(1)=5.572,
p=0.018, increasing the F1 score by about 0.078 +/- 0.0285" and
"lowering [time] by about 5.44 +/- 1.56 minutes").

Expected shape: TPFacet raises F1 with lower variance and cuts time by
roughly 4x; both effects significant.
"""

import numpy as np
import pytest

from repro.core import CADViewConfig
from repro.facets import FacetedEngine
from repro.study import TPFacetAgent, UserProfile, mushroom_task_suite

from conftest import print_user_table


def test_figure2_f1_scores(study):
    print_user_table(
        "Figure 2: Simple Classifier F1", study.table("classifier", "quality")
    )
    eff = study.analyze("classifier", "quality")
    print(f"mixed model (paper: chi2(1)=5.572, p=0.018, +0.078): {eff}")
    assert eff.effect > 0, "TPFacet must raise F1"
    solr = [m.quality for m in study.of("classifier", "Solr")]
    tp = [m.quality for m in study.of("classifier", "TPFacet")]
    assert np.std(tp) <= np.std(solr), "TPFacet variance must be lower"


def test_figure3_times(study):
    print_user_table(
        "Figure 3: Simple Classifier time (min)",
        study.table("classifier", "minutes"),
    )
    eff = study.analyze("classifier", "minutes")
    print(f"mixed model (paper: chi2(1)=8.54, p=0.003, -5.44 min): {eff}")
    print(f"speedup: {study.speedup('classifier'):.2f}x (paper: ~4x)")
    assert eff.effect < 0 and eff.p_value < 0.01
    assert study.speedup("classifier") > 2.0


def test_bench_tpfacet_classifier_agent(benchmark, mushroom8124):
    engine = FacetedEngine(mushroom8124)
    task = mushroom_task_suite().classifier[0]
    user = UserProfile("U1", 1, speed=1.0, diligence=0.8)

    def run():
        agent = TPFacetAgent(
            engine, user, np.random.default_rng(0), CADViewConfig(seed=1)
        )
        return agent.do_classifier(task)

    out = benchmark(run)
    task.validate(out.answer)
