"""E-CLU — ablation of the clustering algorithm behind IUnits.

The paper picks plain k-means for candidate-IUnit generation "since
both efficiency and quality are major concerns" (Sec. 3.1.2).  This
bench compares the three clusterers in the library on the actual IUnit
workload (one-hot encoded pivot partitions):

* k-means (the paper's choice),
* k-modes on the raw code matrix,
* average-linkage agglomerative (sampled).

Reported: wall-clock time and cluster balance.  Expected: k-means is
the fastest at equal k and produces usable, balanced partitions — the
paper's efficiency argument.
"""

import time

import numpy as np
import pytest

from repro.clustering import KMeans, KModes, agglomerative, one_hot_encode
from repro.discretize import Discretizer
from repro.features import select_compare_attributes
from bench_fig8_worst_case import MAKES, result_of_size

K = 8


@pytest.fixture(scope="module")
def partition(cars40k):
    result = result_of_size(cars40k, 20_000, np.random.default_rng(11))
    view = Discretizer(nbins=6).fit(result)
    compare = select_compare_attributes(view, "Make", limit=5)
    code = view.code_of("Make", "Ford")
    part = view.restrict(view.codes("Make") == code)
    return part, compare


def balance(sizes) -> float:
    sizes = np.asarray(sizes, dtype=float)
    sizes = sizes[sizes > 0]
    return float(sizes.min() / sizes.max())


def test_clustering_ablation(partition):
    part, compare = partition
    enc = one_hot_encode(part, compare)
    X = enc.matrix
    codes = part.matrix(compare)

    rows = []
    t0 = time.perf_counter()
    km = KMeans(K, seed=0).fit(X)
    rows.append(("kmeans", time.perf_counter() - t0,
                 balance(km.cluster_sizes())))
    t0 = time.perf_counter()
    kmo = KModes(K, seed=0).fit(codes)
    rows.append(("kmodes", time.perf_counter() - t0,
                 balance(kmo.cluster_sizes())))
    t0 = time.perf_counter()
    agg = agglomerative(X, K, max_rows=1_000, seed=0)
    rows.append(("agglomerative", time.perf_counter() - t0,
                 balance(agg.cluster_sizes())))

    print(f"\n== E-CLU: clustering {X.shape[0]} tuples, k={K} ==")
    print(f"{'method':>15} {'time (ms)':>10} {'balance':>8}")
    times = {}
    for name, t, b in rows:
        times[name] = t
        print(f"{name:>15} {t * 1e3:>10.1f} {b:>8.3f}")

    # the paper's efficiency claim: the flat methods are interactive,
    # k-means is competitive with the fastest (k-modes can tie on small
    # code matrices), and the quadratic agglomerative path is the one
    # that breaks the latency budget even on a sample
    fastest = min(times["kmeans"], times["kmodes"])
    assert times["kmeans"] <= 2.0 * fastest
    assert times["kmeans"] < 0.5 and times["kmodes"] < 0.5
    assert times["agglomerative"] > times["kmeans"]
    # and none of the methods degenerates to a single cluster
    assert len(np.unique(km.labels)) >= 2
    assert len(np.unique(kmo.labels)) >= 2
    assert agg.n_clusters >= 2


def test_bench_kmeans_partition(benchmark, partition):
    part, compare = partition
    X = one_hot_encode(part, compare).matrix
    fit = benchmark(lambda: KMeans(K, seed=0).fit(X))
    assert fit.k == K
