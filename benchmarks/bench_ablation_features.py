"""E-FS — ablation of the Compare Attribute selector (Sec. 3.1.1).

Compares the paper's chi-square selector against mutual information,
symmetric uncertainty, and a random baseline:

* the paper's anecdote — for pivot = Year, ``Model`` must outrank
  ``Mileage`` ("a specific model is prominent in the database for only
  a short period of time");
* downstream contrast — Compare Attributes chosen by an informed
  selector should yield pivot rows that are easier to tell apart
  (higher mean Algorithm-2 distance between pivot values) than randomly
  chosen attributes.
"""

import numpy as np
import pytest

from repro import CADViewBuilder, CADViewConfig
from repro.discretize import Discretizer
from repro.features import (
    ChiSquareSelector,
    MutualInformationSelector,
    SymmetricUncertaintySelector,
)
from repro.iunits import ranked_list_distance
from bench_fig8_worst_case import MAKES, result_of_size

SELECTORS = {
    "chi2": ChiSquareSelector(),
    "mutual_info": MutualInformationSelector(),
    "symmetric_u": SymmetricUncertaintySelector(),
}


def test_paper_anecdote_all_selectors(cars40k):
    view = Discretizer(nbins=6).fit(cars40k)
    print("\n== E-FS: pivot=Year attribute rankings ==")
    for name, selector in SELECTORS.items():
        ranking = [f.attribute for f in selector.rank(view, "Year")]
        print(f"{name:>12}: {ranking[:5]}")
        assert ranking.index("Model") < ranking.index("Mileage"), name


def mean_pairwise_row_distance(cad):
    values = cad.pivot_values
    dists = [
        cad.value_distance(a, b)
        for i, a in enumerate(values)
        for b in values[i + 1:]
    ]
    return float(np.mean(dists))


def test_downstream_contrast_vs_random(cars40k):
    result = result_of_size(cars40k, 15_000, np.random.default_rng(8))
    cfg = CADViewConfig(compare_limit=5, iunits_k=3, seed=0)

    informed = CADViewBuilder(cfg, selector=ChiSquareSelector()).build(
        result, "Make", pivot_values=list(MAKES)
    )
    informed_d = mean_pairwise_row_distance(informed)

    rng = np.random.default_rng(9)
    random_ds = []
    pool = [n for n in result.schema.names if n != "Make"]
    for _ in range(3):
        pinned = list(rng.choice(pool, size=5, replace=False))
        cad = CADViewBuilder(cfg).build(
            result, "Make", pivot_values=list(MAKES), pinned=pinned
        )
        random_ds.append(mean_pairwise_row_distance(cad))
    random_d = float(np.mean(random_ds))
    print(f"\nmean Algorithm-2 row distance: chi2={informed_d:.2f} "
          f"random={random_d:.2f}")
    assert informed_d >= random_d * 0.9  # informed should not contrast less


def test_bench_chi2_ranking(benchmark, cars40k):
    view = Discretizer(nbins=6).fit(cars40k)
    sel = ChiSquareSelector()
    ranks = benchmark(lambda: sel.rank(view, "Make"))
    assert ranks[0].attribute == "Model"
